//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, and nothing in this
//! workspace serializes through serde at runtime — the `#[derive]`s on the
//! config and stats structs only declare intent. These no-op derives let
//! that code compile unchanged; the experiment run cache uses its own
//! hand-rolled JSON (`graphpim::experiments::cache`) instead.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
