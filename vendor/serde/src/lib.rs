//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` trait names and re-exports the
//! no-op derive macros so `#[derive(Serialize, Deserialize)]` compiles in
//! an environment without crates.io access. No serialization machinery is
//! provided — the workspace never calls it (the experiment run cache uses
//! hand-rolled JSON in `graphpim::experiments::cache`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s name.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
