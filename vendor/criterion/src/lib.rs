//! Offline mini implementation of the `criterion` subset this workspace's
//! benches use: benchmark groups, `bench_function` / `bench_with_input`,
//! `iter` / `iter_batched`, throughput annotations, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — a short warmup, then
//! `sample_size` timed samples — and results are printed as
//! `name  time: [min mean max]` lines. No statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box(x)` works as in the real crate.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark (group of one).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(name);
        group.bench_function("run", f);
        group.finish();
        self
    }
}

/// How work per iteration is reported.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing policy for `iter_batched` (ignored by this harness).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Fresh input per iteration.
    PerIteration,
    /// Small batched inputs.
    SmallInput,
    /// Large batched inputs.
    LargeInput,
}

/// A `group/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label rendered as `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

/// A named set of benchmarks sharing sample settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        self.report(id, &bencher.samples);
        self
    }

    /// Times `f` with a fixed input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        self.report(&id.label, &bencher.samples);
        self
    }

    /// Ends the group (reports are emitted eagerly; kept for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}  (no samples)", self.name);
            return;
        }
        let min = samples.iter().min().unwrap();
        let max = samples.iter().max().unwrap();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / mean.as_secs_f64();
                format!("  thrpt: {:.3} Melem/s", per_sec / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / mean.as_secs_f64();
                format!("  thrpt: {:.3} MiB/s", per_sec / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "{}/{id}  time: [{:?} {:?} {:?}]{throughput}",
            self.name, min, mean, max
        );
    }
}

/// Passed to benchmark closures; records timed samples.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `sample_size` calls of `routine` after one warmup call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh `setup()` inputs (setup excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
