//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Inclusive-exclusive bounds on a generated collection's length.
#[derive(Debug, Clone)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            start: len,
            end: len + 1,
        }
    }
}

/// Strategy generating `Vec`s of `element` values.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.next_below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
