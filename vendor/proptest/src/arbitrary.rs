//! `any::<T>()` support for the primitive types the tests use.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range generation strategy.
pub trait Arbitrary: Sized {
    /// Generates one uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u128() as $t
                }
            }
        )*
    };
}

arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: scale unit interval into a wide range.
        (rng.next_unit_f64() - 0.5) * 2e12
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(PhantomData)
}
