//! Test configuration, error type, and the deterministic RNG driving
//! value generation.

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// Why a test case failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed.
    Fail(String),
    /// The case was rejected (kept for API parity; unused here).
    Reject(String),
}

impl TestCaseError {
    /// A failed assertion with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejected case with `message`.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Shorthand for a test-case body's result.
pub type TestCaseResult = Result<(), TestCaseError>;

/// SplitMix64-based generator; seeded from the test name so every run of
/// a given test sees the same sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 128 uniform bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Modulo bias is irrelevant for test-value generation.
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
