//! The [`Strategy`] trait and the combinators the workspace tests use.

use crate::test_runner::TestRng;
use std::ops::Range;

/// Generates values of an associated type from a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `branches`; must be non-empty.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.next_below(self.branches.len() as u64) as usize;
        self.branches[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let offset = (rng.next_u128() % span) as $t;
                    self.start.wrapping_add(offset)
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<u128> {
    type Value = u128;

    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_u128() % (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
}
