//! Offline mini implementation of the `proptest` subset this workspace
//! uses: deterministic strategies (ranges, tuples, `Just`, `prop_oneof!`,
//! `prop::collection::vec`, `any::<T>()`, `prop_map`), the `proptest!`
//! test macro, and `prop_assert*` macros.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its case number; cases are reproducible because generation is seeded
//! from the test name), and no persistence files.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Re-exports in the shape `use proptest::prelude::*` expects.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module path used by strategy combinators.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests. Each `#[test] fn name(arg in strategy, ...)`
/// expands to a normal `#[test]` running `Config::cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (@impl $config:expr;
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest {}: case {}/{} failed: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::Config::default(); $($rest)*);
    };
}

/// `assert!` that returns a `TestCaseError` instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` flavor of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// `assert_ne!` flavor of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
