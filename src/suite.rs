//! Workspace-level umbrella for the GraphPIM reproduction.
//!
//! Re-exports the four crates so examples and integration tests have one
//! import surface. See the [`graphpim`] crate for the system itself.

pub use graphpim as core;
pub use graphpim_graph as graph;
pub use graphpim_sim as sim;
pub use graphpim_workloads as workloads;
