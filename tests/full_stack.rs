//! Cross-crate integration tests: graph generation → kernels → framework →
//! full-system simulation → metrics.
//!
//! These use the reduced test configuration (tiny caches) with graphs that
//! exceed it, so the *relationships* the paper reports hold at test speed:
//! irregular property traffic misses, atomics dominate, GraphPIM pays off.

use graphpim::config::{PimMode, SystemConfig};
use graphpim::metrics::RunMetrics;
use graphpim::system::SystemSim;
use graphpim_graph::generate::{GraphSpec, LdbcSize};
use graphpim_graph::CsrGraph;
use graphpim_workloads::kernels::{by_name, evaluation_set, full_set, Kernel, KernelParams};

fn test_graph() -> CsrGraph {
    // Big enough that properties miss the tiny config's 16 KB L3.
    GraphSpec::ldbc(LdbcSize::K10).seed(3).build()
}

fn run(kernel: &mut dyn Kernel, graph: &CsrGraph, mode: PimMode) -> RunMetrics {
    SystemSim::run_kernel(kernel, graph, &SystemConfig::tiny(mode))
}

#[test]
fn every_kernel_runs_under_every_mode() {
    let graph = GraphSpec::ldbc(LdbcSize::K1).seed(3).build();
    let weighted = GraphSpec::ldbc(LdbcSize::K1).seed(3).weighted().build();
    for mut kernel in full_set(KernelParams::default()) {
        for mode in PimMode::ALL {
            let g = if kernel.name() == "SSSP" {
                &weighted
            } else {
                &graph
            };
            let m = run(kernel.as_mut(), g, mode);
            assert!(
                m.total_cycles > 0.0 && m.core.instructions > 0,
                "{} under {mode}",
                kernel.name()
            );
        }
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
fn algorithm_results_are_timing_independent() {
    let graph = test_graph();
    let root = graphpim::experiments::pick_root(&graph);
    let mut depths = Vec::new();
    for mode in PimMode::ALL {
        let mut bfs = graphpim_workloads::kernels::Bfs::new(root);
        run(&mut bfs, &graph, mode);
        depths.push(bfs.depths().to_vec());
    }
    assert_eq!(depths[0], depths[1]);
    assert_eq!(depths[1], depths[2]);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
fn graphpim_speeds_up_atomic_dense_kernels() {
    let graph = test_graph();
    for name in ["BFS", "CComp", "DC", "PRank"] {
        let mut base_k = by_name(name, KernelParams::default()).expect(name);
        let mut pim_k = by_name(name, KernelParams::default()).expect(name);
        let base = run(base_k.as_mut(), &graph, PimMode::Baseline);
        let pim = run(pim_k.as_mut(), &graph, PimMode::GraphPim);
        let speedup = base.total_cycles / pim.total_cycles;
        assert!(
            speedup > 1.1,
            "{name}: GraphPIM speedup {speedup:.2} should be substantial"
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
fn low_offload_kernels_stay_flat() {
    let graph = test_graph();
    for name in ["kCore", "TC"] {
        let mut base_k = by_name(name, KernelParams::default()).expect(name);
        let mut pim_k = by_name(name, KernelParams::default()).expect(name);
        let base = run(base_k.as_mut(), &graph, PimMode::Baseline);
        let pim = run(pim_k.as_mut(), &graph, PimMode::GraphPim);
        let speedup = base.total_cycles / pim.total_cycles;
        assert!(
            (0.7..2.0).contains(&speedup),
            "{name}: expected roughly flat, got {speedup:.2}"
        );
        // And the reason: their offload fraction is small.
        let density = base.offload_candidates as f64 / base.core.instructions as f64;
        let dc = {
            let mut k = by_name("DC", KernelParams::default()).expect("DC");
            let m = run(k.as_mut(), &graph, PimMode::Baseline);
            m.offload_candidates as f64 / m.core.instructions as f64
        };
        assert!(
            density < dc,
            "{name} atomic density {density:.4} should be below DC's {dc:.4}"
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
fn offloaded_atomics_accounting_is_consistent() {
    let graph = test_graph();
    for mut kernel in evaluation_set(KernelParams::default()) {
        let name = kernel.name();
        let m = run(kernel.as_mut(), &graph, PimMode::GraphPim);
        assert_eq!(
            m.offloaded_atomics, m.offload_candidates,
            "{name}: GraphPIM must offload every candidate"
        );
        assert_eq!(m.core.host_atomics, 0, "{name}: no host atomics left");
        assert_eq!(
            m.hmc.atomics, m.offloaded_atomics,
            "{name}: cube must see exactly the offloaded atomics"
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
fn upei_splits_candidates_between_host_and_memory() {
    let graph = test_graph();
    let mut k = by_name("CComp", KernelParams::default()).expect("CComp");
    let m = run(k.as_mut(), &graph, PimMode::UPei);
    assert_eq!(
        m.host_pei_atomics + m.offloaded_atomics,
        m.offload_candidates
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
fn barrier_consistency_posted_atomics_complete() {
    // DC uses posted atomic adds; final cycle count must cover the last
    // memory-side completion (barriers wait for PIM atomics).
    let graph = test_graph();
    let mut k = by_name("DC", KernelParams::default()).expect("DC");
    let m = run(k.as_mut(), &graph, PimMode::GraphPim);
    assert!(m.total_cycles > 0.0);
    assert!(m.hmc.atomics > 0);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
fn fp_extension_gates_prank_offloading() {
    let graph = test_graph();
    let mut with_k = by_name("PRank", KernelParams::default()).expect("PRank");
    let mut without_k = by_name("PRank", KernelParams::default()).expect("PRank");
    let with = SystemSim::run_kernel(
        with_k.as_mut(),
        &graph,
        &SystemConfig::tiny(PimMode::GraphPim),
    );
    let without = SystemSim::run_kernel(
        without_k.as_mut(),
        &graph,
        &SystemConfig::tiny(PimMode::GraphPim).without_fp_extension(),
    );
    assert!(with.offloaded_atomics > 0);
    assert_eq!(without.offloaded_atomics, 0);
    assert!(with.total_cycles < without.total_cycles);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
fn bandwidth_savings_on_missing_workloads() {
    let graph = test_graph();
    let mut base_k = by_name("DC", KernelParams::default()).expect("DC");
    let mut pim_k = by_name("DC", KernelParams::default()).expect("DC");
    let base = run(base_k.as_mut(), &graph, PimMode::Baseline);
    let pim = run(pim_k.as_mut(), &graph, PimMode::GraphPim);
    assert!(
        base.candidate_miss_rate() > 0.5,
        "test graph must miss the tiny caches: {:.2}",
        base.candidate_miss_rate()
    );
    assert!(
        pim.total_flits() < base.total_flits(),
        "GraphPIM should save bandwidth: {} vs {}",
        pim.total_flits(),
        base.total_flits()
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
fn determinism_end_to_end() {
    let graph = test_graph();
    let mut a_k = by_name("BFS", KernelParams::default()).expect("BFS");
    let mut b_k = by_name("BFS", KernelParams::default()).expect("BFS");
    let a = run(a_k.as_mut(), &graph, PimMode::GraphPim);
    let b = run(b_k.as_mut(), &graph, PimMode::GraphPim);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.total_flits(), b.total_flits());
    assert_eq!(a.core.instructions, b.core.instructions);
}
