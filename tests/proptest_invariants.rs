//! Property-based tests over the core data structures and invariants.

use graphpim_graph::generate::{GraphSpec, SplitMix64};
use graphpim_graph::{CsrGraph, DynamicGraph, GraphBuilder};
use graphpim_sim::config::SimConfig;
use graphpim_sim::hmc::HmcAtomicOp;
use graphpim_sim::mem::hierarchy::CacheHierarchy;
use graphpim_workloads::kernels::{reference, Bfs, Kernel, Sssp};
use proptest::prelude::*;

/// Strategy: a small random edge list over `n` vertices.
fn edges_strategy(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..max_edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_builder_dedups_and_sorts(edges in edges_strategy(24, 120)) {
        let g = GraphBuilder::new(24).edges(edges.clone()).build();
        // Sorted adjacency, no duplicates.
        for v in 0..24u32 {
            let ns = g.neighbors(v);
            for w in ns.windows(2) {
                prop_assert!(w[0] < w[1], "vertex {v}: {ns:?}");
            }
        }
        // Every input edge is present.
        for (u, v) in edges {
            prop_assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn csr_transpose_involution(edges in edges_strategy(16, 80)) {
        let g = GraphBuilder::new(16).edges(edges).build();
        prop_assert_eq!(g.transpose().transpose(), g);
    }

    #[test]
    fn dynamic_graph_round_trips_csr(edges in edges_strategy(16, 80)) {
        let g = GraphBuilder::new(16).edges(edges).build();
        prop_assert_eq!(DynamicGraph::from_csr(&g).to_csr(), g);
    }

    #[test]
    fn hmc_atomics_match_scalar_oracle(
        mem in any::<u128>(),
        operand in any::<u128>(),
        op_index in 0usize..18,
    ) {
        let op = HmcAtomicOp::HMC20_SET[op_index];
        let mut cube_mem = mem;
        let resp = op.execute(&mut cube_mem, operand);
        // Oracle re-implementation, independent structure.
        let lo = |x: u128| x as u64;
        let hi = |x: u128| (x >> 64) as u64;
        use HmcAtomicOp::*;
        let expect: u128 = match op {
            DualAdd8 | DualAdd8Ret => {
                (lo(mem).wrapping_add(lo(operand)) as u128)
                    | ((hi(mem).wrapping_add(hi(operand)) as u128) << 64)
            }
            Add16 | Add16Ret => mem.wrapping_add(operand),
            Increment8 => (lo(mem).wrapping_add(1) as u128) | ((hi(mem) as u128) << 64),
            Swap16 => operand,
            BitWrite8 | BitWrite8Ret => {
                let merged = (lo(mem) & !hi(operand)) | (lo(operand) & hi(operand));
                (merged as u128) | ((hi(mem) as u128) << 64)
            }
            And16 => mem & operand,
            Nand16 => !(mem & operand),
            Or16 => mem | operand,
            Nor16 => !(mem | operand),
            Xor16 => mem ^ operand,
            CasIfEqual8 => {
                if lo(mem) == lo(operand) {
                    (hi(operand) as u128) | ((hi(mem) as u128) << 64)
                } else {
                    mem
                }
            }
            CasIfZero16 => if mem == 0 { operand } else { mem },
            CasIfGreater16 => if (operand as i128) > (mem as i128) { operand } else { mem },
            CasIfLess16 => if (operand as i128) < (mem as i128) { operand } else { mem },
            CompareEqual16 => mem,
            FpAdd32 | FpAdd64 => unreachable!("not in HMC20_SET"),
        };
        prop_assert_eq!(cube_mem, expect, "{}", op);
        if op.has_return() && !matches!(op, CompareEqual16) {
            prop_assert_eq!(resp.original, Some(mem));
        }
    }

    #[test]
    fn cache_hierarchy_invariants_hold(
        accesses in prop::collection::vec((0u64..4096, any::<bool>(), 0usize..2), 1..400),
    ) {
        let config = SimConfig::test_tiny();
        let mut h = CacheHierarchy::new(&config.cache, 2);
        for (word, write, core) in accesses {
            let addr = word * 16; // spread over lines
            h.access(core, addr, write);
        }
        // Sharer bookkeeping must agree with private-cache contents.
        for line in (0..4096u64 * 16).step_by(64) {
            prop_assert!(
                h.debug_check_sharer_invariant(line),
                "sharer invariant broken at {line:#x}"
            );
        }
    }

    #[test]
    fn bfs_kernel_matches_oracle(seed in 0u64..500) {
        let g = GraphSpec::uniform(60, 240).seed(seed).build();
        let mut sink = graphpim_workloads::framework::CollectTrace::default();
        let mut fw = graphpim_workloads::framework::Framework::new(3, &mut sink);
        let mut bfs = Bfs::new(0);
        bfs.run(&g, &mut fw);
        fw.finish();
        let oracle = reference::bfs_depths(&g, 0);
        for v in 0..60u32 {
            prop_assert_eq!(bfs.depth(v), oracle[v as usize], "vertex {}", v);
        }
    }

    #[test]
    fn sssp_kernel_matches_dijkstra(seed in 0u64..200) {
        let g = GraphSpec::uniform(40, 160).seed(seed).weighted().build();
        let mut sink = graphpim_workloads::framework::CollectTrace::default();
        let mut fw = graphpim_workloads::framework::Framework::new(2, &mut sink);
        let mut sssp = Sssp::new(0);
        sssp.run(&g, &mut fw);
        fw.finish();
        let oracle = reference::dijkstra(&g, 0);
        for v in 0..40u32 {
            prop_assert_eq!(sssp.distance(v), oracle[v as usize], "vertex {}", v);
        }
    }

    #[test]
    fn generated_graphs_are_valid(seed in 0u64..100, n in 10usize..200) {
        let m = n * 8;
        let g = GraphSpec::uniform(n, m).seed(seed).build();
        validate_csr(&g)?;
        let lg = graphpim_graph::generate::ldbc::generate_custom(n, m, seed);
        validate_csr(&lg)?;
    }

    #[test]
    fn splitmix_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..16 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }
}

fn validate_csr(g: &CsrGraph) -> Result<(), TestCaseError> {
    let n = g.vertex_count() as u32;
    let mut total = 0usize;
    for v in 0..n {
        let ns = g.neighbors(v);
        total += ns.len();
        for w in ns.windows(2) {
            prop_assert!(w[0] < w[1], "adjacency not strictly sorted");
        }
        for &t in ns {
            prop_assert!(t < n, "neighbor out of range");
        }
    }
    prop_assert_eq!(total, g.edge_count());
    Ok(())
}
