//! Observability integration tests: cycle attribution, Perfetto span
//! export, and the guarantee that neither perturbs the simulation.
//!
//! Attribution closure is also enforced run-by-run by the validation
//! layer (tests run with validation on), but these tests assert it
//! end-to-end through the export path a user actually reads.

use graphpim::config::{PimMode, SystemConfig};
use graphpim::experiments::cache::json;
use graphpim::metrics::RunMetrics;
use graphpim::perfetto::PerfettoTrace;
use graphpim::system::{Instrumentation, SystemSim};
use graphpim::telemetry::{TraceExporter, TraceSnapshot};
use graphpim_graph::generate::{GraphSpec, LdbcSize};
use graphpim_graph::CsrGraph;
use graphpim_workloads::kernels::{by_name, KernelParams};
use std::path::{Path, PathBuf};

fn test_graph() -> CsrGraph {
    // Big enough that properties miss the tiny config's caches, so the
    // HMC attribution buckets all see traffic.
    GraphSpec::ldbc(LdbcSize::K10).seed(3).build()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "graphpim-observability-{tag}-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Runs BFS under `mode` with full instrumentation writing into `dir`.
fn run_instrumented(graph: &CsrGraph, mode: PimMode, dir: &Path) -> RunMetrics {
    let mut kernel = by_name("BFS", KernelParams::default()).expect("BFS exists");
    let trace = TraceExporter::create(dir.join("run.jsonl")).expect("create trace");
    let perfetto = PerfettoTrace::create(dir.join("run.trace.json"));
    let instr = Instrumentation {
        trace: Some(trace),
        perfetto: Some(perfetto),
        attribution: true,
    };
    SystemSim::run_kernel_instrumented(kernel.as_mut(), graph, &SystemConfig::tiny(mode), instr)
}

/// The final JSONL snapshot of the run written into `dir`.
fn final_snapshot(dir: &Path) -> TraceSnapshot {
    let text = std::fs::read_to_string(dir.join("run.jsonl")).expect("trace written");
    let last = text.lines().last().expect("non-empty trace");
    TraceSnapshot::parse_line(last).expect("parsable snapshot")
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn attribution_closes_in_the_exported_snapshot() {
    let graph = test_graph();
    let dir = temp_dir("closure");
    let m = run_instrumented(&graph, PimMode::GraphPim, &dir);
    let snap = final_snapshot(&dir);
    let get = |key: &str| {
        snap.counters
            .get(key)
            .unwrap_or_else(|| panic!("snapshot has {key}"))
    };

    // Core ledger: buckets telescope into busy, busy + idle = machine.
    let busy = get("attrib.core.busy");
    assert!(busy > 0.0, "a real run accumulates busy cycles");
    assert!(
        close(
            busy + get("attrib.core.idle"),
            get("attrib.core.machine_cycles")
        ),
        "busy + idle must equal machine cycles"
    );
    assert!(
        close(get("attrib.core.machine_cycles"), m.machine_cycles()),
        "snapshot machine cycles must match finalized metrics"
    );
    let bucket_sum: f64 = [
        "issue",
        "frontend",
        "bad_speculation",
        "dep_wait",
        "rob_stall",
        "mshr_wait",
        "atomic_serialize",
        "barrier_wait",
        "drain_wait",
    ]
    .iter()
    .map(|b| get(&format!("attrib.core.{b}")))
    .sum();
    assert!(close(bucket_sum, busy), "core buckets must telescope");

    // Cache and HMC ledgers: components sum to their totals.
    for (prefix, components) in [
        (
            "attrib.cache",
            &["l1", "l2", "l3", "memory", "invalidate"][..],
        ),
        (
            "attrib.hmc",
            &[
                "link",
                "vault_overhead",
                "queue_wait",
                "dram",
                "fu_busy",
                "fu_wait",
            ][..],
        ),
    ] {
        let total = get(&format!("{prefix}.total"));
        assert!(total > 0.0, "{prefix} saw traffic");
        let sum: f64 = components
            .iter()
            .map(|c| get(&format!("{prefix}.{c}")))
            .sum();
        assert!(close(sum, total), "{prefix} components must sum to total");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn instrumentation_leaves_metrics_bit_identical() {
    let graph = test_graph();
    let dir = temp_dir("identity");
    for mode in PimMode::ALL {
        let mut kernel = by_name("BFS", KernelParams::default()).expect("BFS exists");
        let plain = SystemSim::run_kernel(kernel.as_mut(), &graph, &SystemConfig::tiny(mode));
        let instrumented = run_instrumented(&graph, mode, &dir);
        // Exact equality, not tolerance: instrumentation is observation-only.
        assert_eq!(
            plain, instrumented,
            "instrumented {mode} run must not drift"
        );
        assert!(!instrumented.trace_export_failed);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn perfetto_trace_matches_expected_schema() {
    let graph = test_graph();
    let dir = temp_dir("schema");
    run_instrumented(&graph, PimMode::GraphPim, &dir);
    let text = std::fs::read_to_string(dir.join("run.trace.json")).expect("trace written");
    let doc = json::parse(&text).expect("valid JSON");
    let events = doc
        .as_object()
        .and_then(|o| o.get("traceEvents"))
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "a real run emits spans");

    let mut names = Vec::new();
    let mut span_count = 0usize;
    let mut metadata_count = 0usize;
    for event in events {
        let obj = event.as_object().expect("every event is an object");
        let name = obj
            .get("name")
            .and_then(|v| v.as_str())
            .expect("every event has a name");
        let ph = obj
            .get("ph")
            .and_then(|v| v.as_str())
            .expect("every event has a phase");
        assert!(obj.get("pid").and_then(|v| v.as_u64()).is_some());
        assert!(obj.get("tid").and_then(|v| v.as_u64()).is_some());
        match ph {
            "X" => {
                span_count += 1;
                assert!(
                    obj.get("ts").and_then(|v| v.as_f64()).is_some(),
                    "{name} has ts"
                );
                let dur = obj
                    .get("dur")
                    .and_then(|v| v.as_f64())
                    .unwrap_or_else(|| panic!("{name} has dur"));
                assert!(dur >= 0.0, "{name} duration is non-negative");
            }
            "M" => metadata_count += 1,
            other => panic!("unexpected phase {other} on {name}"),
        }
        names.push(name.to_string());
    }
    assert!(span_count > 0, "spans present");
    assert!(metadata_count > 0, "row-naming metadata present");
    for expected in ["process_name", "thread_name", "busy"] {
        assert!(
            names.iter().any(|n| n == expected),
            "trace names a {expected} event"
        );
    }
    assert!(
        names.iter().any(|n| n.starts_with("superstep ")),
        "trace contains superstep spans"
    );
    std::fs::remove_dir_all(&dir).ok();
}
