//! Property-based tests over the timing models: sanity invariants that
//! must hold for any input sequence.

use graphpim::analytic::AnalyticalModel;
use graphpim_sim::config::SimConfig;
use graphpim_sim::cpu::CoreModel;
use graphpim_sim::hmc::{HmcAtomicOp, HmcCube, PacketKind};
use proptest::prelude::*;

fn any_packet() -> impl Strategy<Value = PacketKind> {
    prop_oneof![
        Just(PacketKind::Read64),
        Just(PacketKind::Write64),
        Just(PacketKind::Read16),
        Just(PacketKind::Write16),
        (0usize..18).prop_map(|i| PacketKind::Atomic(HmcAtomicOp::HMC20_SET[i])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cube_times_are_causal(
        requests in prop::collection::vec((any_packet(), 0u64..(1 << 24), 0u32..10_000), 1..200),
    ) {
        let config = SimConfig::hpca_default();
        let mut cube = HmcCube::new(&config.hmc, config.core.clock_ghz);
        let mut now = 0.0f64;
        for (kind, addr, delta) in requests {
            now += delta as f64 / 100.0;
            let served = cube.service(kind, addr, now);
            // Responses and memory effects never precede the request.
            prop_assert!(served.response_at >= now, "{kind:?}");
            prop_assert!(served.memory_done >= now, "{kind:?}");
            prop_assert!(served.bank_wait >= 0.0);
            prop_assert!(served.fu_wait >= 0.0);
        }
        // FLIT accounting is consistent with service counts.
        let s = cube.stats();
        prop_assert!(s.request_flits() >= s.reads + s.writes + s.atomics);
        prop_assert_eq!(s.dram_accesses, s.reads + s.writes + s.atomics);
        prop_assert!(s.dram_activations <= s.dram_accesses);
    }

    #[test]
    fn core_clock_is_monotone_and_conserves_instructions(
        ops in prop::collection::vec((0u8..6, 0u32..20, any::<bool>()), 1..300),
    ) {
        let config = SimConfig::hpca_default();
        let mut core = CoreModel::new(&config.core);
        let mut expected_instructions = 0u64;
        let mut last = 0.0f64;
        for (kind, n, flag) in ops {
            match kind {
                0 => {
                    core.compute(n);
                    expected_instructions += n as u64;
                }
                1 => {
                    let at = core.begin_mem(flag, true);
                    core.complete_load(at + n as f64, true);
                    expected_instructions += 1;
                }
                2 => {
                    core.begin_mem(false, false);
                    core.complete_store();
                    expected_instructions += 1;
                }
                3 => {
                    core.host_atomic(n as f64, (n / 2) as f64);
                    expected_instructions += 1;
                }
                4 => {
                    let at = core.begin_mem(flag, false);
                    core.complete_pim_atomic(at + n as f64, flag);
                    expected_instructions += 1;
                }
                _ => {
                    core.branch(flag, !flag);
                    expected_instructions += 1;
                }
            }
            prop_assert!(core.now() >= last, "clock went backwards");
            last = core.now();
        }
        prop_assert_eq!(core.stats().instructions, expected_instructions);
        // Finishing waits for all in-flight work, never rewinds.
        let done = core.finish();
        prop_assert!(done >= last);
        prop_assert!(done >= core.drain_time() - 1e-9);
    }

    #[test]
    fn analytic_speedup_monotone_in_atomic_cost(
        rate in 0.001f64..0.3,
        aio in 1.0f64..60.0,
        miss in 0.0f64..1.0,
    ) {
        let base = AnalyticalModel {
            cpi_other: 1.0,
            overlap: 0.0,
            atomic_rate: rate,
            atomic_overhead: aio,
            lat_cache: 20.0,
            lat_mem: 100.0,
            lat_pim: 8.0,
            atomic_miss_rate: miss,
        };
        let mut costlier = base;
        costlier.atomic_overhead = aio + 10.0;
        // More expensive host atomics => more to gain from offloading.
        prop_assert!(costlier.speedup() >= base.speedup());
        // Baseline CPI is at least the non-atomic floor.
        prop_assert!(base.baseline_cpi() >= base.cpi_other * (1.0 - base.overlap) - 1e-12);
        prop_assert!(base.graphpim_cpi() > 0.0);
    }

    #[test]
    fn atomic_flit_costs_within_table5_bounds(op_index in 0usize..18) {
        let op = HmcAtomicOp::HMC20_SET[op_index];
        let flits = PacketKind::Atomic(op).flits();
        prop_assert_eq!(flits.request, 2);
        prop_assert!(flits.response == 1 || flits.response == 2);
    }
}
