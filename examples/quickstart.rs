//! Quickstart: run one kernel under all three system configurations and
//! print the GraphPIM speedup.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use graphpim::config::{PimMode, SystemConfig};
use graphpim::system::SystemSim;
use graphpim_graph::generate::{GraphSpec, LdbcSize};
use graphpim_workloads::kernels::Bfs;

fn main() {
    // 1. Generate an LDBC-like input graph (Table VI family).
    let graph = GraphSpec::ldbc(LdbcSize::K10).seed(7).build();
    println!(
        "graph: {} vertices, {} edges",
        graph.vertex_count(),
        graph.edge_count()
    );

    // 2. Pick a root that reaches the giant component.
    let root = graphpim::experiments::pick_root(&graph);

    // 3. Run BFS under each configuration. The kernel code is identical —
    //    only the system configuration changes, exactly as GraphPIM
    //    promises (no application-level changes).
    let mut cycles = Vec::new();
    for mode in PimMode::ALL {
        let mut bfs = Bfs::new(root);
        let metrics = SystemSim::run_kernel(&mut bfs, &graph, &SystemConfig::hpca(mode));
        println!(
            "{:>9}: {:>12.0} cycles, IPC {:.3}, {} atomics offloaded",
            mode.label(),
            metrics.total_cycles,
            metrics.ipc(),
            metrics.offloaded_atomics
        );
        // The algorithm's answer is independent of the timing model.
        assert!(bfs.depth(root) == Some(0));
        cycles.push(metrics.total_cycles);
    }

    println!(
        "\nGraphPIM speedup over baseline: {:.2}x (U-PEI: {:.2}x)",
        cycles[0] / cycles[2],
        cycles[0] / cycles[1]
    );
}
