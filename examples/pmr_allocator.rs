//! The `pmr_malloc` convention, shown directly: where the framework
//! allocates each data component, and how the POU routes accesses.
//!
//! ```text
//! cargo run --release --example pmr_allocator
//! ```

use graphpim::config::{PimMode, SystemConfig};
use graphpim::pou::{AtomicPath, Pou};
use graphpim_sim::hmc::HmcAtomicOp;
use graphpim_sim::mem::addr::Region;
use graphpim_workloads::framework::{CollectTrace, Framework, PropertyArray};

fn main() {
    let mut sink = CollectTrace::default();
    let mut fw = Framework::new(4, &mut sink);

    // The framework's three allocators mirror Section II-C's data
    // components.
    let meta = fw.meta_malloc(1024);
    let structure = fw.structure_malloc(1024);
    let property = fw.pmr_malloc(1024); // <- the paper's pmr_malloc
    println!("meta      @ {meta:#016x} -> {:?}", Region::of(meta));
    println!(
        "structure @ {structure:#016x} -> {:?}",
        Region::of(structure)
    );
    println!(
        "property  @ {property:#016x} -> {:?} (PIM memory region)",
        Region::of(property)
    );

    // A property array lives in the PMR; its atomic methods map onto
    // HMC commands (Table II).
    let mut depth = PropertyArray::new(&mut fw, 16, u64::MAX);
    depth.cas(&mut fw, 3, u64::MAX, 1);
    fw.finish();

    // The POU routes by address, per configuration.
    println!("\nPOU routing of `lock cmpxchg` on the property array:");
    for mode in PimMode::ALL {
        let pou = Pou::new(&SystemConfig::hpca(mode));
        let path = pou.route_atomic(depth_addr(&depth), HmcAtomicOp::CasIfEqual8);
        let explain = match path {
            AtomicPath::Host => "execute in the host core",
            AtomicPath::Offload => "offload to the HMC atomic units",
            AtomicPath::LocalityDependent => "probe caches; offload on miss",
        };
        println!("  {:>9}: {explain}", mode.label());
    }
}

fn depth_addr(p: &PropertyArray<u64>) -> u64 {
    p.addr(3)
}
