//! Design-space exploration: sweep the HMC provisioning knobs the paper
//! studies — atomic FUs per vault (Figure 11) and link bandwidth
//! (Figure 13) — for one kernel.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use graphpim::config::{PimMode, SystemConfig};
use graphpim::system::SystemSim;
use graphpim_graph::generate::{GraphSpec, LdbcSize};
use graphpim_workloads::kernels::DCentr;

fn run(config: &SystemConfig, graph: &graphpim_graph::CsrGraph) -> f64 {
    let mut dc = DCentr::new();
    SystemSim::run_kernel(&mut dc, graph, config).total_cycles
}

fn main() {
    let graph = GraphSpec::ldbc(LdbcSize::K10).seed(7).build();
    let baseline = run(&SystemConfig::hpca(PimMode::Baseline), &graph);
    println!("DC baseline: {baseline:.0} cycles\n");

    println!("FUs/vault sweep (Figure 11): speedup over baseline");
    for fus in [1, 2, 4, 8, 16] {
        let cycles = run(
            &SystemConfig::hpca(PimMode::GraphPim).with_fus_per_vault(fus),
            &graph,
        );
        println!("  {fus:>2} FUs: {:.2}x", baseline / cycles);
    }

    println!("\nLink-bandwidth sweep (Figure 13): speedup over baseline@1x");
    for (label, factor) in [("half", 0.5), ("1x", 1.0), ("double", 2.0)] {
        let cycles = run(
            &SystemConfig::hpca(PimMode::GraphPim).with_link_bandwidth_factor(factor),
            &graph,
        );
        println!("  {label:>6}: {:.2}x", baseline / cycles);
    }

    println!("\nBoth knobs barely matter — the paper's conclusion: PIM-Atomic");
    println!("throughput and link bandwidth are not the bottleneck.");
}
