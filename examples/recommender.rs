//! Real-world application: item-to-item collaborative filtering on a
//! twitter-like follower graph (Section IV-B5 of the paper).
//!
//! ```text
//! cargo run --release --example recommender
//! ```

use graphpim::config::{PimMode, SystemConfig};
use graphpim::energy::uncore_energy;
use graphpim::system::SystemSim;
use graphpim_workloads::apps::{twitter_like, Recommender};

fn main() {
    let graph = twitter_like(12, 13);
    println!(
        "twitter-like graph: {} vertices, {} edges",
        graph.vertex_count(),
        graph.edge_count()
    );
    let queries: Vec<u32> = (0..6)
        .map(|i| (i * 131 + 1) % graph.vertex_count() as u32)
        .collect();

    let mut results = Vec::new();
    for mode in [PimMode::Baseline, PimMode::GraphPim] {
        let mut app = Recommender::new(queries.clone(), 5);
        let metrics = SystemSim::run_with(&SystemConfig::hpca(mode), |fw| {
            app.run(&graph, fw);
        });
        let energy = uncore_energy(&metrics, 2.0, 32, 16).total();
        println!(
            "{:>9}: {:>12.0} cycles, {:>5.1} uJ uncore",
            mode.label(),
            metrics.total_cycles,
            energy * 1e6,
        );
        if mode == PimMode::GraphPim {
            for (q, recs) in queries.iter().zip(app.results()) {
                let top: Vec<String> = recs
                    .iter()
                    .take(3)
                    .map(|r| format!("{}({})", r.item, r.score))
                    .collect();
                println!("  user {q}: recommend {}", top.join(", "));
            }
        }
        results.push((metrics.total_cycles, energy));
    }

    println!(
        "\nGraphPIM: {:.2}x speedup, {:.0}% uncore energy saving (paper: 1.9x, 48%)",
        results[0].0 / results[1].0,
        (1.0 - results[1].1 / results[0].1) * 100.0
    );
}
