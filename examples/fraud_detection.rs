//! Real-world application: graph-based financial fraud detection on a
//! bitcoin-like transaction graph (Section IV-B5 of the paper).
//!
//! ```text
//! cargo run --release --example fraud_detection
//! ```

use graphpim::config::{PimMode, SystemConfig};
use graphpim::energy::uncore_energy;
use graphpim::system::SystemSim;
use graphpim_workloads::apps::{bitcoin_like, FraudDetection};

fn main() {
    // A scaled-down stand-in for the paper's 71.7M-vertex bitcoin graph
    // (same heavy-tailed RMAT profile; see DESIGN.md).
    let graph = bitcoin_like(12, 11);
    println!(
        "bitcoin-like graph: {} vertices, {} edges",
        graph.vertex_count(),
        graph.edge_count()
    );
    let seeds: Vec<u32> = (0..5)
        .map(|i| (i * 101) % graph.vertex_count() as u32)
        .collect();

    let mut results = Vec::new();
    for mode in [PimMode::Baseline, PimMode::GraphPim] {
        let mut app = FraudDetection::new(seeds.clone());
        let metrics = SystemSim::run_with(&SystemConfig::hpca(mode), |fw| {
            app.run(&graph, fw);
        });
        let energy = uncore_energy(&metrics, 2.0, 32, 16).total();
        println!(
            "{:>9}: {:>12.0} cycles, {:>5.1} uJ uncore, {} rings, {} suspicious accounts",
            mode.label(),
            metrics.total_cycles,
            energy * 1e6,
            app.rings(),
            app.suspicious().len()
        );
        results.push((metrics.total_cycles, energy));
    }

    println!(
        "\nGraphPIM: {:.2}x speedup, {:.0}% uncore energy saving (paper: 1.5x, 32%)",
        results[0].0 / results[1].0,
        (1.0 - results[1].1 / results[0].1) * 100.0
    );
}
