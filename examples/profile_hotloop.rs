//! Phase profiler for the replay hot loop.
//!
//! Splits a fig07-style sweep (8 kernels x 3 PIM modes at LDBC 1k) into
//! capture, decode, and replay wall time so optimisation work can be
//! aimed at the dominant phase. The system profiler on the reference
//! box (`gprofng`) undercounts real CPU time badly, so this harness
//! times phases directly with `Instant`.
//!
//! Run with: `cargo run --release --example profile_hotloop`
use graphpim::config::{PimMode, SystemConfig};
use graphpim::experiments::pick_root;
use graphpim::system::SystemSim;
use graphpim_graph::generate::{GraphSpec, LdbcSize};
use graphpim_sim::trace::codec::DecodedTrace;
use graphpim_workloads::kernels::{by_name, KernelParams};
use std::time::Instant;

fn main() {
    let size = LdbcSize::K1;
    let spec = GraphSpec::ldbc(size).seed(7);
    let graph = spec.build();
    let wspec = GraphSpec::ldbc(size).seed(7).weighted();
    let wgraph = wspec.build();
    let kernels = ["BFS", "CComp", "DC", "kCore", "SSSP", "TC", "BC", "PRank"];
    let mut total_capture = 0.0;
    let mut total_decode = 0.0;
    let mut total_replay = 0.0;
    let mut total_ops = 0u64;
    for name in kernels {
        let g = if name == "SSSP" { &wgraph } else { &graph };
        let mut params = KernelParams::scaled_for(g.vertex_count());
        params.root = pick_root(g);
        let mut k = by_name(name, params).unwrap();
        let t = Instant::now();
        let bytes = graphpim::tracestore::capture_kernel(k.as_mut(), g, 16);
        let capture = t.elapsed().as_secs_f64();
        total_capture += capture;
        // Decode once (the engine does the same per workload).
        let t = Instant::now();
        let decoded = DecodedTrace::decode(&bytes).unwrap();
        let decode = t.elapsed().as_secs_f64();
        total_decode += decode;
        let ops = decoded.op_count() as u64;
        total_ops += ops * 3;
        // Replay the decoded trace under all three modes.
        let t = Instant::now();
        for mode in PimMode::ALL {
            let config = SystemConfig::hpca(mode);
            let m = SystemSim::run_decoded(&decoded, &config);
            std::hint::black_box(m);
        }
        let replay = t.elapsed().as_secs_f64();
        total_replay += replay;
        eprintln!(
            "{name:6} capture {capture:.3}s decode {decode:.3}s replay3 {replay:.3}s ops {ops}"
        );
    }
    eprintln!(
        "TOTAL capture {total_capture:.3}s decode {total_decode:.3}s replay(3 modes) {total_replay:.3}s total replayed ops {total_ops}"
    );
    eprintln!(
        "per-op replay cost: {:.1} ns",
        total_replay / total_ops as f64 * 1e9
    );
}
