//! Concurrent readers vs. a writer mid-publication: the trace store and
//! the run cache must never serve wrong bytes, and an evicting reader
//! must never destroy a concurrently re-published good entry.
//!
//! Both stores publish through a unique temp file plus an atomic
//! `rename`, so a read can never observe a torn entry — the one
//! destructive thing a reader does is evict a corrupt trace entry, and
//! that path (`TraceStore::lookup` → quarantine rename) is exactly what
//! this test hammers: writer threads republishing the same entry,
//! saboteur threads corrupting it in place, reader threads validating
//! every byte they are served.

use graphpim::tracestore::{capture_kernel, TraceLookup, TraceStore, WorkloadKey};
use graphpim_graph::generate::GraphSpec;
use graphpim_workloads::kernels::Bfs;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("graphpim-store-conc-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sample_key() -> WorkloadKey {
    WorkloadKey {
        kernel: "BFS".into(),
        graph: "uniform-100".into(),
        threads: 2,
    }
}

fn sample_bytes() -> Vec<u8> {
    let graph = GraphSpec::uniform(100, 400).seed(7).build();
    capture_kernel(&mut Bfs::new(0), &graph, 2)
}

/// Readers and writers hammer one (key, fingerprint) entry while
/// saboteurs corrupt it in place. Invariant: every lookup returns the
/// exact published bytes, `Corrupt`, or `Miss` — never different bytes,
/// and never a codec-invalid `Hit` (lookup validates before returning,
/// so a torn read would surface as `Corrupt`; with atomic renames it
/// must not surface at all once saboteurs stop).
#[test]
fn lookups_race_republication_without_losing_entries() {
    let dir = tmp_dir("race");
    let store = Arc::new(TraceStore::at(&dir));
    let key = Arc::new(sample_key());
    let good = Arc::new(sample_bytes());
    const FP: u64 = 0xC0FFEE;

    store.store(&key, FP, &good);

    let stop = Arc::new(AtomicBool::new(false));
    let hits = Arc::new(AtomicU64::new(0));
    let evictions = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();

    // Writers: republish the good entry, full temp-file + rename path.
    for _ in 0..2 {
        let (store, key, good, stop) = (store.clone(), key.clone(), good.clone(), stop.clone());
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                store.store(&key, FP, &good);
            }
        }));
    }

    // Saboteurs: corrupt the entry *in place* (not via rename — this is
    // the bit-rot / torn-legacy-writer case eviction exists for).
    for _ in 0..2 {
        let (store, key, stop) = (store.clone(), key.clone(), stop.clone());
        handles.push(std::thread::spawn(move || {
            let path = store
                .dir()
                .join(format!("{}-{FP:016x}.trace", key.file_stem()));
            while !stop.load(Ordering::Relaxed) {
                let _ = std::fs::write(&path, b"garbage");
                std::thread::yield_now();
            }
        }));
    }

    // Readers: every Hit must be byte-identical to the published trace.
    for _ in 0..4 {
        let (store, key, good, stop, hits, evictions) = (
            store.clone(),
            key.clone(),
            good.clone(),
            stop.clone(),
            hits.clone(),
            evictions.clone(),
        );
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match store.lookup(&key, FP) {
                    TraceLookup::Hit(bytes) => {
                        assert_eq!(bytes, *good, "a Hit must serve the published bytes exactly");
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                    TraceLookup::Corrupt => {
                        evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    TraceLookup::Miss => {}
                }
            }
        }));
    }

    std::thread::sleep(std::time::Duration::from_millis(400));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("no racing thread may panic");
    }

    assert!(
        hits.load(Ordering::Relaxed) > 0,
        "the race must exercise the hit path"
    );

    // Quiesced: one final republication must land and be served — the
    // eviction path must not have destroyed the store's ability to hold
    // the entry (e.g. by deleting a freshly renamed good file).
    store.store(&key, FP, &good);
    match store.lookup(&key, FP) {
        TraceLookup::Hit(bytes) => assert_eq!(bytes, *good),
        other => panic!("entry must survive the race, got {other:?}"),
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// The targeted interleaving (deterministic, no sleeps): a reader that
/// decided an entry is corrupt must not delete the good entry a writer
/// renamed into place meanwhile. With the quarantine-rename eviction,
/// the reader instead *serves* the republished entry.
#[test]
fn eviction_never_deletes_a_republication() {
    let dir = tmp_dir("targeted");
    let store = TraceStore::at(&dir);
    let key = sample_key();
    let good = sample_bytes();
    const FP: u64 = 0xBAD;

    // Corrupt entry on disk; a reader observes it...
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}-{FP:016x}.trace", key.file_stem()));
    std::fs::write(&path, b"garbage").unwrap();
    // ...and before it evicts, a writer republishes the good entry.
    // (Single-threaded here: the interleaving is forced by ordering the
    // calls, which is exactly the window `lookup` must tolerate.)
    store.store(&key, FP, &good);

    // The pre-fix behavior deleted `path` at this point. Now the lookup
    // validates what it actually grabbed and serves it.
    match store.lookup(&key, FP) {
        TraceLookup::Hit(bytes) => assert_eq!(bytes, good),
        other => panic!("republished entry must be served, got {other:?}"),
    }
    assert!(path.exists(), "the good entry must still be on disk");

    let _ = std::fs::remove_dir_all(&dir);
}
