//! Integration tests for the trace-store subsystem: replaying a captured
//! instruction trace must be bit-identical to a live run under the same
//! config, capture must happen at most once per distinct workload, and a
//! warm store must satisfy a fresh context entirely from disk.

use graphpim::config::{PimMode, SystemConfig};
use graphpim::experiments::{Experiments, RunKey};
use graphpim::metrics::RunMetrics;
use graphpim::system::SystemSim;
use graphpim::tracestore::{capture_kernel, TraceStore};
use graphpim_graph::generate::{GraphSpec, LdbcSize};
use graphpim_graph::CsrGraph;
use graphpim_sim::trace::codec::DecodedTrace;
use graphpim_workloads::framework::Framework;
use graphpim_workloads::kernels::{Bfs, Kernel, PRank};
use std::path::PathBuf;

fn graph() -> CsrGraph {
    GraphSpec::uniform(3_000, 12_000).seed(11).build()
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("graphpim-replay-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_bit_identical(live: &RunMetrics, replayed: &RunMetrics, what: &str) {
    assert_eq!(replayed, live, "replay diverged for {what}");
    assert_eq!(
        replayed.total_cycles.to_bits(),
        live.total_cycles.to_bits(),
        "cycle count not bit-identical for {what}"
    );
    assert_eq!(
        replayed.memory_service_cycles.to_bits(),
        live.memory_service_cycles.to_bits(),
        "memory service cycles not bit-identical for {what}"
    );
}

/// One capture serves both an atomic-heavy (BFS) and an FP (PageRank)
/// kernel across baseline and PIM configs: the replay of each trace is
/// bit-identical to the corresponding live run.
#[test]
fn replay_is_bit_identical_to_live_run() {
    let g = graph();
    type MakeKernel = fn() -> Box<dyn Kernel>;
    let kernels: [(&str, MakeKernel); 2] = [
        ("BFS", || Box::new(Bfs::new(0))),
        ("PRank", || Box::new(PRank::new(2))),
    ];
    for (name, make) in kernels {
        let config = SystemConfig::tiny(PimMode::Baseline);
        let bytes = capture_kernel(make().as_mut(), &g, config.sim.core.cores);
        for mode in [PimMode::Baseline, PimMode::GraphPim, PimMode::UPei] {
            let config = SystemConfig::tiny(mode);
            let live = SystemSim::run_kernel(make().as_mut(), &g, &config);
            let replayed = SystemSim::run_replayed(&bytes, &config).expect("valid trace");
            assert_bit_identical(&live, &replayed, &format!("{name} under {mode}"));
        }
        // The same trace also replays faithfully under non-default timing
        // parameters — the point of capture-once / replay-many.
        let tweaked = SystemConfig::tiny(PimMode::GraphPim)
            .with_fus_per_vault(4)
            .with_link_bandwidth_factor(0.5);
        let live = SystemSim::run_kernel(make().as_mut(), &g, &tweaked);
        let replayed = SystemSim::run_replayed(&bytes, &tweaked).expect("valid trace");
        assert_bit_identical(&live, &replayed, &format!("{name} tweaked"));
    }
}

/// The captured thread count need not equal the replay config's core
/// count — the scheduler folds thread `t` onto core `t % cores`. Capture
/// BFS at 1:1, 2:1, and an odd ratio against the tiny config's two cores
/// and check both replay paths (streaming bytes, and the decode-once
/// fast path) against a live run driven at the same thread count.
#[test]
fn replay_matches_live_across_thread_core_ratios() {
    let g = graph();
    for threads in [2usize, 4, 5] {
        let bytes = {
            let mut bfs = Bfs::new(0);
            capture_kernel(&mut bfs, &g, threads)
        };
        let decoded = DecodedTrace::decode(&bytes).expect("valid capture");
        assert_eq!(decoded.threads(), threads);
        for mode in [PimMode::Baseline, PimMode::GraphPim, PimMode::UPei] {
            let config = SystemConfig::tiny(mode);
            // Live run at the captured thread count. `run_kernel` always
            // uses the core count as the thread count, so drive the
            // framework by hand here.
            let mut sys = SystemSim::new(config.clone());
            {
                let mut fw = Framework::new(threads, &mut sys);
                let mut bfs = Bfs::new(0);
                bfs.run(&g, &mut fw);
                fw.finish();
            }
            let live = sys.into_metrics();

            let what = format!("BFS threads={threads} under {mode:?}");
            let replayed = SystemSim::run_replayed(&bytes, &config).expect("valid trace");
            assert_bit_identical(&live, &replayed, &what);
            let fast = SystemSim::run_decoded(&decoded, &config);
            assert_bit_identical(&live, &fast, &format!("{what} (pre-decoded)"));
        }
    }
}

#[test]
fn garbage_bytes_are_rejected_not_replayed() {
    let config = SystemConfig::tiny(PimMode::Baseline);
    assert!(SystemSim::run_replayed(b"not a trace", &config).is_err());
    assert!(SystemSim::run_replayed(&[], &config).is_err());
}

/// The engine captures each distinct workload once and replays it for
/// every sweep point; disabling the store must not change any metric.
#[test]
fn engine_replay_matches_store_disabled_runs() {
    let keys: Vec<RunKey> = [PimMode::Baseline, PimMode::GraphPim, PimMode::UPei]
        .into_iter()
        .map(|mode| RunKey::new("BFS", mode, LdbcSize::K1))
        .chain([RunKey::new("BFS", PimMode::GraphPim, LdbcSize::K1).with_fus(4)])
        .collect();

    // Reference: trace store disabled, every run executes live.
    let plain = Experiments::with_cache(LdbcSize::K1, None).with_trace_store(None);
    let expected: Vec<RunMetrics> = keys.iter().map(|k| plain.metrics_for(k)).collect();
    assert_eq!(plain.profile().trace_store().captures, 0);

    let store_dir = tmp_dir("engine");
    let ctx = Experiments::with_cache(LdbcSize::K1, None)
        .with_trace_store(Some(TraceStore::at(&store_dir)));
    ctx.prewarm(keys.iter().cloned());
    for (key, want) in keys.iter().zip(&expected) {
        let got = ctx.metrics_for(key);
        assert_eq!(&got, want, "trace-store replay diverged for {key:?}");
        assert_eq!(got.total_cycles.to_bits(), want.total_cycles.to_bits());
    }

    // Four sweep points, one workload: exactly one functional execution.
    let counts = ctx.profile().trace_store();
    assert_eq!(counts.captures, 1, "one capture per distinct workload");
    assert_eq!(counts.replays, keys.len());
    assert_eq!(counts.replay_fallbacks, 0);
    assert_eq!(counts.corrupt, 0);
    // Timing simulations still count as simulations.
    assert_eq!(ctx.simulations_executed(), keys.len());

    // A fresh context over the same store replays without capturing.
    let warm = Experiments::with_cache(LdbcSize::K1, None)
        .with_trace_store(Some(TraceStore::at(&store_dir)));
    let again = warm.metrics_for(&keys[0]);
    assert_eq!(again, expected[0]);
    let counts = warm.profile().trace_store();
    assert_eq!(counts.captures, 0, "warm store must not re-execute kernels");
    assert_eq!(counts.disk_hits, 1);

    let _ = std::fs::remove_dir_all(&store_dir);
}

/// FNV-1a, as the trace codec computes its integrity footer.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A decode error *mid-replay* — after the up-front checksum verification
/// passed — must discard the partially-replayed state and fall back to a
/// live run with metrics identical to a cold, store-disabled run,
/// incrementing `tracestore.replay_fallbacks` exactly once.
///
/// Flipping a byte naively cannot reach this path (`TraceReader::new`
/// verifies the whole-file checksum first), so the corruption is
/// *resealed*: the end-frame tag becomes an invalid op tag and the FNV-1a
/// footer is recomputed over the tampered bytes.
#[test]
fn mid_replay_decode_error_falls_back_to_live_run() {
    let store_dir = tmp_dir("fallback");
    let key = RunKey::new("DC", PimMode::GraphPim, LdbcSize::K1);

    let first = Experiments::with_cache(LdbcSize::K1, None)
        .with_trace_store(Some(TraceStore::at(&store_dir)));
    let want = first.metrics_for(&key);
    assert_eq!(first.profile().trace_store().captures, 1);
    drop(first);

    let mut resealed = 0;
    for entry in std::fs::read_dir(&store_dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "trace") {
            let mut bytes = std::fs::read(&path).unwrap();
            let len = bytes.len();
            assert_eq!(bytes[len - 9], 0x00, "end-frame tag precedes the footer");
            bytes[len - 9] = 0x7F; // no such frame tag
            let sum = fnv1a(&bytes[..len - 8]).to_le_bytes();
            bytes[len - 8..].copy_from_slice(&sum);
            std::fs::write(&path, &bytes).unwrap();
            resealed += 1;
        }
    }
    assert_eq!(resealed, 1);

    // Reference: a cold run with the store disabled entirely.
    let plain = Experiments::with_cache(LdbcSize::K1, None).with_trace_store(None);
    let live = plain.metrics_for(&key);

    let second = Experiments::with_cache(LdbcSize::K1, None)
        .with_trace_store(Some(TraceStore::at(&store_dir)));
    let got = second.metrics_for(&key);
    assert_bit_identical(&live, &got, "mid-replay fallback");
    assert_eq!(
        got, want,
        "fallback must also match the original capture run"
    );

    let counts = second.profile().trace_store();
    assert_eq!(counts.replay_fallbacks, 1, "exactly one fallback");
    assert_eq!(
        counts.corrupt, 0,
        "resealed trace passes the integrity check"
    );
    assert_eq!(counts.captures, 0, "fallback runs live without recapturing");
    assert_eq!(counts.replays, 0, "a failed replay is not a replay");

    let _ = std::fs::remove_dir_all(&store_dir);
}

/// A corrupt store entry degrades to recapture, never to a wrong replay.
#[test]
fn corrupt_store_entry_forces_recapture() {
    let store_dir = tmp_dir("corrupt");
    let key = RunKey::new("DC", PimMode::GraphPim, LdbcSize::K1);

    let first = Experiments::with_cache(LdbcSize::K1, None)
        .with_trace_store(Some(TraceStore::at(&store_dir)));
    let want = first.metrics_for(&key);
    assert_eq!(first.profile().trace_store().captures, 1);
    drop(first);

    // Flip a byte in the middle of every stored trace.
    let mut flipped = 0;
    for entry in std::fs::read_dir(&store_dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "trace") {
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x08;
            std::fs::write(&path, &bytes).unwrap();
            flipped += 1;
        }
    }
    assert_eq!(flipped, 1);

    let second = Experiments::with_cache(LdbcSize::K1, None)
        .with_trace_store(Some(TraceStore::at(&store_dir)));
    let got = second.metrics_for(&key);
    assert_eq!(got, want, "recaptured replay must match");
    let counts = second.profile().trace_store();
    assert_eq!(counts.corrupt, 1);
    assert_eq!(counts.captures, 1, "corruption must force a recapture");

    let _ = std::fs::remove_dir_all(&store_dir);
}
