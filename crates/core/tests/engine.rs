//! Integration tests for the parallel experiment engine: concurrent
//! prewarming must be bit-identical to serial simulation, the disk cache
//! must round-trip results across contexts, and telemetry must be
//! observation-only. (Environment-mutating tests live in the dedicated
//! `cache_env` binary so they cannot race contexts created here.)

use graphpim::config::PimMode;
use graphpim::experiments::{DiskCache, Experiments, RunKey};
use graphpim::metrics::RunMetrics;
use graphpim_graph::generate::LdbcSize;
use std::path::PathBuf;

fn eval_keys() -> Vec<RunKey> {
    ["DC", "BFS"]
        .iter()
        .flat_map(|&kernel| {
            [PimMode::Baseline, PimMode::GraphPim]
                .map(|mode| RunKey::new(kernel, mode, LdbcSize::K1))
        })
        .collect()
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("graphpim-engine-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn concurrent_prewarm_is_bit_identical_to_serial() {
    let keys = eval_keys();

    // Serial reference: one run per key, no disk cache, no pool.
    let serial = Experiments::with_cache(LdbcSize::K1, None);
    let expected: Vec<RunMetrics> = keys.iter().map(|k| serial.metrics_for(k)).collect();

    // Hammer one shared context from several threads at once; every
    // thread asks for the full key set.
    let parallel = Experiments::with_cache(LdbcSize::K1, None);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| parallel.prewarm(keys.iter().cloned()));
        }
    });

    // Each distinct key was simulated exactly once despite 4 requesters...
    assert_eq!(parallel.simulations_executed(), keys.len());
    assert_eq!(parallel.cached_runs(), keys.len());
    // ...and every result matches the serial run bit for bit.
    for (key, want) in keys.iter().zip(&expected) {
        let got = parallel.metrics_for(key);
        assert_eq!(&got, want, "parallel result diverged for {key:?}");
        assert_eq!(
            got.total_cycles.to_bits(),
            want.total_cycles.to_bits(),
            "cycle count not bit-identical for {key:?}"
        );
    }
}

#[test]
fn prewarm_deduplicates_keys() {
    let ctx = Experiments::with_cache(LdbcSize::K1, None);
    let key = RunKey::new("DC", PimMode::Baseline, LdbcSize::K1);
    ctx.prewarm(vec![key.clone(), key.clone(), key.clone()]);
    assert_eq!(ctx.simulations_executed(), 1);
}

#[test]
fn disk_cache_round_trips_across_contexts() {
    let dir = tmp_dir("roundtrip");
    let key = RunKey::new("DC", PimMode::GraphPim, LdbcSize::K1);

    // First context simulates and persists.
    let first = Experiments::with_cache(LdbcSize::K1, Some(DiskCache::at(&dir)));
    let computed = first.metrics_for(&key);
    assert_eq!(first.simulations_executed(), 1);
    assert_eq!(first.disk_cache_hits(), 0);
    drop(first);

    // A fresh context over the same directory replays from disk: zero new
    // simulations, equal metrics.
    let second = Experiments::with_cache(LdbcSize::K1, Some(DiskCache::at(&dir)));
    let replayed = second.metrics_for(&key);
    assert_eq!(
        second.simulations_executed(),
        0,
        "warm cache must not re-simulate"
    );
    assert_eq!(second.disk_cache_hits(), 1);
    assert_eq!(replayed, computed);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_cache_misses_on_different_run_parameters() {
    let dir = tmp_dir("params");
    let key = RunKey::new("DC", PimMode::GraphPim, LdbcSize::K1);

    let first = Experiments::with_cache(LdbcSize::K1, Some(DiskCache::at(&dir)));
    first.metrics_for(&key);
    drop(first);

    // Same kernel/mode/size but a different FU count resolves to a
    // different config, so the persisted entry must not be reused.
    let second = Experiments::with_cache(LdbcSize::K1, Some(DiskCache::at(&dir)));
    second.metrics_for(&key.clone().with_fus(1));
    assert_eq!(second.simulations_executed(), 1);
    assert_eq!(second.disk_cache_hits(), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn traced_replay_is_bit_identical() {
    let keys = eval_keys();
    let trace_dir = tmp_dir("traced");

    // Plain reference sweep.
    let plain = Experiments::with_cache(LdbcSize::K1, None);
    let expected: Vec<RunMetrics> = keys.iter().map(|k| plain.metrics_for(k)).collect();

    // Same sweep with tracing on: telemetry must be observation-only.
    let traced = Experiments::with_cache(LdbcSize::K1, None).with_trace_dir(&trace_dir);
    traced.prewarm(keys.iter().cloned());
    for (key, want) in keys.iter().zip(&expected) {
        let got = traced.metrics_for(key);
        assert_eq!(&got, want, "tracing changed the result for {key:?}");
        assert_eq!(
            got.total_cycles.to_bits(),
            want.total_cycles.to_bits(),
            "cycle count not bit-identical under tracing for {key:?}"
        );
        let trace_file = trace_dir.join(format!("{}.jsonl", key.file_stem()));
        assert!(trace_file.is_file(), "missing trace {trace_file:?}");
    }

    // The engine profile saw the prewarm fan-out and every simulation.
    let profile = traced.profile();
    assert_eq!(profile.runs().len(), keys.len());
    assert_eq!(profile.prewarms().len(), 1);
    assert_eq!(profile.prewarms()[0].keys, keys.len());
    assert!(profile.simulated_seconds() > 0.0);
    assert!(profile.summary().contains("[profile] runs:"));

    let _ = std::fs::remove_dir_all(&trace_dir);
}
