//! Integration tests for the parallel experiment engine: concurrent
//! prewarming must be bit-identical to serial simulation, the disk cache
//! must round-trip results across contexts, and the environment knobs
//! must parse strictly.

use graphpim::config::PimMode;
use graphpim::experiments::{DiskCache, Experiments, RunKey};
use graphpim::metrics::RunMetrics;
use graphpim_graph::generate::LdbcSize;
use std::path::PathBuf;

fn eval_keys() -> Vec<RunKey> {
    ["DC", "BFS"]
        .iter()
        .flat_map(|&kernel| {
            [PimMode::Baseline, PimMode::GraphPim]
                .map(|mode| RunKey::new(kernel, mode, LdbcSize::K1))
        })
        .collect()
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("graphpim-engine-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn concurrent_prewarm_is_bit_identical_to_serial() {
    let keys = eval_keys();

    // Serial reference: one run per key, no disk cache, no pool.
    let serial = Experiments::with_cache(LdbcSize::K1, None);
    let expected: Vec<RunMetrics> = keys.iter().map(|k| serial.metrics_for(k)).collect();

    // Hammer one shared context from several threads at once; every
    // thread asks for the full key set.
    let parallel = Experiments::with_cache(LdbcSize::K1, None);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| parallel.prewarm(keys.iter().cloned()));
        }
    });

    // Each distinct key was simulated exactly once despite 4 requesters...
    assert_eq!(parallel.simulations_executed(), keys.len());
    assert_eq!(parallel.cached_runs(), keys.len());
    // ...and every result matches the serial run bit for bit.
    for (key, want) in keys.iter().zip(&expected) {
        let got = parallel.metrics_for(key);
        assert_eq!(&got, want, "parallel result diverged for {key:?}");
        assert_eq!(
            got.total_cycles.to_bits(),
            want.total_cycles.to_bits(),
            "cycle count not bit-identical for {key:?}"
        );
    }
}

#[test]
fn prewarm_deduplicates_keys() {
    let ctx = Experiments::with_cache(LdbcSize::K1, None);
    let key = RunKey::new("DC", PimMode::Baseline, LdbcSize::K1);
    ctx.prewarm(vec![key.clone(), key.clone(), key.clone()]);
    assert_eq!(ctx.simulations_executed(), 1);
}

#[test]
fn disk_cache_round_trips_across_contexts() {
    let dir = tmp_dir("roundtrip");
    let key = RunKey::new("DC", PimMode::GraphPim, LdbcSize::K1);

    // First context simulates and persists.
    let first = Experiments::with_cache(LdbcSize::K1, Some(DiskCache::at(&dir)));
    let computed = first.metrics_for(&key);
    assert_eq!(first.simulations_executed(), 1);
    assert_eq!(first.disk_cache_hits(), 0);
    drop(first);

    // A fresh context over the same directory replays from disk: zero new
    // simulations, equal metrics.
    let second = Experiments::with_cache(LdbcSize::K1, Some(DiskCache::at(&dir)));
    let replayed = second.metrics_for(&key);
    assert_eq!(
        second.simulations_executed(),
        0,
        "warm cache must not re-simulate"
    );
    assert_eq!(second.disk_cache_hits(), 1);
    assert_eq!(replayed, computed);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_cache_misses_on_different_run_parameters() {
    let dir = tmp_dir("params");
    let key = RunKey::new("DC", PimMode::GraphPim, LdbcSize::K1);

    let first = Experiments::with_cache(LdbcSize::K1, Some(DiskCache::at(&dir)));
    first.metrics_for(&key);
    drop(first);

    // Same kernel/mode/size but a different FU count resolves to a
    // different config, so the persisted entry must not be reused.
    let second = Experiments::with_cache(LdbcSize::K1, Some(DiskCache::at(&dir)));
    second.metrics_for(&key.clone().with_fus(1));
    assert_eq!(second.simulations_executed(), 1);
    assert_eq!(second.disk_cache_hits(), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn from_env_rejects_unknown_scale() {
    // Sole test in this binary touching GRAPHPIM_SCALE, so no env races.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    std::env::set_var("GRAPHPIM_SCALE", "10000");
    let result = std::panic::catch_unwind(|| Experiments::from_env().size());
    let message = *result
        .expect_err("typo'd scale must panic, not fall back to a default")
        .downcast::<String>()
        .expect("panic payload");
    assert!(
        message.contains("1k, 10k, 100k, 1m"),
        "error must list valid values: {message}"
    );

    // Case-insensitive accept path.
    std::env::set_var("GRAPHPIM_SCALE", "1K");
    let size = std::panic::catch_unwind(|| Experiments::from_env().size())
        .expect("uppercase scale is valid");
    assert_eq!(size, LdbcSize::K1);

    std::env::remove_var("GRAPHPIM_SCALE");
    std::panic::set_hook(prev_hook);
}
