//! Scale-path contracts: the memory-lean streaming/pipelined execution
//! paths must be bit-identical to the sequential ones on a real LDBC
//! input, and the LDBC-1M configuration must actually run memory-lean.
//!
//! The unit tests in `stream.rs` pin the same identities on a small
//! uniform graph; these run on the engine's LDBC-1k graph (seed 7 — the
//! exact graph the committed bench baseline simulates) so a divergence
//! that only shows up under real degree skew is caught too.

use graphpim::config::{PimMode, SystemConfig};
use graphpim::system::SystemSim;
use graphpim::tracestore::capture_kernel;
use graphpim_graph::generate::{GraphSpec, LdbcSize};
use graphpim_workloads::kernels::{Bfs, DCentr, Sssp};

const ALL_MODES: [PimMode; 3] = [PimMode::Baseline, PimMode::UPei, PimMode::GraphPim];

/// The engine's graph seed (`GRAPH_SEED` in the experiments module).
const SEED: u64 = 7;

#[test]
fn pipelined_run_is_bit_identical_on_ldbc_1k() {
    let graph = GraphSpec::ldbc(LdbcSize::K1).seed(SEED).build();
    for mode in ALL_MODES {
        let config = SystemConfig::hpca(mode);
        let sequential = SystemSim::run_kernel(&mut Bfs::new(0), &graph, &config);
        let pipelined = SystemSim::run_kernel_pipelined(&mut Bfs::new(0), &graph, &config);
        assert_eq!(sequential, pipelined, "BFS diverged under {mode:?}");

        let sequential = SystemSim::run_kernel(&mut DCentr::new(), &graph, &config);
        let pipelined = SystemSim::run_kernel_pipelined(&mut DCentr::new(), &graph, &config);
        assert_eq!(sequential, pipelined, "DC diverged under {mode:?}");
    }
}

#[test]
fn pipelined_run_is_bit_identical_on_weighted_ldbc_1k() {
    // SSSP drives the weighted graph and the CAS-retry path.
    let graph = GraphSpec::ldbc(LdbcSize::K1).seed(SEED).weighted().build();
    for mode in ALL_MODES {
        let config = SystemConfig::hpca(mode);
        let sequential = SystemSim::run_kernel(&mut Sssp::new(0), &graph, &config);
        let pipelined = SystemSim::run_kernel_pipelined(&mut Sssp::new(0), &graph, &config);
        assert_eq!(sequential, pipelined, "SSSP diverged under {mode:?}");
    }
}

#[test]
fn streaming_replay_is_bit_identical_on_ldbc_1k() {
    let graph = GraphSpec::ldbc(LdbcSize::K1).seed(SEED).build();
    let threads = SystemConfig::hpca(PimMode::Baseline).sim.core.cores;
    let bytes = capture_kernel(&mut Bfs::new(0), &graph, threads);
    for mode in ALL_MODES {
        let config = SystemConfig::hpca(mode);
        let decoded = SystemSim::run_replayed(&bytes, &config).expect("valid trace");
        let streamed = SystemSim::run_replayed_streaming(&bytes, &config).expect("valid trace");
        assert_eq!(decoded, streamed, "replay diverged under {mode:?}");
    }
}

/// Peak resident set of this process (`VmHWM`), in bytes.
fn peak_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("linux /proc");
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .expect("VmHWM is a number");
            return kb * 1024;
        }
    }
    panic!("no VmHWM in /proc/self/status");
}

/// LDBC-1M smoke: generate the 28.8M-edge graph, capture DC streaming to
/// disk, and replay it under GraphPIM through the frame-by-frame path.
///
/// Peak-RSS budget: the graph itself is ~250 MB of CSR arrays; DC's
/// encoded trace at 1M is ~700 MB (measured ~7 MB at 10k, linear in
/// edges); the streaming capture and replay paths hold at most a couple
/// of supersteps of decoded ops on top. 8 GiB leaves ~4× headroom over
/// the expected ~2 GiB so the assertion survives allocator noise while
/// still failing loudly if either path regresses to buffering the whole
/// decoded trace (which costs several times the encoded size).
///
/// `#[ignore]`d: takes minutes. Run alone (the budget is process-wide):
///
/// ```text
/// cargo test --release --test scale -- --ignored
/// ```
#[test]
#[ignore = "LDBC-1M smoke: minutes of wall time; run with --release -- --ignored"]
fn ldbc_1m_dc_runs_memory_lean() {
    const RSS_BUDGET: u64 = 8 << 30;
    let graph = GraphSpec::ldbc(LdbcSize::M1).seed(SEED).build();
    assert_eq!(graph.vertex_count(), 1_000_000);
    assert!(graph.edge_count() > 20_000_000, "1M tier is ~28.8M edges");

    let config = SystemConfig::hpca(PimMode::GraphPim);
    let threads = config.sim.core.cores;
    let bytes = capture_kernel(&mut DCentr::new(), &graph, threads);
    let metrics = SystemSim::run_replayed_streaming(&bytes, &config).expect("valid trace");
    assert!(metrics.total_cycles > 0.0);
    assert!(metrics.offloaded_atomics > 0, "DC offloads under GraphPIM");

    let peak = peak_rss_bytes();
    assert!(
        peak < RSS_BUDGET,
        "peak RSS {peak} bytes exceeds the documented {RSS_BUDGET}-byte budget"
    );
}
