//! Concurrency test for the structured logger's framing guarantee:
//! lines from many threads logging simultaneously never tear, because
//! each record is rendered into one buffer and handed to the sink as a
//! single `write_line` call.
//!
//! The whole scenario lives in one `#[test]` because the sink, filter,
//! and format are process-global test hooks; splitting it across tests
//! would let the harness's parallel execution interleave the overrides.

use graphpim::obs;
use std::sync::{Arc, Mutex};

/// Captures whole lines; panics (failing the test) if a caller ever
/// hands it a fragment without a trailing newline.
struct BufferSink {
    lines: Arc<Mutex<Vec<u8>>>,
}

impl obs::Sink for BufferSink {
    fn write_line(&self, line: &[u8]) -> bool {
        assert!(
            line.ends_with(b"\n"),
            "sink received an unterminated fragment"
        );
        self.lines.lock().unwrap().extend_from_slice(line);
        true
    }
}

#[test]
fn concurrent_log_lines_never_tear() {
    const THREADS: usize = 8;
    const LINES_PER_THREAD: usize = 250;

    let captured = Arc::new(Mutex::new(Vec::new()));
    let previous = obs::set_sink(Box::new(BufferSink {
        lines: Arc::clone(&captured),
    }));
    obs::set_filter("debug");
    obs::set_format(obs::Format::Json);

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                // Context fields exercise the per-thread stack under
                // contention; a long payload widens the tear window a
                // torn write would need to hide in.
                let _guard = obs::push_context("trace", &format!("thread-{t}"));
                let payload = format!("payload-{t}-{}", "x".repeat(64));
                for i in 0..LINES_PER_THREAD {
                    obs::debug(
                        "framing-test",
                        "concurrent line",
                        &[("thread", &t), ("seq", &i), ("payload", &payload)],
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("logging thread");
    }

    // Restore global state before asserting, so a failure below cannot
    // leave other binaries' output swallowed.
    let bytes = captured.lock().unwrap().clone();
    obs::set_sink(previous);
    obs::set_filter("info");
    obs::set_format(obs::Format::Logfmt);

    let text = String::from_utf8(bytes).expect("log output is UTF-8");
    let lines: Vec<&str> = text.lines().collect();

    // Byte-exact framing: every emitted record is exactly one line,
    // every line is exactly one record. A torn write would produce a
    // line with two timestamps, a line missing its target, or an
    // unparseable JSON object.
    let mut seen = std::collections::HashSet::new();
    let mut ours = 0usize;
    for line in &lines {
        let doc = graphpim::experiments::cache::json::parse(line)
            .unwrap_or_else(|| panic!("torn or malformed line: {line:?}"));
        let obj = doc.as_object().expect("log record is an object");
        if obj.get("target").and_then(|v| v.as_str()) != Some("framing-test") {
            continue; // another test in this process logged concurrently
        }
        ours += 1;
        assert_eq!(
            line.matches("\"ts\": ").count(),
            1,
            "exactly one timestamp per line: {line:?}"
        );
        let thread = obj.get("thread").and_then(|v| v.as_str()).expect("thread");
        let seq = obj.get("seq").and_then(|v| v.as_str()).expect("seq");
        let trace = obj.get("trace").and_then(|v| v.as_str()).expect("trace");
        assert_eq!(
            trace,
            format!("thread-{thread}"),
            "context followed its thread"
        );
        assert!(
            seen.insert((thread.to_string(), seq.to_string())),
            "duplicate record {thread}/{seq}"
        );
    }
    assert_eq!(
        ours,
        THREADS * LINES_PER_THREAD,
        "every record arrived intact"
    );
}
