//! End-to-end telemetry tests: a traced run must produce bit-identical
//! metrics, and its JSONL trace must parse back with the final snapshot
//! agreeing exactly with the finalized `RunMetrics` counters.

use graphpim::config::PimMode;
use graphpim::experiments::{Experiments, RunKey};
use graphpim::telemetry::TraceSnapshot;
use graphpim_graph::generate::LdbcSize;

#[test]
fn traced_run_is_bit_identical_and_trace_parses() {
    let trace_dir = std::env::temp_dir().join(format!("graphpim-telemetry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&trace_dir);
    let key = RunKey::new("DC", PimMode::GraphPim, LdbcSize::K1);

    let plain = Experiments::with_cache(LdbcSize::K1, None);
    let want = plain.metrics_for(&key);

    let traced = Experiments::with_cache(LdbcSize::K1, None).with_trace_dir(&trace_dir);
    let got = traced.metrics_for(&key);

    // Telemetry is observation-only: every field identical, cycles
    // bit-identical.
    assert_eq!(got, want);
    assert_eq!(got.total_cycles.to_bits(), want.total_cycles.to_bits());

    // The trace exists, parses line by line, and is monotone.
    let trace_file = trace_dir.join(format!("{}.jsonl", key.file_stem()));
    let text = std::fs::read_to_string(&trace_file).expect("trace file written");
    let snapshots: Vec<TraceSnapshot> = text
        .lines()
        .map(|line| TraceSnapshot::parse_line(line).expect("every line parses"))
        .collect();
    assert!(
        snapshots.len() >= 2,
        "expected at least one barrier snapshot plus the final one, got {}",
        snapshots.len()
    );
    for pair in snapshots.windows(2) {
        assert!(
            pair[1].superstep > pair[0].superstep,
            "supersteps must strictly increase"
        );
        assert!(
            pair[1].cycle >= pair[0].cycle,
            "snapshot cycles must be non-decreasing"
        );
    }

    // Counters never decrease across snapshots (they are all cumulative
    // counts or cycle sums) — spot-check the headline ones.
    for counter in ["core.instructions", "hmc.atomics", "mem.l1.hits"] {
        let series: Vec<f64> = snapshots
            .iter()
            .map(|s| s.counters.get(counter).expect("counter present"))
            .collect();
        assert!(
            series.windows(2).all(|w| w[1] >= w[0]),
            "{counter} decreased across snapshots: {series:?}"
        );
    }

    // The final snapshot agrees bit-for-bit with the finalized metrics.
    let last = snapshots.last().unwrap();
    let finalized = got.counter_registry();
    for (counter, value) in finalized.iter() {
        let traced_value = last
            .counters
            .get(counter)
            .unwrap_or_else(|| panic!("final snapshot missing {counter}"));
        assert_eq!(
            traced_value.to_bits(),
            value.to_bits(),
            "final snapshot disagrees with RunMetrics on {counter}"
        );
    }
    assert_eq!(
        last.counters.get("system.total_cycles").unwrap().to_bits(),
        got.total_cycles.to_bits()
    );

    // Vault histograms are only present in traced runs, and only in the
    // trace (never in RunMetrics).
    assert!(last.counters.get("hmc.vault00.queue_wait.count").is_some());
    assert!(finalized.get("hmc.vault00.queue_wait.count").is_none());

    let _ = std::fs::remove_dir_all(&trace_dir);
}
