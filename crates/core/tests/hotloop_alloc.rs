//! Guards the allocation-free property of the replay hot loop.
//!
//! Every scratch structure on the per-op path (scheduler heap and
//! cursors, writeback scratch, ROB ring, MSHR list, sharers map, vault
//! state) is either fixed-size or pre-sized at construction and reused
//! across chunks. This test drives the first half of a decoded trace to
//! let those buffers reach steady state, then counts allocator calls
//! over the second half — any regression that puts an allocation back on
//! the per-op path (a per-chunk `Vec`, a rehash, a `format!`) fails it.
//!
//! The counting allocator is process-global, so this file holds exactly
//! one `#[test]`: a sibling test running concurrently would allocate
//! while the counter is armed.

use graphpim::config::{PimMode, SystemConfig};
use graphpim::system::SystemSim;
use graphpim::tracestore::capture_kernel;
use graphpim_graph::generate::GraphSpec;
use graphpim_sim::trace::codec::DecodedTrace;
use graphpim_workloads::kernels::Bfs;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Passes everything through to the system allocator, counting
/// allocation-path calls (not frees) while armed.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_replay_does_not_allocate() {
    let g = GraphSpec::uniform(3_000, 12_000).seed(11).build();
    let config = SystemConfig::tiny(PimMode::GraphPim);
    let bytes = {
        let mut bfs = Bfs::new(0);
        capture_kernel(&mut bfs, &g, config.sim.core.cores)
    };
    let decoded = DecodedTrace::decode(&bytes).expect("valid capture");
    let events: Vec<_> = decoded.events().collect();
    assert!(
        events.len() >= 8,
        "need enough events for a meaningful warmup/measure split, got {}",
        events.len()
    );

    let mut sys = SystemSim::new(config);
    let (warmup, measured) = events.split_at(events.len() / 2);
    for &event in warmup {
        sys.replay_decoded_event(&decoded, event);
    }

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for &event in measured {
        sys.replay_decoded_event(&decoded, event);
    }
    ARMED.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);

    // Disarmed before `into_metrics`: finalization legitimately builds
    // telemetry strings.
    let metrics = sys.into_metrics();
    assert!(
        metrics.total_cycles > 0.0,
        "replay must have simulated work"
    );
    assert_eq!(
        allocs, 0,
        "replay hot loop allocated {allocs} time(s) after warmup; \
         the per-op path must stay allocation-free"
    );
}
