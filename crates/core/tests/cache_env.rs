//! Environment-knob tests, isolated in their own binary: every test here
//! mutates process environment variables, so they serialize on one lock
//! and no other integration-test binary can observe a half-set state.

use graphpim::config::PimMode;
use graphpim::experiments::{DiskCache, Experiments, RunKey};
use graphpim_graph::generate::LdbcSize;
use std::sync::Mutex;

/// All tests in this binary mutate the environment; they take this lock
/// for their whole body so the default parallel test runner cannot
/// interleave them.
static ENV_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn from_env_rejects_unknown_scale() {
    let _guard = ENV_LOCK.lock().unwrap();
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    std::env::set_var("GRAPHPIM_SCALE", "10000");
    let result = std::panic::catch_unwind(|| Experiments::from_env().size());
    let message = *result
        .expect_err("typo'd scale must panic, not fall back to a default")
        .downcast::<String>()
        .expect("panic payload");
    assert!(
        message.contains("1k, 10k, 100k, 1m"),
        "error must list valid values: {message}"
    );

    // Case-insensitive accept path.
    std::env::set_var("GRAPHPIM_SCALE", "1K");
    let size = std::panic::catch_unwind(|| Experiments::from_env().size())
        .expect("uppercase scale is valid");
    assert_eq!(size, LdbcSize::K1);

    std::env::remove_var("GRAPHPIM_SCALE");
    std::panic::set_hook(prev_hook);
}

#[test]
fn flipping_result_env_knob_forces_cache_miss() {
    let _guard = ENV_LOCK.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("graphpim-envknob-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let key = RunKey::new("DC", PimMode::Baseline, LdbcSize::K1);

    // Populate the cache under one knob setting.
    std::env::set_var("GRAPHPIM_SCALE", "1k");
    let first = Experiments::with_cache(LdbcSize::K1, Some(DiskCache::at(&dir)));
    first.metrics_for(&key);
    assert_eq!(first.simulations_executed(), 1);
    drop(first);

    // Flip the knob: the same explicit key over the same cache directory
    // must NOT replay the old entry — the environment snapshot is part of
    // the fingerprint, so the stale entry is invalidated.
    std::env::set_var("GRAPHPIM_SCALE", "10k");
    let second = Experiments::with_cache(LdbcSize::K1, Some(DiskCache::at(&dir)));
    second.metrics_for(&key);
    assert_eq!(
        second.simulations_executed(),
        1,
        "changed env knob must force a re-simulation"
    );
    assert_eq!(second.disk_cache_hits(), 0);
    assert_eq!(
        second.profile().disk_stale(),
        1,
        "the invalidated entry must be classified stale, not miss"
    );
    drop(second);

    // Back to the original knob: the original entry is still valid.
    std::env::set_var("GRAPHPIM_SCALE", "1k");
    let third = Experiments::with_cache(LdbcSize::K1, Some(DiskCache::at(&dir)));
    third.metrics_for(&key);
    assert_eq!(third.simulations_executed(), 0);
    assert_eq!(third.disk_cache_hits(), 1);

    std::env::remove_var("GRAPHPIM_SCALE");
    let _ = std::fs::remove_dir_all(&dir);
}
