//! The mode × backend matrix: every offloading policy runs against every
//! memory backend, end to end through real workload kernels, with the
//! run-invariant layer enforcing conservation on each combination.
//!
//! The single-cube column is additionally pinned against a direct run of
//! the pre-trait configuration path (`SystemConfig::hpca` with the
//! default backend), so routing the paper's system through the trait
//! object is provably bit-identical.

use graphpim::config::{PimMode, SystemConfig};
use graphpim::metrics::RunMetrics;
use graphpim::system::SystemSim;
use graphpim_graph::generate::{GraphSpec, LdbcSize};
use graphpim_graph::CsrGraph;
use graphpim_sim::backend::{BackendConfig, DpuConfig, MultiCubeConfig};
use graphpim_workloads::kernels::{by_name, KernelParams};

fn backends() -> Vec<BackendConfig> {
    vec![
        BackendConfig::SingleCube,
        BackendConfig::MultiCube(MultiCubeConfig::default()),
        BackendConfig::Dpu(DpuConfig::default()),
    ]
}

fn run(kernel: &str, graph: &CsrGraph, mode: PimMode, backend: BackendConfig) -> RunMetrics {
    let config = SystemConfig::hpca(mode).with_backend(backend);
    let mut k = by_name(kernel, KernelParams::default()).expect("kernel exists");
    SystemSim::run_kernel(k.as_mut(), graph, &config)
}

#[test]
fn every_mode_runs_on_every_backend() {
    let graph = GraphSpec::ldbc(LdbcSize::K1).seed(7).build();
    for backend in backends() {
        for mode in PimMode::ALL {
            let m = run("DC", &graph, mode, backend.clone());
            // The run-invariant layer (enabled in debug/test builds)
            // already enforced conservation inside run_kernel; assert the
            // policy-visible shape here.
            assert!(m.total_cycles > 0.0, "{mode} on {}", backend.label());
            assert_eq!(
                m.hmc.reads + m.hmc.writes + m.hmc.atomics,
                m.hmc.dram_accesses,
                "{mode} on {}",
                backend.label()
            );
            match mode {
                PimMode::Baseline => assert_eq!(
                    m.offloaded_atomics,
                    0,
                    "baseline must not offload on {}",
                    backend.label()
                ),
                PimMode::UPei | PimMode::GraphPim => assert!(
                    m.offloaded_atomics > 0,
                    "{mode} must offload on {}",
                    backend.label()
                ),
            }
        }
    }
}

#[test]
fn backends_differ_where_the_models_say_they_must() {
    let graph = GraphSpec::ldbc(LdbcSize::K1).seed(7).build();
    let single = run("DC", &graph, PimMode::GraphPim, BackendConfig::SingleCube);
    let chain = run(
        "DC",
        &graph,
        PimMode::GraphPim,
        BackendConfig::MultiCube(MultiCubeConfig::default()),
    );
    let dpu = run(
        "DC",
        &graph,
        PimMode::GraphPim,
        BackendConfig::Dpu(DpuConfig::default()),
    );
    // Same traffic on every backend (routing is backend-agnostic) ...
    assert_eq!(single.offloaded_atomics, chain.offloaded_atomics);
    assert_eq!(single.offloaded_atomics, dpu.offloaded_atomics);
    assert_eq!(single.hmc.dram_accesses, chain.hmc.dram_accesses);
    assert_eq!(single.hmc.dram_accesses, dpu.hmc.dram_accesses);
    // ... but different timing: inter-cube hops and host↔DPU transfers
    // both cost cycles on this atomic-heavy kernel.
    assert!(
        chain.total_cycles > single.total_cycles,
        "chain {} vs single {}",
        chain.total_cycles,
        single.total_cycles
    );
    assert!(
        dpu.total_cycles > single.total_cycles,
        "dpu {} vs single {}",
        dpu.total_cycles,
        single.total_cycles
    );
    // Topology shows up in the stats: the chain exposes 4 x 32 vault
    // buckets, the DPU exposes one per rank.
    assert_eq!(chain.hmc.requests_per_vault.len(), 128);
    assert_eq!(dpu.hmc.requests_per_vault.len(), 16);
    assert_eq!(single.hmc.requests_per_vault.len(), 32);
}

#[test]
fn default_backend_is_bit_identical_to_explicit_single_cube() {
    let graph = GraphSpec::ldbc(LdbcSize::K1).seed(7).build();
    // `hpca` leaves the backend at its default; `with_backend` names it
    // explicitly. Both must be the same configuration and simulation.
    let default_config = SystemConfig::hpca(PimMode::GraphPim);
    assert_eq!(default_config.sim.backend, BackendConfig::SingleCube);
    let implicit = {
        let mut k = by_name("BFS", KernelParams::default()).expect("kernel");
        SystemSim::run_kernel(k.as_mut(), &graph, &default_config)
    };
    let explicit = run("BFS", &graph, PimMode::GraphPim, BackendConfig::SingleCube);
    assert_eq!(implicit, explicit);
    assert_eq!(
        implicit.total_cycles.to_bits(),
        explicit.total_cycles.to_bits()
    );
}
