//! Figure 7: speedups over the baseline system.
//!
//! The headline result: GraphPIM reaches up to 2.4× (PRank), >2× for BFS /
//! CComp / DC, ~60% on average, while kCore and TC barely move (few
//! offloaded atomics); GraphPIM beats the idealized U-PEI by ~20% on
//! average thanks to cache bypassing. BC and PRank require the FP
//! extension (enabled here, as in the paper's bars).

use super::{geomean, Experiments, RunKey, EVAL_KERNELS};
use crate::config::PimMode;
use crate::report::{fmt_speedup, Table};

/// One workload's bars.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Workload name.
    pub workload: String,
    /// U-PEI speedup over baseline.
    pub upei: f64,
    /// GraphPIM speedup over baseline.
    pub graphpim: f64,
}

/// The runs this figure needs (for prewarming).
pub fn keys(ctx: &Experiments) -> Vec<RunKey> {
    EVAL_KERNELS
        .iter()
        .flat_map(|&name| PimMode::ALL.map(|mode| RunKey::new(name, mode, ctx.size())))
        .collect()
}

/// Runs the three-configuration sweep.
pub fn run(ctx: &Experiments) -> Vec<Row> {
    ctx.prewarm(keys(ctx));
    let mut rows: Vec<Row> = EVAL_KERNELS
        .iter()
        .map(|&name| Row {
            workload: name.to_string(),
            upei: ctx.speedup(name, PimMode::UPei),
            graphpim: ctx.speedup(name, PimMode::GraphPim),
        })
        .collect();
    rows.push(Row {
        workload: "Average".into(),
        upei: geomean(rows.iter().map(|r| r.upei)),
        graphpim: geomean(rows.iter().map(|r| r.graphpim)),
    });
    rows
}

/// Formats the rows.
pub fn table(rows: &[Row]) -> Table {
    let mut t =
        Table::new("Figure 7: speedup over baseline").header(["Workload", "U-PEI", "GraphPIM"]);
    for r in rows {
        t.row([
            r.workload.clone(),
            fmt_speedup(r.upei),
            fmt_speedup(r.graphpim),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testctx;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn rows_cover_eval_set_plus_average() {
        // Structural check at smoke scale; the directional claims (who
        // wins, kCore/TC flat, GraphPIM >= U-PEI) are asserted in
        // tests/full_stack.rs in the cache-missing regime, and at full
        // scale by the recorded EXPERIMENTS.md run.
        let rows = run(testctx::k1());
        assert_eq!(rows.len(), 9);
        assert_eq!(rows.last().expect("avg").workload, "Average");
        for r in &rows {
            assert!(
                r.upei > 0.1 && r.upei < 20.0,
                "{}: {:.2}",
                r.workload,
                r.upei
            );
            assert!(
                r.graphpim > 0.1 && r.graphpim < 20.0,
                "{}: {:.2}",
                r.workload,
                r.graphpim
            );
        }
        // Atomic-dense kernels benefit even when the graph is cache
        // resident (the in-core atomic cost is size independent).
        let dc = rows.iter().find(|r| r.workload == "DC").expect("DC");
        assert!(dc.graphpim > 1.0, "DC at smoke scale: {:.2}", dc.graphpim);
    }
}
