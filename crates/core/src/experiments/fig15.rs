//! Figure 15: uncore energy breakdown, normalized to baseline.
//!
//! GraphPIM cuts uncore energy ~37% on average: fewer cache accesses,
//! fewer link FLITs, less logic-layer work, and shorter runtime. FU energy
//! is negligible except where FP units run (BC, PRank).

use super::{geomean, Experiments, RunKey, EVAL_KERNELS};
use crate::config::PimMode;
use crate::energy::{uncore_energy, EnergyBreakdown};
use crate::report::Table;

/// One stacked bar (workload × configuration), normalized to the
/// workload's baseline total.
#[derive(Debug, Clone, PartialEq)]
pub struct Bar {
    /// Workload name.
    pub workload: String,
    /// Configuration.
    pub mode: PimMode,
    /// Energy components normalized to the baseline total.
    pub energy: EnergyBreakdown,
}

impl Bar {
    /// Total normalized energy.
    pub fn total(&self) -> f64 {
        self.energy.total()
    }
}

/// The runs this figure needs (for prewarming).
pub fn keys(ctx: &Experiments) -> Vec<RunKey> {
    EVAL_KERNELS
        .iter()
        .flat_map(|&name| {
            [PimMode::Baseline, PimMode::GraphPim].map(|mode| RunKey::new(name, mode, ctx.size()))
        })
        .collect()
}

/// Runs the experiment: Baseline and GraphPIM bars per workload.
pub fn run(ctx: &Experiments) -> Vec<Bar> {
    ctx.prewarm(keys(ctx));
    let mut bars = Vec::new();
    for &name in &EVAL_KERNELS {
        let base = ctx.metrics(name, PimMode::Baseline);
        let base_energy = uncore_energy(&base, 2.0, 32, 16);
        let norm = base_energy.total().max(1e-30);
        for mode in [PimMode::Baseline, PimMode::GraphPim] {
            let m = ctx.metrics(name, mode);
            let e = uncore_energy(&m, 2.0, 32, 16);
            bars.push(Bar {
                workload: name.to_string(),
                mode,
                energy: EnergyBreakdown {
                    caches: e.caches / norm,
                    hmc_link: e.hmc_link / norm,
                    hmc_fu: e.hmc_fu / norm,
                    hmc_logic: e.hmc_logic / norm,
                    hmc_dram: e.hmc_dram / norm,
                },
            });
        }
    }
    bars
}

/// Average normalized GraphPIM energy (the paper reports 0.63, i.e. a
/// 37% reduction).
pub fn average_graphpim_energy(bars: &[Bar]) -> f64 {
    geomean(
        bars.iter()
            .filter(|b| b.mode == PimMode::GraphPim)
            .map(|b| b.total()),
    )
}

/// Formats the bars.
pub fn table(bars: &[Bar]) -> Table {
    let mut t = Table::new("Figure 15: normalized uncore energy breakdown").header([
        "Workload", "Config", "Caches", "HMC Link", "HMC FU", "HMC LL", "HMC DRAM", "Total",
    ]);
    for b in bars {
        t.row([
            b.workload.clone(),
            b.mode.to_string(),
            format!("{:.2}", b.energy.caches),
            format!("{:.2}", b.energy.hmc_link),
            format!("{:.3}", b.energy.hmc_fu),
            format!("{:.2}", b.energy.hmc_logic),
            format!("{:.2}", b.energy.hmc_dram),
            format!("{:.2}", b.total()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testctx;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn graphpim_energy_normalized_and_bounded() {
        let bars = run(testctx::k1());
        assert_eq!(bars.len(), 16);
        // Baselines normalize to 1; GraphPIM bars never blow past baseline
        // ("even in the worst case", Section IV-B4); atomic-dense kernels
        // save energy at any scale (shorter runtime + fewer cache
        // accesses).
        for b in &bars {
            match b.mode {
                PimMode::Baseline => {
                    assert!((b.total() - 1.0).abs() < 1e-6, "{}", b.workload)
                }
                _ => assert!(
                    b.total() < 1.2,
                    "{}: GraphPIM energy {:.2}",
                    b.workload,
                    b.total()
                ),
            }
        }
        let dc = bars
            .iter()
            .find(|b| b.workload == "DC" && b.mode == PimMode::GraphPim)
            .expect("DC");
        assert!(dc.total() < 1.0, "DC GraphPIM energy {:.2}", dc.total());
        assert!(average_graphpim_energy(&bars) < 1.05);
    }
}
