//! Figure 2: architectural behaviors — execution-cycle breakdown (top-down
//! methodology) and per-level MPKI — of graph workloads on the baseline.
//!
//! The paper's headline observations: Backend dominates (>90% for some
//! workloads) and L2/L3 provide little benefit (L3 MPKI up to ~145 for
//! DCentr).

use super::{Experiments, RunKey};
use crate::config::PimMode;
use crate::report::Table;
use graphpim_sim::stats::CycleBreakdown;
use graphpim_workloads::kernels::{full_set, KernelParams};

/// One workload's bars in both panels of Figure 2.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name.
    pub workload: String,
    /// Top-down cycle breakdown.
    pub breakdown: CycleBreakdown,
    /// L1 data-cache misses per kilo-instruction.
    pub l1_mpki: f64,
    /// L2 misses per kilo-instruction.
    pub l2_mpki: f64,
    /// L3 misses per kilo-instruction.
    pub l3_mpki: f64,
}

/// The runs this figure needs (for prewarming).
pub fn keys(ctx: &Experiments) -> Vec<RunKey> {
    full_set(KernelParams::default())
        .iter()
        .map(|k| RunKey::new(k.name(), PimMode::Baseline, ctx.size()))
        .collect()
}

/// Runs the experiment.
pub fn run(ctx: &Experiments) -> Vec<Row> {
    ctx.prewarm(keys(ctx));
    let names: Vec<String> = full_set(KernelParams::default())
        .iter()
        .map(|k| k.name().to_string())
        .collect();
    names
        .into_iter()
        .map(|name| {
            let m = ctx.metrics(&name, PimMode::Baseline);
            Row {
                workload: name,
                breakdown: m.breakdown(),
                l1_mpki: m.l1_mpki(),
                l2_mpki: m.l2_mpki(),
                l3_mpki: m.l3_mpki(),
            }
        })
        .collect()
}

/// Formats both panels.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new("Figure 2: cycle breakdown and MPKI (baseline)").header([
        "Workload", "Backend", "Frontend", "BadSpec", "Retiring", "L1 MPKI", "L2 MPKI", "L3 MPKI",
    ]);
    for r in rows {
        t.row([
            r.workload.clone(),
            format!("{:.1}%", r.breakdown.backend * 100.0),
            format!("{:.1}%", r.breakdown.frontend * 100.0),
            format!("{:.1}%", r.breakdown.bad_speculation * 100.0),
            format!("{:.1}%", r.breakdown.retiring * 100.0),
            format!("{:.1}", r.l1_mpki),
            format!("{:.1}", r.l2_mpki),
            format!("{:.1}", r.l3_mpki),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testctx;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn backend_dominates_for_traversal() {
        let rows = run(testctx::k1());
        let bfs = rows.iter().find(|r| r.workload == "BFS").expect("BFS row");
        assert!(
            bfs.breakdown.backend > 0.5,
            "BFS backend share {}",
            bfs.breakdown.backend
        );
        // MPKI ordering: L1 catches more than nothing; breakdown sums to 1.
        assert!((bfs.breakdown.sum() - 1.0).abs() < 1e-6);
        assert!(bfs.l1_mpki >= bfs.l3_mpki * 0.5);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn dc_has_highest_llc_mpki() {
        let rows = run(testctx::k1());
        let dc = rows.iter().find(|r| r.workload == "DC").expect("DC row");
        let gibbs = rows.iter().find(|r| r.workload == "Gibbs").expect("Gibbs");
        assert!(
            dc.l3_mpki > gibbs.l3_mpki,
            "DC ({}) should out-miss Gibbs ({})",
            dc.l3_mpki,
            gibbs.l3_mpki
        );
    }
}
