//! Cross-backend comparison: the paper's Figure 17 methodology ("which
//! workloads win where") applied to new PIM design points.
//!
//! For each memory backend (single-cube HMC, multi-cube chain,
//! UPMEM-style DPU — see [`graphpim_sim::backend`]) the harness runs
//! every evaluation kernel under Baseline and GraphPIM, reports the
//! simulated offloading speedup next to the analytical-model projection
//! ([`AnalyticalModel::backend_lat_pim`] supplies the backend-specific
//! `Lat_PIM`), and summarizes which backend wins each workload.
//!
//! Like fig17, this is a standalone design-space sweep with its own
//! driver (`backend_compare` in `graphpim-bench`), deliberately outside
//! the served figure list and the [`super::RunKey`] cache: keys identify
//! paper configurations, and these runs are not paper configurations.

use super::{geomean, parallel_map, EVAL_KERNELS, GRAPH_SEED};
use crate::analytic::AnalyticalModel;
use crate::config::{PimMode, SystemConfig};
use crate::system::SystemSim;
use graphpim_graph::generate::{GraphSpec, LdbcSize};
use graphpim_graph::CsrGraph;
use graphpim_sim::backend::{BackendConfig, DpuConfig, MultiCubeConfig};
use graphpim_workloads::kernels::{by_name, KernelParams};
use std::fmt::Write as _;

/// The design points the comparison sweeps: the paper's single cube, the
/// default four-cube chain, and the default UPMEM-style DPU module.
pub fn compare_backends() -> Vec<BackendConfig> {
    vec![
        BackendConfig::SingleCube,
        BackendConfig::MultiCube(MultiCubeConfig::default()),
        BackendConfig::Dpu(DpuConfig::default()),
    ]
}

/// One kernel's outcome on one backend.
#[derive(Debug, Clone)]
pub struct BackendRow {
    /// Kernel name.
    pub workload: String,
    /// Baseline (no offloading) machine cycles on this backend.
    pub baseline_cycles: f64,
    /// GraphPIM machine cycles on this backend.
    pub graphpim_cycles: f64,
    /// Simulated GraphPIM speedup over this backend's own baseline.
    pub speedup: f64,
    /// Analytical-model speedup with the backend-specific `Lat_PIM`.
    pub analytic_speedup: f64,
    /// Atomics the GraphPIM run offloaded to the backend.
    pub offloaded_atomics: u64,
}

/// One backend's full report.
#[derive(Debug, Clone)]
pub struct BackendReport {
    /// Stable backend label (`single-cube` / `multi-cube` / `dpu`).
    pub backend: &'static str,
    /// Per-kernel rows in [`EVAL_KERNELS`] order.
    pub rows: Vec<BackendRow>,
    /// Geometric-mean simulated speedup across the kernels.
    pub mean_speedup: f64,
}

/// Runs the full backends × kernels × {Baseline, GraphPIM} matrix at
/// `size` across the worker pool and assembles one report per backend.
pub fn run(size: LdbcSize) -> Vec<BackendReport> {
    let backends = compare_backends();
    let graph = GraphSpec::ldbc(size).seed(GRAPH_SEED).build();
    let weighted = GraphSpec::ldbc(size).seed(GRAPH_SEED).weighted().build();

    let jobs: Vec<(usize, &'static str, PimMode)> = (0..backends.len())
        .flat_map(|b| {
            EVAL_KERNELS
                .iter()
                .flat_map(move |&k| [(b, k, PimMode::Baseline), (b, k, PimMode::GraphPim)])
        })
        .collect();
    let metrics = parallel_map(&jobs, |&(b, kernel, mode)| {
        let config = SystemConfig::hpca(mode).with_backend(backends[b].clone());
        let graph: &CsrGraph = if kernel == "SSSP" { &weighted } else { &graph };
        let mut k = by_name(kernel, KernelParams::default())
            .unwrap_or_else(|| panic!("unknown kernel {kernel}"));
        SystemSim::run_kernel(k.as_mut(), graph, &config)
    });

    let mut reports = Vec::with_capacity(backends.len());
    let mut it = jobs.iter().zip(metrics);
    for backend in &backends {
        let lat_pim = AnalyticalModel::backend_lat_pim(
            &SystemConfig::hpca(PimMode::GraphPim)
                .with_backend(backend.clone())
                .sim,
        );
        let mut rows = Vec::with_capacity(EVAL_KERNELS.len());
        for &kernel in &EVAL_KERNELS {
            let (job_b, base) = it.next().expect("baseline run");
            let (job_p, pim) = it.next().expect("graphpim run");
            debug_assert_eq!((job_b.1, job_b.2), (kernel, PimMode::Baseline));
            debug_assert_eq!((job_p.1, job_p.2), (kernel, PimMode::GraphPim));
            let model = AnalyticalModel::from_baseline(&base, lat_pim);
            rows.push(BackendRow {
                workload: kernel.to_string(),
                baseline_cycles: base.total_cycles,
                graphpim_cycles: pim.total_cycles,
                speedup: base.total_cycles / pim.total_cycles.max(1e-9),
                analytic_speedup: model.speedup(),
                offloaded_atomics: pim.offloaded_atomics,
            });
        }
        reports.push(BackendReport {
            backend: backend.label(),
            mean_speedup: geomean(rows.iter().map(|r| r.speedup)),
            rows,
        });
    }
    reports
}

/// For each workload, the backend with the largest simulated offloading
/// speedup — the "which workloads win where" summary.
pub fn winners(reports: &[BackendReport]) -> Vec<(String, &'static str, f64)> {
    let mut out = Vec::new();
    if reports.is_empty() {
        return out;
    }
    for (i, row) in reports[0].rows.iter().enumerate() {
        let (mut best, mut best_speedup) = (reports[0].backend, row.speedup);
        for report in &reports[1..] {
            if report.rows[i].speedup > best_speedup {
                best = report.backend;
                best_speedup = report.rows[i].speedup;
            }
        }
        out.push((row.workload.clone(), best, best_speedup));
    }
    out
}

/// Renders the reports as one JSON document (the `backend_compare` CI
/// artifact). Hand-rolled like the figure JSON: floats as shortest
/// round-trip `{:?}`, no external dependencies.
pub fn report_json(size: LdbcSize, reports: &[BackendReport]) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema\": \"backend-compare-v1\",");
    let _ = writeln!(s, "  \"graph\": \"{}\",", size.name());
    s.push_str("  \"backends\": [\n");
    for (bi, report) in reports.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"backend\": \"{}\",", report.backend);
        let _ = writeln!(s, "      \"mean_speedup\": {:?},", report.mean_speedup);
        s.push_str("      \"workloads\": [\n");
        for (ri, row) in report.rows.iter().enumerate() {
            let _ = write!(
                s,
                "        {{\"workload\": \"{}\", \"baseline_cycles\": {:?}, \
                 \"graphpim_cycles\": {:?}, \"speedup\": {:?}, \
                 \"analytic_speedup\": {:?}, \"offloaded_atomics\": {}}}",
                row.workload,
                row.baseline_cycles,
                row.graphpim_cycles,
                row.speedup,
                row.analytic_speedup,
                row.offloaded_atomics
            );
            s.push_str(if ri + 1 < report.rows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("      ]\n");
        s.push_str(if bi + 1 < reports.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ],\n  \"winners\": [\n");
    let w = winners(reports);
    for (i, (workload, backend, speedup)) in w.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"workload\": \"{workload}\", \"backend\": \"{backend}\", \
             \"speedup\": {speedup:?}}}"
        );
        s.push_str(if i + 1 < w.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders the reports as human-readable tables plus the winner summary.
pub fn render_text(size: LdbcSize, reports: &[BackendReport]) -> String {
    use crate::report::{fmt_speedup, Table};
    let mut out = String::new();
    for report in reports {
        let mut t = Table::new(format!(
            "Backend {} at {} (GraphPIM vs its own baseline)",
            report.backend,
            size.name()
        ))
        .header(["Workload", "Speedup", "Analytic", "Offloaded"]);
        for row in &report.rows {
            t.row([
                row.workload.clone(),
                fmt_speedup(row.speedup),
                fmt_speedup(row.analytic_speedup),
                row.offloaded_atomics.to_string(),
            ]);
        }
        t.row([
            "Geomean".to_string(),
            fmt_speedup(report.mean_speedup),
            String::new(),
            String::new(),
        ]);
        let _ = writeln!(out, "{t}");
    }
    let mut t =
        Table::new("Which workloads win where").header(["Workload", "Best backend", "Speedup"]);
    for (workload, backend, speedup) in winners(reports) {
        t.row([workload, backend.to_string(), fmt_speedup(speedup)]);
    }
    let _ = writeln!(out, "{t}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_covers_three_backends() {
        let b = compare_backends();
        assert_eq!(b.len(), 3);
        let labels: Vec<_> = b.iter().map(|c| c.label()).collect();
        assert_eq!(labels, ["single-cube", "multi-cube", "dpu"]);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn reports_cover_the_matrix() {
        let reports = run(LdbcSize::K1);
        assert_eq!(reports.len(), 3);
        for report in &reports {
            assert_eq!(report.rows.len(), EVAL_KERNELS.len());
            for row in &report.rows {
                assert!(
                    row.speedup > 0.1 && row.speedup < 20.0,
                    "{}/{}: {:.2}",
                    report.backend,
                    row.workload,
                    row.speedup
                );
            }
        }
        // The DPU's transfer-bound regime must not beat the in-package
        // HMC atomic units on the geomean.
        let by_label = |l: &str| reports.iter().find(|r| r.backend == l).expect("backend");
        assert!(
            by_label("single-cube").mean_speedup >= by_label("dpu").mean_speedup,
            "single-cube {:.3} vs dpu {:.3}",
            by_label("single-cube").mean_speedup,
            by_label("dpu").mean_speedup
        );
        let json = report_json(LdbcSize::K1, &reports);
        assert!(json.contains("\"backend-compare-v1\""));
        assert!(json.contains("\"dpu\""));
        assert_eq!(winners(&reports).len(), EVAL_KERNELS.len());
        let text = render_text(LdbcSize::K1, &reports);
        assert!(text.contains("Which workloads win where"));
    }
}
