//! Tables I–VI of the paper as printable artifacts.
//!
//! These are specification tables (not measurements): the harness prints
//! them from the same data structures the simulator executes, so the
//! printed rows are guaranteed to match the implementation.

use crate::config::{PimMode, SystemConfig};
use crate::report::Table;
use graphpim_graph::generate::LdbcSize;
use graphpim_graph::stats::GraphStats;
use graphpim_sim::hmc::{HmcAtomicOp, PacketKind};
use graphpim_workloads::kernels::{full_set, Applicability, KernelParams};

/// Table I: the HMC 2.0 atomic command set.
pub fn table1() -> Table {
    let mut t = Table::new("Table I: atomic operations in HMC 2.0").header([
        "Command",
        "Category",
        "Returns data",
        "Req FLITs",
        "Resp FLITs",
    ]);
    for op in HmcAtomicOp::HMC20_SET {
        t.row([
            format!("{op:?}"),
            format!("{:?}", op.category()),
            if op.has_return() { "yes" } else { "no" }.to_string(),
            op.request_flits().to_string(),
            op.response_flits().to_string(),
        ]);
    }
    t
}

/// Table II: PIM offloading targets per workload.
pub fn table2() -> Table {
    let mut t = Table::new("Table II: summary of PIM offloading targets").header([
        "Workload",
        "Offloading target",
        "PIM-Atomic type",
    ]);
    for k in full_set(KernelParams::default()) {
        if let Some(target) = k.offload_target() {
            t.row([
                k.name().to_string(),
                target.host_instruction.to_string(),
                target.pim_atomic_type.to_string(),
            ]);
        }
    }
    t
}

/// Table III: PIM-Atomic applicability across GraphBIG.
pub fn table3() -> Table {
    let mut t = Table::new("Table III: PIM-Atomic applicability (GraphBIG)").header([
        "Category",
        "Workload",
        "Applicable?",
    ]);
    for k in full_set(KernelParams::default()) {
        let status = match k.applicability() {
            Applicability::Applicable => "yes".to_string(),
            Applicability::WithFpExtension => "no (Floating point add)".to_string(),
            Applicability::Inapplicable(reason) => format!("no ({reason})"),
        };
        t.row([k.category().to_string(), k.name().to_string(), status]);
    }
    t
}

/// Table IV: the simulated system configuration.
pub fn table4() -> Table {
    let c = SystemConfig::hpca(PimMode::Baseline).sim;
    let mut t = Table::new("Table IV: simulation configuration").header(["Component", "Value"]);
    t.row([
        "Core".to_string(),
        format!(
            "{} out-of-order cores, {} GHz, {}-issue",
            c.core.cores, c.core.clock_ghz, c.core.issue_width
        ),
    ]);
    t.row([
        "Cache".to_string(),
        format!(
            "{} KB L1, {} KB L2, {} MB shared L3, {} B lines",
            c.cache.l1.capacity_bytes / 1024,
            c.cache.l2.capacity_bytes / 1024,
            c.cache.l3.capacity_bytes / (1024 * 1024),
            c.cache.line_bytes
        ),
    ]);
    t.row([
        "HMC".to_string(),
        format!(
            "{} vaults, {} banks, {} links x {} GB/s, tCL=tRCD=tRP={} ns, tRAS={} ns",
            c.hmc.vaults,
            c.hmc.vaults * c.hmc.banks_per_vault,
            c.hmc.links,
            c.hmc.link_gbps,
            c.hmc.t_cl_ns,
            c.hmc.t_ras_ns
        ),
    ]);
    t
}

/// Table V: FLIT costs per transaction class.
pub fn table5() -> Table {
    let mut t = Table::new("Table V: HMC transaction bandwidth (FLITs)")
        .header(["Type", "Request", "Response"]);
    let rows: [(&str, PacketKind); 6] = [
        ("64-byte READ", PacketKind::Read64),
        ("64-byte WRITE", PacketKind::Write64),
        ("add without return", PacketKind::Atomic(HmcAtomicOp::Add16)),
        ("add with return", PacketKind::Atomic(HmcAtomicOp::Add16Ret)),
        (
            "boolean/bitwise/CAS",
            PacketKind::Atomic(HmcAtomicOp::CasIfEqual8),
        ),
        (
            "compare if equal",
            PacketKind::Atomic(HmcAtomicOp::CompareEqual16),
        ),
    ];
    for (name, kind) in rows {
        let f = kind.flits();
        t.row([
            name.to_string(),
            format!("{} FLITs", f.request),
            format!("{} FLITs", f.response),
        ]);
    }
    t
}

/// Table VI: the experiment datasets, with generated statistics.
pub fn table6(include_large: bool) -> Table {
    let mut t = Table::new("Table VI: experiment datasets").header([
        "Name",
        "Vertex #",
        "Edge #",
        "Footprint",
    ]);
    for size in LdbcSize::ALL {
        if size == LdbcSize::M1 && !include_large {
            t.row([
                size.name().to_string(),
                size.vertices().to_string(),
                format!("~{}", size.target_edges()),
                "~900 MB (paper)".to_string(),
            ]);
            continue;
        }
        let g = graphpim_graph::generate::GraphSpec::ldbc(size)
            .seed(7)
            .build();
        let s = GraphStats::compute(&g);
        t.row([
            size.name().to_string(),
            s.vertices.to_string(),
            s.edges.to_string(),
            s.footprint_display(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_18_rows() {
        assert_eq!(table1().row_count(), 18);
    }

    #[test]
    fn table2_matches_paper_rows() {
        let t = table2();
        // Table II has six rows: BFS, DFS is not listed in the paper's
        // Table II, but our DFS also CASes; the paper's table lists 6
        // workloads and we add DFS = 7.
        assert!(t.row_count() >= 6);
        let body = t.render();
        assert!(body.contains("lock cmpxchg"));
        assert!(body.contains("CAS if equal"));
        assert!(body.contains("Signed add"));
    }

    #[test]
    fn table3_covers_all_13() {
        assert_eq!(table3().row_count(), 13);
        let body = table3().render();
        assert!(body.contains("Floating point add"));
        assert!(body.contains("Complex operation"));
        assert!(body.contains("Computation intensive"));
    }

    #[test]
    fn table5_matches_spec() {
        let body = table5().render();
        assert!(body.contains("64-byte READ"));
        assert_eq!(table5().row_count(), 6);
    }

    #[test]
    fn table6_small_sizes() {
        let t = table6(false);
        assert_eq!(t.row_count(), 4);
        assert!(t.render().contains("LDBC-1k"));
    }
}
