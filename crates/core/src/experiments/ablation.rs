//! Ablation studies for the design choices the paper discusses but does
//! not plot:
//!
//! * **Instruction-block translation** (Section III-B): SSSP's atomic-min
//!   retry loop offloaded as repeated `CAS if equal` vs. translated into a
//!   single `CAS if less` command.
//! * **The FP extension and the bus-lock cliff** (Sections III-B/III-C):
//!   PRank with the FP extension vs. without — without it, FP atomics on
//!   the uncacheable PMR degrade to bus locking, the "huge performance
//!   degradation" the paper warns about.

use super::{pick_root, Experiments};
use crate::config::{PimMode, SystemConfig};
use crate::report::{fmt_speedup, Table};
use crate::system::SystemSim;
use graphpim_workloads::kernels::{PRank, Sssp};

/// One ablation comparison.
#[derive(Debug, Clone)]
pub struct Row {
    /// What is being compared.
    pub study: &'static str,
    /// The two variants' names.
    pub variants: [&'static str; 2],
    /// Cycles of each variant (GraphPIM configuration).
    pub cycles: [f64; 2],
    /// HMC atomics issued by each variant.
    pub atomics: [u64; 2],
}

impl Row {
    /// Speedup of variant 1 over variant 0.
    pub fn speedup(&self) -> f64 {
        self.cycles[0] / self.cycles[1].max(1e-9)
    }
}

/// Runs both ablations at the context scale. The four GraphPIM
/// simulations are independent, so they run across the worker pool.
pub fn run(ctx: &Experiments) -> Vec<Row> {
    let size = ctx.size();
    let weighted = ctx.weighted_graph(size);
    let plain_graph = ctx.graph(size);
    let root = pick_root(&weighted);
    let config = SystemConfig::hpca(PimMode::GraphPim);

    // Jobs 0/1: SSSP CAS retry loop vs translated CAS-if-less (these also
    // return the distance arrays so the variants can be cross-checked);
    // jobs 2/3: PRank without vs with the FP extension.
    let runs = super::parallel_map(&[0usize, 1, 2, 3], |&job| match job {
        0 => {
            let mut k = Sssp::new(root);
            let m = SystemSim::run_kernel(&mut k, &weighted, &config);
            (m, k.distances().to_vec())
        }
        1 => {
            let mut k = Sssp::with_translated_cas(root);
            let m = SystemSim::run_kernel(&mut k, &weighted, &config);
            (m, k.distances().to_vec())
        }
        2 => {
            let mut k = PRank::new(3);
            let m =
                SystemSim::run_kernel(&mut k, &plain_graph, &config.clone().without_fp_extension());
            (m, Vec::new())
        }
        _ => {
            let mut k = PRank::new(3);
            (
                SystemSim::run_kernel(&mut k, &plain_graph, &config),
                Vec::new(),
            )
        }
    });
    let mut runs = runs.into_iter();
    let (plain_m, plain_dist) = runs.next().expect("SSSP retry run");
    let (translated_m, translated_dist) = runs.next().expect("SSSP translated run");
    let (without_m, _) = runs.next().expect("PRank no-ext run");
    let (with_m, _) = runs.next().expect("PRank FP run");

    assert_eq!(plain_dist, translated_dist, "ablation variants must agree");
    let study1 = Row {
        study: "SSSP atomic-min idiom",
        variants: ["CAS-if-equal retry", "translated CAS-if-less"],
        cycles: [plain_m.total_cycles, translated_m.total_cycles],
        atomics: [plain_m.hmc.atomics, translated_m.hmc.atomics],
    };

    let study2 = Row {
        study: "PRank FP atomics",
        variants: ["bus-locked (no ext)", "FP extension"],
        cycles: [without_m.total_cycles, with_m.total_cycles],
        atomics: [without_m.hmc.atomics, with_m.hmc.atomics],
    };

    vec![study1, study2]
}

/// Formats the ablation rows.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new("Ablations: design choices under GraphPIM").header([
        "Study",
        "Variant A",
        "Variant B",
        "B over A",
        "Atomics A",
        "Atomics B",
    ]);
    for r in rows {
        t.row([
            r.study.to_string(),
            r.variants[0].to_string(),
            r.variants[1].to_string(),
            fmt_speedup(r.speedup()),
            r.atomics[0].to_string(),
            r.atomics[1].to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testctx;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn ablations_have_expected_directions() {
        let rows = run(testctx::k1());
        assert_eq!(rows.len(), 2);

        let idiom = &rows[0];
        // The translated form issues at most as many atomics (no retries)
        // and should not be slower.
        assert!(idiom.atomics[1] <= idiom.atomics[0]);
        assert!(
            idiom.speedup() > 0.95,
            "translation should not hurt: {:.2}",
            idiom.speedup()
        );

        let fp = &rows[1];
        // The FP extension offloads; the fallback bus-locks. Extension wins.
        assert!(fp.atomics[1] > 0, "FP extension must offload");
        assert_eq!(fp.atomics[0], 0, "without extension nothing offloads");
        assert!(
            fp.speedup() > 1.2,
            "bus-locked fallback should be much slower: {:.2}",
            fp.speedup()
        );
    }
}
