//! Ablation studies for the design choices the paper discusses but does
//! not plot:
//!
//! * **Instruction-block translation** (Section III-B): SSSP's atomic-min
//!   retry loop offloaded as repeated `CAS if equal` vs. translated into a
//!   single `CAS if less` command.
//! * **The FP extension and the bus-lock cliff** (Sections III-B/III-C):
//!   PRank with the FP extension vs. without — without it, FP atomics on
//!   the uncacheable PMR degrade to bus locking, the "huge performance
//!   degradation" the paper warns about.

use super::{pick_root, Experiments};
use crate::config::{PimMode, SystemConfig};
use crate::report::{fmt_speedup, Table};
use crate::system::SystemSim;
use graphpim_workloads::kernels::{PRank, Sssp};

/// One ablation comparison.
#[derive(Debug, Clone)]
pub struct Row {
    /// What is being compared.
    pub study: &'static str,
    /// The two variants' names.
    pub variants: [&'static str; 2],
    /// Cycles of each variant (GraphPIM configuration).
    pub cycles: [f64; 2],
    /// HMC atomics issued by each variant.
    pub atomics: [u64; 2],
}

impl Row {
    /// Speedup of variant 1 over variant 0.
    pub fn speedup(&self) -> f64 {
        self.cycles[0] / self.cycles[1].max(1e-9)
    }
}

/// Runs both ablations at the context scale.
pub fn run(ctx: &mut Experiments) -> Vec<Row> {
    let size = ctx.size();
    let weighted = ctx.weighted_graph(size).clone();
    let plain_graph = ctx.graph(size).clone();
    let root = pick_root(&weighted);
    let config = SystemConfig::hpca(PimMode::GraphPim);

    // Study 1: CAS retry loop vs translated CAS-if-less (SSSP).
    let mut plain = Sssp::new(root);
    let plain_m = SystemSim::run_kernel(&mut plain, &weighted, &config);
    let mut translated = Sssp::with_translated_cas(root);
    let translated_m = SystemSim::run_kernel(&mut translated, &weighted, &config);
    assert_eq!(
        plain.distances(),
        translated.distances(),
        "ablation variants must agree"
    );
    let study1 = Row {
        study: "SSSP atomic-min idiom",
        variants: ["CAS-if-equal retry", "translated CAS-if-less"],
        cycles: [plain_m.total_cycles, translated_m.total_cycles],
        atomics: [plain_m.hmc.atomics, translated_m.hmc.atomics],
    };

    // Study 2: FP extension vs bus-locked fallback (PRank).
    let mut with_fp = PRank::new(3);
    let with_m = SystemSim::run_kernel(&mut with_fp, &plain_graph, &config);
    let mut without_fp = PRank::new(3);
    let without_m = SystemSim::run_kernel(
        &mut without_fp,
        &plain_graph,
        &config.clone().without_fp_extension(),
    );
    let study2 = Row {
        study: "PRank FP atomics",
        variants: ["bus-locked (no ext)", "FP extension"],
        cycles: [without_m.total_cycles, with_m.total_cycles],
        atomics: [without_m.hmc.atomics, with_m.hmc.atomics],
    };

    vec![study1, study2]
}

/// Formats the ablation rows.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new("Ablations: design choices under GraphPIM").header([
        "Study", "Variant A", "Variant B", "B over A", "Atomics A", "Atomics B",
    ]);
    for r in rows {
        t.row([
            r.study.to_string(),
            r.variants[0].to_string(),
            r.variants[1].to_string(),
            fmt_speedup(r.speedup()),
            r.atomics[0].to_string(),
            r.atomics[1].to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphpim_graph::generate::LdbcSize;

    #[test]

    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn ablations_have_expected_directions() {
        let mut ctx = Experiments::at_scale(LdbcSize::K1);
        let rows = run(&mut ctx);
        assert_eq!(rows.len(), 2);

        let idiom = &rows[0];
        // The translated form issues at most as many atomics (no retries)
        // and should not be slower.
        assert!(idiom.atomics[1] <= idiom.atomics[0]);
        assert!(
            idiom.speedup() > 0.95,
            "translation should not hurt: {:.2}",
            idiom.speedup()
        );

        let fp = &rows[1];
        // The FP extension offloads; the fallback bus-locks. Extension wins.
        assert!(fp.atomics[1] > 0, "FP extension must offload");
        assert_eq!(fp.atomics[0], 0, "without extension nothing offloads");
        assert!(
            fp.speedup() > 1.2,
            "bus-locked fallback should be much slower: {:.2}",
            fp.speedup()
        );
    }
}
