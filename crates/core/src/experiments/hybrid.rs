//! Hybrid HMC + DRAM deployment sweep (Section III-B discussion).
//!
//! "GraphPIM can be applied on systems equipped with both HMCs and DRAMs.
//! In this case, the graph property data allocated in DRAMs will be
//! processed in the conventional way, while the graph data in HMCs can
//! still receive the same benefit from PIM-Atomic." This sweep varies the
//! HMC-resident share of the property and shows the benefit scaling
//! smoothly between the baseline and the all-HMC GraphPIM system.

use super::{parallel_map, pick_root, Experiments, RunKey};
use crate::config::{PimMode, SystemConfig};
use crate::report::{fmt_pct, fmt_speedup, Table};
use crate::system::SystemSim;
use graphpim_workloads::kernels::{by_name, KernelParams};

/// HMC property shares swept.
pub const FRACTIONS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// One (workload × fraction) point.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Workload name.
    pub workload: String,
    /// HMC-resident property share.
    pub fraction: f64,
    /// Speedup over the baseline (all-conventional) system.
    pub speedup: f64,
    /// Share of candidate atomics actually offloaded.
    pub offloaded_share: f64,
}

/// The baseline anchors this sweep shares with the other figures.
pub fn keys(ctx: &Experiments, kernels: &[&str]) -> Vec<RunKey> {
    kernels
        .iter()
        .map(|&name| RunKey::new(name, PimMode::Baseline, ctx.size()))
        .collect()
}

/// Runs the sweep for the given kernels. The baseline anchor comes from
/// the shared run table; the fraction points are independent simulations
/// fanned out across the worker pool.
pub fn run(ctx: &Experiments, kernels: &[&str]) -> Vec<Point> {
    ctx.prewarm(keys(ctx, kernels));
    let size = ctx.size();
    let jobs: Vec<(&str, f64)> = kernels
        .iter()
        .flat_map(|&name| FRACTIONS.iter().map(move |&f| (name, f)))
        .collect();
    let metrics = parallel_map(&jobs, |&(name, fraction)| {
        let graph = if name == "SSSP" {
            ctx.weighted_graph(size)
        } else {
            ctx.graph(size)
        };
        let mut params = KernelParams::scaled_for(graph.vertex_count());
        params.root = pick_root(&graph);
        let mut k = by_name(name, params).expect(name);
        let config = SystemConfig::hpca(PimMode::GraphPim).with_hmc_property_fraction(fraction);
        SystemSim::run_kernel(k.as_mut(), &graph, &config)
    });
    jobs.iter()
        .zip(metrics)
        .map(|(&(name, fraction), m)| {
            let base = ctx.metrics(name, PimMode::Baseline);
            Point {
                workload: name.to_string(),
                fraction,
                speedup: base.total_cycles / m.total_cycles.max(1e-9),
                offloaded_share: if m.core.host_atomics + m.offloaded_atomics == 0 {
                    0.0
                } else {
                    m.offloaded_atomics as f64 / (m.core.host_atomics + m.offloaded_atomics) as f64
                },
            }
        })
        .collect()
}

/// Formats the sweep.
pub fn table(points: &[Point]) -> Table {
    let mut t = Table::new("Hybrid HMC+DRAM: speedup vs HMC-resident property share").header([
        "Workload",
        "HMC share",
        "Offloaded",
        "Speedup",
    ]);
    for p in points {
        t.row([
            p.workload.clone(),
            fmt_pct(p.fraction),
            fmt_pct(p.offloaded_share),
            fmt_speedup(p.speedup),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testctx;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn benefit_scales_with_hmc_share() {
        let points = run(testctx::k1(), &["DC"]);
        assert_eq!(points.len(), FRACTIONS.len());
        // Offloaded share tracks the placement fraction.
        for p in &points {
            assert!(
                (p.offloaded_share - p.fraction).abs() < 0.15,
                "share {:.2} vs fraction {:.2}",
                p.offloaded_share,
                p.fraction
            );
        }
        // Full HMC placement is at least as fast as none.
        let at = |f: f64| {
            points
                .iter()
                .find(|p| p.fraction == f)
                .map(|p| p.speedup)
                .expect("point")
        };
        assert!(
            at(1.0) >= at(0.0) * 0.95,
            "full placement {:.2} vs none {:.2}",
            at(1.0),
            at(0.0)
        );
    }
}
