//! Hybrid HMC + DRAM deployment sweep (Section III-B discussion).
//!
//! "GraphPIM can be applied on systems equipped with both HMCs and DRAMs.
//! In this case, the graph property data allocated in DRAMs will be
//! processed in the conventional way, while the graph data in HMCs can
//! still receive the same benefit from PIM-Atomic." This sweep varies the
//! HMC-resident share of the property and shows the benefit scaling
//! smoothly between the baseline and the all-HMC GraphPIM system.

use super::{pick_root, Experiments};
use crate::config::{PimMode, SystemConfig};
use crate::report::{fmt_pct, fmt_speedup, Table};
use crate::system::SystemSim;
use graphpim_workloads::kernels::{by_name, KernelParams};

/// HMC property shares swept.
pub const FRACTIONS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// One (workload × fraction) point.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Workload name.
    pub workload: String,
    /// HMC-resident property share.
    pub fraction: f64,
    /// Speedup over the baseline (all-conventional) system.
    pub speedup: f64,
    /// Share of candidate atomics actually offloaded.
    pub offloaded_share: f64,
}

/// Runs the sweep for the given kernels.
pub fn run(ctx: &mut Experiments, kernels: &[&str]) -> Vec<Point> {
    let size = ctx.size();
    let mut out = Vec::new();
    for &name in kernels {
        let graph = if name == "SSSP" {
            ctx.weighted_graph(size).clone()
        } else {
            ctx.graph(size).clone()
        };
        let mut params = KernelParams::scaled_for(graph.vertex_count());
        params.root = pick_root(&graph);
        let base = {
            let mut k = by_name(name, params).expect(name);
            SystemSim::run_kernel(k.as_mut(), &graph, &SystemConfig::hpca(PimMode::Baseline))
        };
        for &fraction in &FRACTIONS {
            let mut k = by_name(name, params).expect(name);
            let config = SystemConfig::hpca(PimMode::GraphPim)
                .with_hmc_property_fraction(fraction);
            let m = SystemSim::run_kernel(k.as_mut(), &graph, &config);
            out.push(Point {
                workload: name.to_string(),
                fraction,
                speedup: base.total_cycles / m.total_cycles.max(1e-9),
                offloaded_share: if m.core.host_atomics + m.offloaded_atomics == 0 {
                    0.0
                } else {
                    m.offloaded_atomics as f64
                        / (m.core.host_atomics + m.offloaded_atomics) as f64
                },
            });
        }
    }
    out
}

/// Formats the sweep.
pub fn table(points: &[Point]) -> Table {
    let mut t = Table::new("Hybrid HMC+DRAM: speedup vs HMC-resident property share")
        .header(["Workload", "HMC share", "Offloaded", "Speedup"]);
    for p in points {
        t.row([
            p.workload.clone(),
            fmt_pct(p.fraction),
            fmt_pct(p.offloaded_share),
            fmt_speedup(p.speedup),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphpim_graph::generate::LdbcSize;

    #[test]

    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn benefit_scales_with_hmc_share() {
        let mut ctx = Experiments::at_scale(LdbcSize::K1);
        let points = run(&mut ctx, &["DC"]);
        assert_eq!(points.len(), FRACTIONS.len());
        // Offloaded share tracks the placement fraction.
        for p in &points {
            assert!(
                (p.offloaded_share - p.fraction).abs() < 0.15,
                "share {:.2} vs fraction {:.2}",
                p.offloaded_share,
                p.fraction
            );
        }
        // Full HMC placement is at least as fast as none.
        let at = |f: f64| {
            points
                .iter()
                .find(|p| p.fraction == f)
                .map(|p| p.speedup)
                .expect("point")
        };
        assert!(
            at(1.0) >= at(0.0) * 0.95,
            "full placement {:.2} vs none {:.2}",
            at(1.0),
            at(0.0)
        );
    }
}
