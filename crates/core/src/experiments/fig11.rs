//! Figure 11: sensitivity to the number of atomic functional units per
//! vault.
//!
//! The paper sweeps 1/2/4/8/16 FUs per vault and finds essentially no
//! performance difference: 32 vaults spread consecutive atomics, and
//! dependent instructions interleave enough other memory traffic that
//! PIM-Atomic throughput is never the bottleneck.

use super::{Experiments, RunKey, EVAL_KERNELS};
use crate::config::PimMode;
use crate::report::{fmt_speedup, Table};

/// FU counts swept by the paper.
pub const FU_SWEEP: [usize; 5] = [1, 2, 4, 8, 16];

/// One workload's bars.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Workload name.
    pub workload: String,
    /// GraphPIM speedup over baseline for each FU count in [`FU_SWEEP`].
    pub speedups: [f64; 5],
}

impl Row {
    /// Largest relative deviation across the sweep.
    pub fn spread(&self) -> f64 {
        let max = self.speedups.iter().copied().fold(f64::MIN, f64::max);
        let min = self.speedups.iter().copied().fold(f64::MAX, f64::min);
        (max - min) / min.max(1e-9)
    }
}

/// The runs this figure needs (for prewarming).
pub fn keys(ctx: &Experiments) -> Vec<RunKey> {
    EVAL_KERNELS
        .iter()
        .flat_map(|&name| {
            std::iter::once(RunKey::new(name, PimMode::Baseline, ctx.size())).chain(
                FU_SWEEP.iter().map(move |&fus| {
                    RunKey::new(name, PimMode::GraphPim, ctx.size()).with_fus(fus)
                }),
            )
        })
        .collect()
}

/// Runs the sweep.
pub fn run(ctx: &Experiments) -> Vec<Row> {
    ctx.prewarm(keys(ctx));
    let size = ctx.size();
    EVAL_KERNELS
        .iter()
        .map(|&name| {
            let base = ctx
                .metrics_at(name, PimMode::Baseline, size, 16, 10)
                .total_cycles;
            let mut speedups = [0.0; 5];
            for (i, &fus) in FU_SWEEP.iter().enumerate() {
                let m = ctx.metrics_at(name, PimMode::GraphPim, size, fus, 10);
                speedups[i] = base / m.total_cycles.max(1e-9);
            }
            Row {
                workload: name.to_string(),
                speedups,
            }
        })
        .collect()
}

/// Formats the rows.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new("Figure 11: speedup vs functional units per vault")
        .header(["Workload", "1 FU", "2 FU", "4 FU", "8 FU", "16 FU"]);
    for r in rows {
        let mut cells = vec![r.workload.clone()];
        cells.extend(r.speedups.iter().map(|&s| fmt_speedup(s)));
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testctx;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn performance_insensitive_to_fu_count() {
        let rows = run(testctx::k1());
        for r in &rows {
            assert!(
                r.spread() < 0.10,
                "{}: FU sweep spread {:.3} (speedups {:?})",
                r.workload,
                r.spread(),
                r.speedups
            );
        }
    }
}
