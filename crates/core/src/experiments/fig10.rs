//! Figure 10: cache miss rate of offloading candidates.
//!
//! Measured in the baseline configuration, where candidates (atomics on
//! the graph property) actually probe the cache hierarchy. The paper
//! finds miss rates above 80% for most workloads — the justification for
//! GraphPIM's cache-bypass policy — with kCore, TC, and BC lower.

use super::{Experiments, RunKey, EVAL_KERNELS};
use crate::config::PimMode;
use crate::report::{fmt_pct, Table};

/// One bar of Figure 10.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Workload name.
    pub workload: String,
    /// Cache miss rate of the offloading candidates.
    pub miss_rate: f64,
    /// Number of candidates observed.
    pub candidates: u64,
}

/// The runs this figure needs (for prewarming).
pub fn keys(ctx: &Experiments) -> Vec<RunKey> {
    EVAL_KERNELS
        .iter()
        .map(|&name| RunKey::new(name, PimMode::Baseline, ctx.size()))
        .collect()
}

/// Runs the experiment.
pub fn run(ctx: &Experiments) -> Vec<Row> {
    ctx.prewarm(keys(ctx));
    EVAL_KERNELS
        .iter()
        .map(|&name| {
            let m = ctx.metrics(name, PimMode::Baseline);
            Row {
                workload: name.to_string(),
                miss_rate: m.candidate_miss_rate(),
                candidates: m.offload_candidates,
            }
        })
        .collect()
}

/// Formats the rows.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new("Figure 10: cache miss rate of offloading candidates").header([
        "Workload",
        "Miss rate",
        "Candidates",
    ]);
    for r in rows {
        t.row([
            r.workload.clone(),
            fmt_pct(r.miss_rate),
            r.candidates.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testctx;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn every_workload_has_candidates() {
        // Miss-rate magnitudes are scale dependent (the paper's >80% shows
        // at LDBC-1M; see EXPERIMENTS.md); the test checks the plumbing.
        let rows = run(testctx::k1());
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.miss_rate));
            // kCore may peel nothing at smoke scale (k < min degree):
            // zero candidates is then correct.
            if r.workload != "kCore" {
                assert!(r.candidates > 0, "{} has no candidates", r.workload);
            }
        }
    }
}
