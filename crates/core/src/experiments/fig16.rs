//! Figure 16: validation of the analytical model against simulation.
//!
//! The paper derives Equation 1–2 inputs from baseline measurements and
//! compares the predicted GraphPIM speedup with the simulated one,
//! reporting a 7.72% average error.

use super::{Experiments, RunKey, EVAL_KERNELS};
use crate::analytic::AnalyticalModel;
use crate::config::PimMode;
use crate::report::{fmt_speedup, Table};

/// One workload's pair of bars.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Workload name.
    pub workload: String,
    /// Simulated GraphPIM speedup.
    pub simulated: f64,
    /// Analytical-model speedup.
    pub analytical: f64,
}

impl Row {
    /// Relative error of the model vs. simulation.
    pub fn error(&self) -> f64 {
        (self.analytical - self.simulated).abs() / self.simulated.max(1e-9)
    }
}

/// The runs this figure needs (for prewarming).
pub fn keys(ctx: &Experiments) -> Vec<RunKey> {
    EVAL_KERNELS
        .iter()
        .flat_map(|&name| {
            [PimMode::Baseline, PimMode::GraphPim].map(|mode| RunKey::new(name, mode, ctx.size()))
        })
        .collect()
}

/// Runs the comparison.
pub fn run(ctx: &Experiments) -> Vec<Row> {
    ctx.prewarm(keys(ctx));
    EVAL_KERNELS
        .iter()
        .map(|&name| {
            let base = ctx.metrics(name, PimMode::Baseline);
            let pim = ctx.metrics(name, PimMode::GraphPim);
            let simulated = base.total_cycles / pim.total_cycles.max(1e-9);
            // Lat_PIM comes from design parameters, as in the paper.
            let lat_pim = AnalyticalModel::default_lat_pim(
                &crate::config::SystemConfig::hpca(PimMode::GraphPim).sim,
            );
            let model = AnalyticalModel::from_baseline(&base, lat_pim);
            Row {
                workload: name.to_string(),
                simulated,
                analytical: model.speedup(),
            }
        })
        .collect()
}

/// Mean relative error across workloads.
pub fn mean_error(rows: &[Row]) -> f64 {
    rows.iter().map(Row::error).sum::<f64>() / rows.len().max(1) as f64
}

/// Formats the rows.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new("Figure 16: analytical model vs simulation").header([
        "Workload",
        "Simulated",
        "Analytical",
        "Error",
    ]);
    for r in rows {
        t.row([
            r.workload.clone(),
            fmt_speedup(r.simulated),
            fmt_speedup(r.analytical),
            format!("{:.1}%", r.error() * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testctx;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn model_tracks_simulation_directionally() {
        let rows = run(testctx::k1());
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.analytical > 0.2 && r.analytical < 20.0, "{r:?}");
            assert!(r.simulated > 0.2 && r.simulated < 20.0, "{r:?}");
        }
        // The model agrees on the direction for the atomic-dense winners
        // (kernels whose speedup comes from non-atomic effects — e.g.
        // kCore's cold-miss behavior at smoke scale — are outside the
        // model's scope, exactly as in the paper's Eq. 1).
        for r in rows.iter().filter(|r| {
            r.simulated > 1.5 && ["BFS", "CComp", "DC", "PRank"].contains(&r.workload.as_str())
        }) {
            assert!(
                r.analytical > 1.0,
                "{}: model {:.2} vs sim {:.2}",
                r.workload,
                r.analytical,
                r.simulated
            );
        }
    }
}
