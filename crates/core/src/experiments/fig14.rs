//! Figure 14: sensitivity to input graph size.
//!
//! (a) GraphPIM's improvement over U-PEI shrinks — and can invert — as the
//! graph shrinks into the L3, because bypassing a cache that would have
//! hit is a loss; (b) GraphPIM's speedup over *baseline* stays healthy at
//! every size because the atomic-overhead reduction is size-insensitive.

use super::{Experiments, RunKey, EVAL_KERNELS};
use crate::config::PimMode;
use crate::report::{fmt_pct, fmt_speedup, Table};
use graphpim_graph::generate::LdbcSize;

/// One (workload × size) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Workload name.
    pub workload: String,
    /// Input size.
    pub size: LdbcSize,
    /// GraphPIM time improvement over U-PEI (positive = GraphPIM faster).
    pub improvement_over_upei: f64,
    /// GraphPIM speedup over baseline.
    pub speedup_over_baseline: f64,
}

/// The sizes swept: everything up to (and including) the context scale,
/// but at least 1k and 10k.
pub fn sweep_sizes(ctx: &Experiments) -> Vec<LdbcSize> {
    LdbcSize::ALL
        .into_iter()
        .filter(|&s| s <= ctx.size().max(LdbcSize::K10))
        .collect()
}

/// The runs this figure needs (for prewarming).
pub fn keys(ctx: &Experiments) -> Vec<RunKey> {
    keys_for(ctx, &EVAL_KERNELS)
}

/// The runs needed for a subset of kernels.
pub fn keys_for(ctx: &Experiments, kernels: &[&str]) -> Vec<RunKey> {
    let sizes = sweep_sizes(ctx);
    kernels
        .iter()
        .flat_map(|&name| {
            sizes
                .iter()
                .flat_map(move |&size| PimMode::ALL.map(|mode| RunKey::new(name, mode, size)))
        })
        .collect()
}

/// Runs the sweep over the full evaluation set.
pub fn run(ctx: &Experiments) -> Vec<Cell> {
    run_for(ctx, &EVAL_KERNELS)
}

/// Runs the sweep for a subset of kernels.
pub fn run_for(ctx: &Experiments, kernels: &[&str]) -> Vec<Cell> {
    ctx.prewarm(keys_for(ctx, kernels));
    let sizes = sweep_sizes(ctx);
    let mut cells = Vec::new();
    for &name in kernels {
        for &size in &sizes {
            let base = ctx
                .metrics_at(name, PimMode::Baseline, size, 16, 10)
                .total_cycles;
            let upei = ctx
                .metrics_at(name, PimMode::UPei, size, 16, 10)
                .total_cycles;
            let pim = ctx
                .metrics_at(name, PimMode::GraphPim, size, 16, 10)
                .total_cycles;
            cells.push(Cell {
                workload: name.to_string(),
                size,
                improvement_over_upei: upei / pim.max(1e-9) - 1.0,
                speedup_over_baseline: base / pim.max(1e-9),
            });
        }
    }
    cells
}

/// Formats panel (a): improvement over U-PEI.
pub fn table_a(cells: &[Cell]) -> Table {
    let mut t = Table::new("Figure 14a: GraphPIM improvement over U-PEI by graph size").header([
        "Workload",
        "Size",
        "Improvement",
    ]);
    for c in cells {
        t.row([
            c.workload.clone(),
            c.size.to_string(),
            fmt_pct(c.improvement_over_upei),
        ]);
    }
    t
}

/// Formats panel (b): speedup over baseline.
pub fn table_b(cells: &[Cell]) -> Table {
    let mut t = Table::new("Figure 14b: GraphPIM speedup over baseline by graph size")
        .header(["Workload", "Size", "Speedup"]);
    for c in cells {
        t.row([
            c.workload.clone(),
            c.size.to_string(),
            fmt_speedup(c.speedup_over_baseline),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testctx;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn upei_competitive_when_graph_fits_the_llc() {
        // The paper's Figure 14a observation: "U-PEI starts to show better
        // performance with the LDBC-10k graph" because the data fits the
        // L3 and bypassing it stops paying. (The large-graph end, where
        // GraphPIM pulls ahead again, is covered by the recorded
        // EXPERIMENTS.md run at LDBC-1M.)
        let cells = run_for(testctx::k10(), &["BFS", "DC", "CComp"]);
        let at_10k: Vec<f64> = cells
            .iter()
            .filter(|c| c.size == LdbcSize::K10)
            .map(|c| c.improvement_over_upei)
            .collect();
        let avg = at_10k.iter().sum::<f64>() / at_10k.len() as f64;
        assert!(
            avg < 0.10,
            "GraphPIM should not beat U-PEI decisively on a cache-resident              graph; improvement {avg:.3}"
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn baseline_speedup_stays_positive_across_sizes() {
        let cells = run_for(testctx::k10(), &["DC", "CComp"]);
        for c in &cells {
            assert!(
                c.speedup_over_baseline > 1.0,
                "{} at {}: {:.2}",
                c.workload,
                c.size,
                c.speedup_over_baseline
            );
        }
    }
}
