//! Figure 17 + Tables VII/VIII: real-world applications through the
//! analytical model.
//!
//! The paper runs financial fraud detection (bitcoin graph) and an
//! item-to-item recommender (twitter graph) on real hardware, collects
//! counters (Table VIII), and projects GraphPIM's benefit with the
//! analytical model (FD 1.5×, RS 1.9×; energy −32% / −48%). We run the
//! same pipelines on scaled-down RMAT stand-ins (DESIGN.md documents the
//! substitution), collect the same counters from the baseline simulation,
//! and apply the same model. A full GraphPIM simulation validates the
//! model's direction.

use crate::analytic::AnalyticalModel;
use crate::config::{PimMode, SystemConfig};
use crate::energy::uncore_energy;
use crate::metrics::RunMetrics;
use crate::report::{fmt_pct, fmt_speedup, Table};
use crate::system::SystemSim;
use graphpim_workloads::apps::{bitcoin_like, twitter_like, FraudDetection, Recommender};

/// One application's results.
#[derive(Debug, Clone)]
pub struct AppResult {
    /// Application short name (`"FD"` or `"RS"`).
    pub name: &'static str,
    /// Baseline counters (the Table VIII inputs).
    pub baseline: RunMetrics,
    /// Simulated GraphPIM metrics (validation).
    pub graphpim: RunMetrics,
    /// Analytical-model speedup (the Figure 17 bar).
    pub analytic_speedup: f64,
    /// Simulated speedup.
    pub simulated_speedup: f64,
    /// Uncore energy of GraphPIM normalized to baseline.
    pub energy_ratio: f64,
}

/// RMAT scale (log2 vertices) used for the stand-in graphs; override with
/// `GRAPHPIM_APP_SCALE`. A garbage value warns and keeps the default —
/// loud enough to catch the typo, without aborting a sweep.
pub fn app_scale() -> u32 {
    const DEFAULT: u32 = 13;
    match std::env::var("GRAPHPIM_APP_SCALE") {
        Err(_) => DEFAULT,
        Ok(v) => v.trim().parse().unwrap_or_else(|_| {
            crate::obs::warn(
                "fig17",
                "unrecognized GRAPHPIM_APP_SCALE value (expected log2 vertex count); \
                 using the default",
                &[("value", &format!("{v:?}")), ("default", &DEFAULT)],
            );
            DEFAULT
        }),
    }
}

/// Runs both applications under both configurations. The four
/// simulations are independent, so they run across the worker pool; each
/// one stays single-threaded and deterministic.
pub fn run() -> Vec<AppResult> {
    let scale = app_scale();

    // Financial fraud detection on the bitcoin-like graph.
    let bitcoin = bitcoin_like(scale, 11);
    let seeds: Vec<u32> = (0..6)
        .map(|i| (i * 97) % bitcoin.vertex_count() as u32)
        .collect();
    let fd = |mode: PimMode| {
        SystemSim::run_with(&SystemConfig::hpca(mode), |fw| {
            let mut app = FraudDetection::new(seeds.clone());
            app.run(&bitcoin, fw);
        })
    };

    // Recommender system on the twitter-like graph.
    let twitter = twitter_like(scale, 13);
    let queries: Vec<u32> = (0..8)
        .map(|i| (i * 131) % twitter.vertex_count() as u32)
        .collect();
    let rs = |mode: PimMode| {
        SystemSim::run_with(&SystemConfig::hpca(mode), |fw| {
            let mut app = Recommender::new(queries.clone(), 10);
            app.run(&twitter, fw);
        })
    };

    let jobs = [
        ("FD", PimMode::Baseline),
        ("FD", PimMode::GraphPim),
        ("RS", PimMode::Baseline),
        ("RS", PimMode::GraphPim),
    ];
    let mut metrics = super::parallel_map(&jobs, |&(app, mode)| match app {
        "FD" => fd(mode),
        _ => rs(mode),
    })
    .into_iter();
    let (fd_base, fd_pim) = (metrics.next().unwrap(), metrics.next().unwrap());
    let (rs_base, rs_pim) = (metrics.next().unwrap(), metrics.next().unwrap());
    vec![
        make_result("FD", fd_base, fd_pim),
        make_result("RS", rs_base, rs_pim),
    ]
}

fn make_result(name: &'static str, baseline: RunMetrics, graphpim: RunMetrics) -> AppResult {
    let lat_pim = AnalyticalModel::default_lat_pim(&SystemConfig::hpca(PimMode::GraphPim).sim);
    let model = AnalyticalModel::from_baseline(&baseline, lat_pim);
    let e_base = uncore_energy(&baseline, 2.0, 32, 16).total();
    let e_pim = uncore_energy(&graphpim, 2.0, 32, 16).total();
    AppResult {
        name,
        analytic_speedup: model.speedup(),
        simulated_speedup: baseline.total_cycles / graphpim.total_cycles.max(1e-9),
        energy_ratio: e_pim / e_base.max(1e-30),
        baseline,
        graphpim,
    }
}

/// Formats Table VIII (measured counters).
pub fn table8(results: &[AppResult]) -> Table {
    let mut t = Table::new("Table VIII: real-world application counters (baseline)")
        .header(["Event", "FD", "RS"]);
    let get = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("{name} missing"))
    };
    let (fd, rs) = (get("FD"), get("RS"));
    t.row([
        "IPC".to_string(),
        format!("{:.2}", fd.baseline.ipc()),
        format!("{:.2}", rs.baseline.ipc()),
    ]);
    t.row([
        "LLC MPKI".to_string(),
        format!("{:.1}", fd.baseline.l3_mpki()),
        format!("{:.1}", rs.baseline.l3_mpki()),
    ]);
    t.row([
        "LLC hit rate".to_string(),
        fmt_pct(fd.baseline.llc_hit_rate()),
        fmt_pct(rs.baseline.llc_hit_rate()),
    ]);
    t.row([
        "Uncore time".to_string(),
        fmt_pct(fd.baseline.uncore_time_fraction()),
        fmt_pct(rs.baseline.uncore_time_fraction()),
    ]);
    t.row([
        "Backend stall".to_string(),
        fmt_pct(fd.baseline.breakdown().backend),
        fmt_pct(rs.baseline.breakdown().backend),
    ]);
    t.row([
        "%PIM-Atomic".to_string(),
        format!("{:.1}%", fd.baseline.pim_atomic_pct()),
        format!("{:.1}%", rs.baseline.pim_atomic_pct()),
    ]);
    t
}

/// Formats Figure 17 (speedup + energy).
pub fn table17(results: &[AppResult]) -> Table {
    let mut t = Table::new("Figure 17: real-world applications (analytical model)").header([
        "App",
        "Analytic speedup",
        "Simulated speedup",
        "Energy (norm.)",
        "Energy saving",
    ]);
    for r in results {
        t.row([
            r.name.to_string(),
            fmt_speedup(r.analytic_speedup),
            fmt_speedup(r.simulated_speedup),
            format!("{:.2}", r.energy_ratio),
            fmt_pct(1.0 - r.energy_ratio),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn apps_benefit_from_graphpim() {
        std::env::set_var("GRAPHPIM_APP_SCALE", "11");
        let results = run();
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(
                r.simulated_speedup > 1.0,
                "{}: simulated speedup {:.2}",
                r.name,
                r.simulated_speedup
            );
            assert!(
                r.analytic_speedup > 1.0,
                "{}: analytic speedup {:.2}",
                r.name,
                r.analytic_speedup
            );
            assert!(
                r.energy_ratio < 1.0,
                "{}: energy ratio {:.2}",
                r.name,
                r.energy_ratio
            );
            assert!(r.baseline.pim_atomic_pct() > 0.0);
        }
    }
}
