//! Figure 1: instructions per cycle (IPC) of graph workloads on a
//! conventional system.
//!
//! The paper measures the full GraphBIG suite on a Xeon E5 and finds
//! most workloads — especially the GT category — well below an IPC of 1.
//! We reproduce it on the baseline simulator configuration.

use super::{Experiments, RunKey};
use crate::config::PimMode;
use crate::report::Table;
use graphpim_workloads::kernels::{full_set, Category, KernelParams};

/// One bar of Figure 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Workload name.
    pub workload: String,
    /// Workload category (GT / RP / DG).
    pub category: Category,
    /// Measured per-core IPC under the baseline configuration.
    pub ipc: f64,
}

/// The runs this figure needs (for prewarming).
pub fn keys(ctx: &Experiments) -> Vec<RunKey> {
    full_set(KernelParams::default())
        .iter()
        .map(|k| RunKey::new(k.name(), PimMode::Baseline, ctx.size()))
        .collect()
}

/// Runs the experiment.
pub fn run(ctx: &Experiments) -> Vec<Row> {
    ctx.prewarm(keys(ctx));
    let names: Vec<(String, Category)> = full_set(KernelParams::default())
        .iter()
        .map(|k| (k.name().to_string(), k.category()))
        .collect();
    names
        .into_iter()
        .map(|(name, category)| {
            let m = ctx.metrics(&name, PimMode::Baseline);
            Row {
                workload: name,
                category,
                ipc: m.ipc(),
            }
        })
        .collect()
}

/// Formats the rows as the paper's bar series.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new("Figure 1: IPC of graph workloads (baseline)")
        .header(["Workload", "Category", "IPC"]);
    for r in rows {
        t.row([
            r.workload.clone(),
            r.category.to_string(),
            format!("{:.3}", r.ipc),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testctx;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn all_13_workloads_report_ipc() {
        let rows = run(testctx::k1());
        assert_eq!(rows.len(), 13);
        for r in &rows {
            assert!(
                r.ipc > 0.0 && r.ipc < 4.0,
                "{}: IPC {} out of range",
                r.workload,
                r.ipc
            );
            if r.category == Category::GraphTraversal {
                assert!(
                    r.ipc < 1.5,
                    "{}: GT workloads are memory bound, IPC {}",
                    r.workload,
                    r.ipc
                );
            }
        }
        assert_eq!(table(&rows).row_count(), 13);
    }
}
