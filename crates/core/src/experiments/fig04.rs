//! Figure 4: atomic instruction overhead.
//!
//! The paper's micro-benchmark runs one iteration of each workload with
//! the graph-property atomics included vs. replaced by regular read/write
//! instructions, finding a 29.8% average slowdown (up to 64% for DCentr)
//! from the atomics themselves.

use super::{geomean, Experiments, RunKey, EVAL_KERNELS};
use crate::config::PimMode;
use crate::report::Table;

/// One bar of Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Workload name.
    pub workload: String,
    /// Execution time with atomics, normalized to the plain read/write
    /// variant (1.0 = no overhead).
    pub normalized_time: f64,
}

impl Row {
    /// The overhead fraction (0.3 = 30% slower with atomics).
    pub fn overhead(&self) -> f64 {
        self.normalized_time - 1.0
    }
}

/// The runs this figure needs (for prewarming).
pub fn keys(ctx: &Experiments) -> Vec<RunKey> {
    EVAL_KERNELS
        .iter()
        .flat_map(|&name| {
            [
                RunKey::new(name, PimMode::Baseline, ctx.size()),
                RunKey::new(name, PimMode::Baseline, ctx.size()).with_plain_atomics(),
            ]
        })
        .collect()
}

/// Runs the experiment over the evaluation kernels.
pub fn run(ctx: &Experiments) -> Vec<Row> {
    ctx.prewarm(keys(ctx));
    let mut rows: Vec<Row> = EVAL_KERNELS
        .iter()
        .map(|&name| {
            let with = ctx.metrics(name, PimMode::Baseline).total_cycles;
            let without = ctx.metrics_plain_atomics(name).total_cycles;
            Row {
                workload: name.to_string(),
                normalized_time: with / without.max(1e-9),
            }
        })
        .collect();
    let avg = geomean(rows.iter().map(|r| r.normalized_time));
    rows.push(Row {
        workload: "Average".into(),
        normalized_time: avg,
    });
    rows
}

/// Formats the rows.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new("Figure 4: atomic instruction overhead (baseline)").header([
        "Workload",
        "Normalized time",
        "Overhead",
    ]);
    for r in rows {
        t.row([
            r.workload.clone(),
            format!("{:.2}", r.normalized_time),
            format!("{:+.1}%", r.overhead() * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testctx;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn atomics_cost_time_on_atomic_heavy_kernels() {
        let rows = run(testctx::k1());
        let dc = rows.iter().find(|r| r.workload == "DC").expect("DC");
        assert!(
            dc.overhead() > 0.05,
            "DC atomic overhead should be visible: {:.3}",
            dc.overhead()
        );
        let avg = rows.iter().find(|r| r.workload == "Average").expect("avg");
        assert!(
            avg.overhead() > 0.0,
            "average overhead {:.3}",
            avg.overhead()
        );
        assert_eq!(rows.len(), 9);
    }
}
