//! Persistent on-disk run cache.
//!
//! Each simulated run is written as one JSON file named after its
//! [`RunKey`](super::RunKey) plus a configuration fingerprint, so
//! `all_figures`, the per-figure binaries, and the test suite share
//! results across processes instead of redoing each other's simulations.
//!
//! * `GRAPHPIM_CACHE_DIR` overrides the cache directory (default:
//!   `<tmpdir>/graphpim-run-cache`).
//! * `GRAPHPIM_NO_CACHE` disables the disk cache entirely.
//!
//! Entries are invalidated by fingerprint: the hash covers the full
//! [`SystemConfig`](crate::config::SystemConfig) of the run, the graph
//! generator inputs, and [`SCHEMA_VERSION`]. **Bump [`SCHEMA_VERSION`]
//! whenever simulator timing or metric semantics change** — that is what
//! retires stale entries written by older code.
//!
//! Serialization is hand-rolled JSON (the vendored `serde` is a no-op
//! stand-in; see `vendor/README.md`). Floats are written with Rust's
//! shortest round-trip formatting and integers as exact decimal, so a
//! cache hit is bit-identical to the run that produced it.

use super::RunKey;
use crate::metrics::RunMetrics;
use graphpim_sim::cpu::CoreStats;
use graphpim_sim::hmc::HmcStats;
use graphpim_sim::mem::hierarchy::LevelCounts;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Cache format + simulator-behavior version. Bump on any change to the
/// timing models, metric definitions, or this file format.
///
/// v2: `HmcStats` gained `atomics_by_category`.
/// v3: `RunMetrics` gained `trace_export_failed`.
/// v4: `HmcStats` gained `requests_per_vault`; `RunMetrics` gained
///     `uncached_atomics` (validation-layer conservation counters).
/// v5: pluggable memory backends (`SimConfig` gained `backend`); the POU
///     hybrid split quantizes per-100k with `floor` instead of per-mille
///     with `round`, changing which property lines land in the PMR for
///     interior fractions.
pub const SCHEMA_VERSION: u32 = 5;

pub use crate::fingerprint::fingerprint;

/// Result of a [`DiskCache::lookup`].
#[derive(Debug, Clone)]
pub enum Lookup {
    /// A valid entry for this (key, fingerprint) pair. Boxed: `Hit` is
    /// ~400 bytes while the other variants are empty.
    Hit(Box<RunMetrics>),
    /// An entry for this run exists but is unusable: written under a
    /// different fingerprint (config/env/schema change) or unparseable.
    Stale,
    /// Never cached.
    Miss,
}

/// A directory of cached [`RunMetrics`], one JSON file per
/// (key, fingerprint) pair. All operations are best-effort: I/O errors
/// degrade to cache misses / skipped writes, never to wrong results.
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// The cache selected by the environment, or `None` when
    /// `GRAPHPIM_NO_CACHE` is set.
    pub fn from_env() -> Option<DiskCache> {
        if std::env::var_os("GRAPHPIM_NO_CACHE").is_some() {
            return None;
        }
        let dir = std::env::var_os("GRAPHPIM_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| std::env::temp_dir().join("graphpim-run-cache"));
        Some(DiskCache::at(dir))
    }

    /// A cache rooted at `dir` (created lazily on first store).
    pub fn at(dir: impl Into<PathBuf>) -> DiskCache {
        DiskCache { dir: dir.into() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Loads the metrics cached for `key` under `fingerprint`, if any.
    pub fn load(&self, key: &RunKey, fingerprint: u64) -> Option<RunMetrics> {
        match self.lookup(key, fingerprint) {
            Lookup::Hit(metrics) => Some(*metrics),
            Lookup::Stale | Lookup::Miss => None,
        }
    }

    /// Like [`DiskCache::load`], but distinguishes a genuinely absent
    /// entry from a stale one (present but written under a different
    /// fingerprint or an older schema) — the engine profiler reports the
    /// two separately.
    pub fn lookup(&self, key: &RunKey, fingerprint: u64) -> Lookup {
        match std::fs::read_to_string(self.path(key, fingerprint)) {
            Ok(text) => match json::parse(&text).and_then(|v| metrics_from_json(&v, key)) {
                Some(metrics) => Lookup::Hit(Box::new(metrics)),
                // The exact file exists but no longer parses: written by
                // an older schema, or corrupt.
                None => Lookup::Stale,
            },
            Err(_) => {
                if self.has_sibling_entry(&key.file_stem()) {
                    // Same run, different fingerprint: a config or schema
                    // change invalidated what we had.
                    Lookup::Stale
                } else {
                    Lookup::Miss
                }
            }
        }
    }

    /// Whether any `{stem}-{16-hex-fingerprint}.json` entry exists.
    /// Strict about the suffix shape so `dc-...-bw10` never matches a
    /// `dc-...-bw10-plain` entry.
    fn has_sibling_entry(&self, stem: &str) -> bool {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return false;
        };
        entries.filter_map(|e| e.ok()).any(|entry| {
            entry
                .file_name()
                .to_str()
                .and_then(|name| name.strip_prefix(stem))
                .and_then(|rest| rest.strip_prefix('-'))
                .and_then(|rest| rest.strip_suffix(".json"))
                .is_some_and(|fp| fp.len() == 16 && fp.bytes().all(|b| b.is_ascii_hexdigit()))
        })
    }

    /// Stores `metrics` for `key` under `fingerprint`. Atomic: written to
    /// a unique temp file, then renamed, so concurrent writers (threads
    /// or processes) never expose a torn entry.
    ///
    /// A store failure degrades (the result is simply recomputed next
    /// run) but warns once per (site, cache dir), so an unwritable
    /// cache dir does not silently turn every future sweep cold — and
    /// a second cache rooted elsewhere still gets its own warning.
    pub fn store(&self, key: &RunKey, fingerprint: u64, metrics: &RunMetrics) {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let warn = |what: &str, e: &std::io::Error| {
            crate::obs::warn_once(
                &format!("run-cache.{what}:{}", self.dir.display()),
                "run-cache",
                &format!(
                    "cannot {what}; results will not persist (further store errors suppressed)"
                ),
                &[("path", &self.dir.display()), ("error", &e)],
            );
        };
        if let Err(e) = std::fs::create_dir_all(&self.dir) {
            warn("create the cache directory", &e);
            return;
        }
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        match std::fs::write(&tmp, metrics_to_json(key, metrics)) {
            Err(e) => warn("write a cache entry", &e),
            Ok(()) => {
                if let Err(e) = std::fs::rename(&tmp, self.path(key, fingerprint)) {
                    warn("publish a cache entry", &e);
                    let _ = std::fs::remove_file(&tmp);
                }
            }
        }
    }

    fn path(&self, key: &RunKey, fingerprint: u64) -> PathBuf {
        self.dir
            .join(format!("{}-{fingerprint:016x}.json", key.file_stem()))
    }
}

/// Renders `metrics` exactly as the cache stores them for `key` — byte
/// for byte the document a cache entry holds on disk. Exposed so the
/// experiment service's `/counters/{run-key}` endpoint serves run
/// counters through the one serialization code path.
pub fn metrics_json(key: &RunKey, metrics: &RunMetrics) -> String {
    metrics_to_json(key, metrics)
}

fn metrics_to_json(key: &RunKey, m: &RunMetrics) -> String {
    let mut s = String::with_capacity(1024);
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": {},", SCHEMA_VERSION);
    let _ = writeln!(s, "  \"key\": \"{}\",", key.file_stem());
    let _ = writeln!(s, "  \"mode\": \"{}\",", m.mode.label());
    let _ = writeln!(s, "  \"cores\": {},", m.cores);
    let _ = writeln!(s, "  \"issue_width\": {},", m.issue_width);
    let _ = writeln!(s, "  \"total_cycles\": {:?},", m.total_cycles);
    let _ = writeln!(
        s,
        "  \"core\": {{\"instructions\": {}, \"memory_ops\": {}, \"host_atomics\": {}, \
         \"pim_atomics\": {}, \"branches\": {}, \"mispredicts\": {}, \
         \"frontend_cycles\": {:?}, \"badspec_cycles\": {:?}, \
         \"atomic_incore_cycles\": {:?}, \"atomic_incache_cycles\": {:?}}},",
        m.core.instructions,
        m.core.memory_ops,
        m.core.host_atomics,
        m.core.pim_atomics,
        m.core.branches,
        m.core.mispredicts,
        m.core.frontend_cycles,
        m.core.badspec_cycles,
        m.core.atomic_incore_cycles,
        m.core.atomic_incache_cycles,
    );
    for (name, level) in [("l1", &m.l1), ("l2", &m.l2), ("l3", &m.l3)] {
        let _ = writeln!(
            s,
            "  \"{name}\": {{\"hits\": {}, \"misses\": {}}},",
            level.hits, level.misses
        );
    }
    let vaults: Vec<String> = m.hmc.atomics_per_vault.iter().map(u64::to_string).collect();
    let vault_requests: Vec<String> = m
        .hmc
        .requests_per_vault
        .iter()
        .map(u64::to_string)
        .collect();
    let _ = writeln!(
        s,
        "  \"hmc\": {{\"request_flits_read\": {}, \"request_flits_write\": {}, \
         \"request_flits_atomic\": {}, \"response_flits_read\": {}, \
         \"response_flits_write\": {}, \"response_flits_atomic\": {}, \
         \"reads\": {}, \"writes\": {}, \"atomics\": {}, \"fp_atomics\": {}, \
         \"bank_wait_cycles\": {:?}, \"bank_wait_max\": {:?}, \"bank_wait_long\": {}, \
         \"fu_wait_cycles\": {:?}, \"fu_busy_cycles\": {:?}, \
         \"dram_activations\": {}, \"dram_accesses\": {}, \
         \"requests_per_vault\": [{}], \
         \"atomics_per_vault\": [{}], \"atomics_by_category\": [{}]}},",
        m.hmc.request_flits_read,
        m.hmc.request_flits_write,
        m.hmc.request_flits_atomic,
        m.hmc.response_flits_read,
        m.hmc.response_flits_write,
        m.hmc.response_flits_atomic,
        m.hmc.reads,
        m.hmc.writes,
        m.hmc.atomics,
        m.hmc.fp_atomics,
        m.hmc.bank_wait_cycles,
        m.hmc.bank_wait_max,
        m.hmc.bank_wait_long,
        m.hmc.fu_wait_cycles,
        m.hmc.fu_busy_cycles,
        m.hmc.dram_activations,
        m.hmc.dram_accesses,
        vault_requests.join(", "),
        vaults.join(", "),
        m.hmc
            .atomics_by_category
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", "),
    );
    let _ = writeln!(s, "  \"offload_candidates\": {},", m.offload_candidates);
    let _ = writeln!(s, "  \"candidate_cache_hits\": {},", m.candidate_cache_hits);
    let _ = writeln!(s, "  \"offloaded_atomics\": {},", m.offloaded_atomics);
    let _ = writeln!(s, "  \"host_pei_atomics\": {},", m.host_pei_atomics);
    let _ = writeln!(s, "  \"uncached_reads\": {},", m.uncached_reads);
    let _ = writeln!(s, "  \"uncached_writes\": {},", m.uncached_writes);
    let _ = writeln!(s, "  \"uncached_atomics\": {},", m.uncached_atomics);
    let _ = writeln!(
        s,
        "  \"memory_service_cycles\": {:?},",
        m.memory_service_cycles
    );
    let _ = writeln!(s, "  \"trace_export_failed\": {}", m.trace_export_failed);
    s.push_str("}\n");
    s
}

fn metrics_from_json(value: &json::Value, key: &RunKey) -> Option<RunMetrics> {
    let top = value.as_object()?;
    if top.get("schema")?.as_u64()? != SCHEMA_VERSION as u64 {
        return None;
    }
    if top.get("mode")?.as_str()? != key.mode.label() {
        return None;
    }
    let core = {
        let o = top.get("core")?.as_object()?;
        CoreStats {
            instructions: o.get("instructions")?.as_u64()?,
            memory_ops: o.get("memory_ops")?.as_u64()?,
            host_atomics: o.get("host_atomics")?.as_u64()?,
            pim_atomics: o.get("pim_atomics")?.as_u64()?,
            branches: o.get("branches")?.as_u64()?,
            mispredicts: o.get("mispredicts")?.as_u64()?,
            frontend_cycles: o.get("frontend_cycles")?.as_f64()?,
            badspec_cycles: o.get("badspec_cycles")?.as_f64()?,
            atomic_incore_cycles: o.get("atomic_incore_cycles")?.as_f64()?,
            atomic_incache_cycles: o.get("atomic_incache_cycles")?.as_f64()?,
        }
    };
    let level = |name: &str| -> Option<LevelCounts> {
        let o = top.get(name)?.as_object()?;
        Some(LevelCounts {
            hits: o.get("hits")?.as_u64()?,
            misses: o.get("misses")?.as_u64()?,
        })
    };
    let hmc = {
        let o = top.get("hmc")?.as_object()?;
        HmcStats {
            request_flits_read: o.get("request_flits_read")?.as_u64()?,
            request_flits_write: o.get("request_flits_write")?.as_u64()?,
            request_flits_atomic: o.get("request_flits_atomic")?.as_u64()?,
            response_flits_read: o.get("response_flits_read")?.as_u64()?,
            response_flits_write: o.get("response_flits_write")?.as_u64()?,
            response_flits_atomic: o.get("response_flits_atomic")?.as_u64()?,
            reads: o.get("reads")?.as_u64()?,
            writes: o.get("writes")?.as_u64()?,
            atomics: o.get("atomics")?.as_u64()?,
            fp_atomics: o.get("fp_atomics")?.as_u64()?,
            bank_wait_cycles: o.get("bank_wait_cycles")?.as_f64()?,
            bank_wait_max: o.get("bank_wait_max")?.as_f64()?,
            bank_wait_long: o.get("bank_wait_long")?.as_u64()?,
            fu_wait_cycles: o.get("fu_wait_cycles")?.as_f64()?,
            fu_busy_cycles: o.get("fu_busy_cycles")?.as_f64()?,
            dram_activations: o.get("dram_activations")?.as_u64()?,
            dram_accesses: o.get("dram_accesses")?.as_u64()?,
            requests_per_vault: o
                .get("requests_per_vault")?
                .as_array()?
                .iter()
                .map(|v| v.as_u64())
                .collect::<Option<Vec<u64>>>()?,
            atomics_per_vault: o
                .get("atomics_per_vault")?
                .as_array()?
                .iter()
                .map(|v| v.as_u64())
                .collect::<Option<Vec<u64>>>()?,
            atomics_by_category: {
                let cats = o
                    .get("atomics_by_category")?
                    .as_array()?
                    .iter()
                    .map(|v| v.as_u64())
                    .collect::<Option<Vec<u64>>>()?;
                <[u64; 5]>::try_from(cats).ok()?
            },
        }
    };
    Some(RunMetrics {
        mode: key.mode,
        cores: top.get("cores")?.as_u64()? as usize,
        issue_width: top.get("issue_width")?.as_u64()? as u32,
        total_cycles: top.get("total_cycles")?.as_f64()?,
        core,
        l1: level("l1")?,
        l2: level("l2")?,
        l3: level("l3")?,
        hmc,
        offload_candidates: top.get("offload_candidates")?.as_u64()?,
        candidate_cache_hits: top.get("candidate_cache_hits")?.as_u64()?,
        offloaded_atomics: top.get("offloaded_atomics")?.as_u64()?,
        host_pei_atomics: top.get("host_pei_atomics")?.as_u64()?,
        uncached_reads: top.get("uncached_reads")?.as_u64()?,
        uncached_writes: top.get("uncached_writes")?.as_u64()?,
        uncached_atomics: top.get("uncached_atomics")?.as_u64()?,
        memory_service_cycles: top.get("memory_service_cycles")?.as_f64()?,
        trace_export_failed: top.get("trace_export_failed")?.as_bool()?,
    })
}

/// Minimal JSON reader for the cache files and the trace exporter.
/// Numbers are kept as raw source tokens and converted at
/// field-extraction time, so `u64` and `f64` both round-trip exactly.
pub mod json {
    /// One parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// Object, insertion-ordered.
        Object(Vec<(String, Value)>),
        /// Array.
        Array(Vec<Value>),
        /// Number, as its raw source token.
        Num(String),
        /// String (no escape support beyond `\"` and `\\`).
        Str(String),
        /// `true` / `false`.
        Bool(bool),
        /// `null`.
        Null,
    }

    impl Value {
        /// Object field view, or `None` for other variants.
        pub fn as_object(&self) -> Option<Obj<'_>> {
            match self {
                Value::Object(fields) => Some(Obj(fields)),
                _ => None,
            }
        }

        /// Array elements, or `None`.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// Exact `u64`, or `None`.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(raw) => raw.parse().ok(),
                _ => None,
            }
        }

        /// `f64` (exact for values written by this module), or `None`.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(raw) => raw.parse().ok(),
                _ => None,
            }
        }

        /// String contents, or `None`.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// Boolean value, or `None`.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }
    }

    /// Field lookup over an object's entries.
    #[derive(Debug, Clone, Copy)]
    pub struct Obj<'a>(&'a [(String, Value)]);

    impl<'a> Obj<'a> {
        /// The value of field `name`, or `None`.
        pub fn get(&self, name: &str) -> Option<&'a Value> {
            self.0.iter().find(|(k, _)| k == name).map(|(_, v)| v)
        }
    }

    /// Parses one JSON document; `None` on any syntax error.
    pub fn parse(text: &str) -> Option<Value> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Some(value)
        } else {
            None
        }
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn eat(bytes: &[u8], pos: &mut usize, expected: u8) -> Option<()> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&expected) {
            *pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<Value> {
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b'{' => parse_object(bytes, pos),
            b'[' => parse_array(bytes, pos),
            b'"' => parse_string(bytes, pos).map(Value::Str),
            b't' => parse_literal(bytes, pos, "true", Value::Bool(true)),
            b'f' => parse_literal(bytes, pos, "false", Value::Bool(false)),
            b'n' => parse_literal(bytes, pos, "null", Value::Null),
            _ => parse_number(bytes, pos),
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Option<Value> {
        eat(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Some(Value::Object(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            eat(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            fields.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos)? {
                b',' => *pos += 1,
                b'}' => {
                    *pos += 1;
                    return Some(Value::Object(fields));
                }
                _ => return None,
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Option<Value> {
        eat(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Some(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos)? {
                b',' => *pos += 1,
                b']' => {
                    *pos += 1;
                    return Some(Value::Array(items));
                }
                _ => return None,
            }
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
        if bytes.get(*pos) != Some(&b'"') {
            return None;
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos)? {
                b'"' => {
                    *pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    *pos += 1;
                    match bytes.get(*pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        _ => return None,
                    }
                    *pos += 1;
                }
                &b => {
                    out.push(b as char);
                    *pos += 1;
                }
            }
        }
    }

    fn parse_literal(bytes: &[u8], pos: &mut usize, text: &str, value: Value) -> Option<Value> {
        if bytes[*pos..].starts_with(text.as_bytes()) {
            *pos += text.len();
            Some(value)
        } else {
            None
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<Value> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(
                bytes[*pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E' | b'i' | b'n' | b'f' | b'N' | b'a'
            )
        {
            *pos += 1;
        }
        if *pos == start {
            return None;
        }
        Some(Value::Num(
            std::str::from_utf8(&bytes[start..*pos]).ok()?.to_string(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PimMode;
    use graphpim_graph::generate::LdbcSize;

    fn tmp_cache(name: &str) -> DiskCache {
        let dir =
            std::env::temp_dir().join(format!("graphpim-cache-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DiskCache::at(dir)
    }

    fn sample_metrics() -> RunMetrics {
        RunMetrics {
            mode: PimMode::GraphPim,
            cores: 16,
            issue_width: 4,
            // Not exactly representable in decimal: exercises the
            // shortest-round-trip float path.
            total_cycles: 123456.789_012_345_6,
            core: CoreStats {
                instructions: (1u64 << 55) + 3, // beyond f64-exact integers
                memory_ops: 42,
                atomic_incore_cycles: 0.1 + 0.2, // 0.30000000000000004
                ..CoreStats::default()
            },
            l1: LevelCounts {
                hits: 10,
                misses: 3,
            },
            l2: LevelCounts { hits: 2, misses: 1 },
            l3: LevelCounts { hits: 1, misses: 1 },
            hmc: HmcStats {
                atomics: 7,
                requests_per_vault: vec![2, 2, 3, 1],
                atomics_per_vault: vec![1, 2, 3, 1],
                atomics_by_category: [4, 0, 1, 2, 0],
                fu_wait_cycles: 1.5e-9,
                ..HmcStats::default()
            },
            offload_candidates: 9,
            candidate_cache_hits: 2,
            offloaded_atomics: 7,
            host_pei_atomics: 0,
            uncached_reads: 5,
            uncached_writes: 4,
            uncached_atomics: 3,
            memory_service_cycles: 1e12,
            trace_export_failed: true,
        }
    }

    fn key() -> RunKey {
        RunKey::new("DC", PimMode::GraphPim, LdbcSize::K1)
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let cache = tmp_cache("roundtrip");
        let metrics = sample_metrics();
        cache.store(&key(), 0xABCD, &metrics);
        let loaded = cache.load(&key(), 0xABCD).expect("cache hit");
        assert_eq!(loaded, metrics);
        assert_eq!(
            loaded.total_cycles.to_bits(),
            metrics.total_cycles.to_bits()
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn changed_fingerprint_misses() {
        let cache = tmp_cache("fingerprint");
        cache.store(&key(), 1, &sample_metrics());
        assert!(cache.load(&key(), 1).is_some());
        assert!(
            cache.load(&key(), 2).is_none(),
            "fingerprint must invalidate"
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn different_keys_do_not_collide() {
        let cache = tmp_cache("keys");
        cache.store(&key(), 9, &sample_metrics());
        let other = RunKey::new("BFS", PimMode::GraphPim, LdbcSize::K1);
        assert!(cache.load(&other, 9).is_none());
        let with_fus = key().with_fus(2);
        assert!(cache.load(&with_fus, 9).is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entry_degrades_to_miss() {
        let cache = tmp_cache("corrupt");
        cache.store(&key(), 4, &sample_metrics());
        let path = cache.path(&key(), 4);
        std::fs::write(&path, "{\"schema\": 1, \"truncated").unwrap();
        assert!(cache.load(&key(), 4).is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn lookup_distinguishes_stale_from_miss() {
        let cache = tmp_cache("lookup");
        // Nothing cached yet: a true miss.
        assert!(matches!(cache.lookup(&key(), 1), Lookup::Miss));
        cache.store(&key(), 1, &sample_metrics());
        assert!(matches!(cache.lookup(&key(), 1), Lookup::Hit(_)));
        // Same run under a different fingerprint: stale, not miss.
        assert!(matches!(cache.lookup(&key(), 2), Lookup::Stale));
        // A different run is still a miss.
        let other = RunKey::new("BFS", PimMode::GraphPim, LdbcSize::K1);
        assert!(matches!(cache.lookup(&other, 1), Lookup::Miss));
        // A corrupt exact entry is stale.
        std::fs::write(cache.path(&key(), 1), "not json").unwrap();
        assert!(matches!(cache.lookup(&key(), 1), Lookup::Stale));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn sibling_detection_is_not_fooled_by_stem_prefixes() {
        let cache = tmp_cache("siblings");
        // `-plain` keys share a textual prefix with their plain-atomics-off
        // counterparts; a cached plain entry must not mark the other stale.
        let plain = key().with_plain_atomics();
        cache.store(&plain, 3, &sample_metrics());
        assert!(matches!(cache.lookup(&key(), 3), Lookup::Miss));
        assert!(matches!(cache.lookup(&plain, 9), Lookup::Stale));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn fingerprint_is_reexported_from_shared_module() {
        // The implementation lives in `crate::fingerprint`; both stores
        // must resolve to the same function.
        assert_eq!(
            fingerprint(&["x", "y"]),
            crate::fingerprint::fingerprint(&["x", "y"])
        );
    }
}
