//! Figure 9: breakdown of normalized execution time.
//!
//! For baseline and GraphPIM, execution time splits into `Atomic-inCore`
//! (pipeline freezing + write-buffer draining), `Atomic-inCache` (cache
//! checking + coherence traffic), and `Other`. In the baseline, BFS /
//! CComp / DC / PRank spend >50% in atomics; GraphPIM eliminates both
//! atomic components.

use super::{Experiments, RunKey, EVAL_KERNELS};
use crate::config::PimMode;
use crate::report::Table;

/// One stacked bar (one workload × one configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct Bar {
    /// Workload name.
    pub workload: String,
    /// Configuration of this bar.
    pub mode: PimMode,
    /// In-core atomic cycles, normalized to the *baseline* total.
    pub atomic_incore: f64,
    /// Cache/coherence/memory atomic cycles, normalized to baseline total.
    pub atomic_incache: f64,
    /// Everything else, normalized to baseline total.
    pub other: f64,
}

impl Bar {
    /// Total normalized height of the bar.
    pub fn total(&self) -> f64 {
        self.atomic_incore + self.atomic_incache + self.other
    }
}

/// The runs this figure needs (for prewarming).
pub fn keys(ctx: &Experiments) -> Vec<RunKey> {
    EVAL_KERNELS
        .iter()
        .flat_map(|&name| {
            [PimMode::Baseline, PimMode::GraphPim].map(|mode| RunKey::new(name, mode, ctx.size()))
        })
        .collect()
}

/// Runs the experiment: two bars (Baseline, GraphPIM) per workload.
pub fn run(ctx: &Experiments) -> Vec<Bar> {
    ctx.prewarm(keys(ctx));
    let mut bars = Vec::new();
    for &name in &EVAL_KERNELS {
        let base = ctx.metrics(name, PimMode::Baseline);
        let base_total = base.machine_cycles();
        for mode in [PimMode::Baseline, PimMode::GraphPim] {
            let m = ctx.metrics(name, mode);
            let total = m.machine_cycles() / base_total;
            let mut incore = m.core.atomic_incore_cycles / base_total;
            let mut incache = m.core.atomic_incache_cycles / base_total;
            // Attributed cycles are summed per instruction; on imbalanced
            // runs (cores idling at barriers) the sum can exceed wall
            // time x cores — cap the attribution at the bar height.
            let attributed = incore + incache;
            if attributed > total {
                let scale = total / attributed;
                incore *= scale;
                incache *= scale;
            }
            bars.push(Bar {
                workload: name.to_string(),
                mode,
                atomic_incore: incore,
                atomic_incache: incache,
                other: (total - incore - incache).max(0.0),
            });
        }
    }
    bars
}

/// Formats the bars.
pub fn table(bars: &[Bar]) -> Table {
    let mut t = Table::new("Figure 9: normalized execution time breakdown").header([
        "Workload",
        "Config",
        "Atomic-inCore",
        "Atomic-inCache",
        "Other",
        "Total",
    ]);
    for b in bars {
        t.row([
            b.workload.clone(),
            b.mode.to_string(),
            format!("{:.2}", b.atomic_incore),
            format!("{:.2}", b.atomic_incache),
            format!("{:.2}", b.other),
            format!("{:.2}", b.total()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testctx;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn baseline_atomics_visible_and_graphpim_eliminates_them() {
        let bars = run(testctx::k1());
        assert_eq!(bars.len(), 16); // 8 workloads x 2 configs
        let dc_base = bars
            .iter()
            .find(|b| b.workload == "DC" && b.mode == PimMode::Baseline)
            .expect("DC baseline");
        assert!(
            dc_base.atomic_incore + dc_base.atomic_incache > 0.15,
            "DC atomic share {:.2}",
            dc_base.atomic_incore + dc_base.atomic_incache
        );
        assert!(
            (dc_base.total() - 1.0).abs() < 1e-6,
            "baseline normalizes to 1"
        );

        let dc_pim = bars
            .iter()
            .find(|b| b.workload == "DC" && b.mode == PimMode::GraphPim)
            .expect("DC GraphPIM");
        assert_eq!(dc_pim.atomic_incore, 0.0);
        assert!(dc_pim.total() < dc_base.total());
    }
}
