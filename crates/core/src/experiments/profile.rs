//! Engine profiling: where the experiment sweep spends its time.
//!
//! [`EngineProfile`] records, per run, whether the result came from the
//! disk cache or a fresh simulation and how long it took; per `prewarm`
//! fan-out, how well the worker pool was utilized. The `all_figures`
//! driver prints [`EngineProfile::summary`] at the end of a sweep and can
//! dump [`EngineProfile::to_json`] via `GRAPHPIM_PROFILE_JSON`.
//!
//! Wall times are measured around the experiment engine, not inside the
//! simulator, so profiling never touches simulated timing.

use graphpim_sim::telemetry::CounterRegistry;
use std::fmt::Write as _;

/// Where a run's result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunSource {
    /// Freshly simulated in this process, kernel executed live.
    Simulated,
    /// Loaded from the persistent disk cache.
    DiskHit,
    /// Timing-simulated in this process from a stored instruction trace
    /// (no kernel execution).
    Replayed,
}

impl RunSource {
    fn label(self) -> &'static str {
        match self {
            RunSource::Simulated => "simulated",
            RunSource::DiskHit => "disk-hit",
            RunSource::Replayed => "replayed",
        }
    }
}

/// One resolved run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The run's `RunKey::file_stem()`.
    pub key: String,
    /// Wall seconds spent resolving it (simulation or cache load).
    pub seconds: f64,
    /// Where the result came from.
    pub source: RunSource,
    /// The request-correlated trace ID active when the run resolved
    /// (the serving thread's `trace` context field), if any.
    pub trace: Option<String>,
}

/// One `prewarm` fan-out.
#[derive(Debug, Clone)]
pub struct PrewarmRecord {
    /// Distinct keys dispatched.
    pub keys: usize,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall seconds of the fan-out.
    pub wall_seconds: f64,
    /// Summed per-run busy seconds across all workers.
    pub busy_seconds: f64,
}

impl PrewarmRecord {
    /// Worker-pool utilization in `[0, 1]`: busy time over the pool's
    /// wall-time capacity.
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall_seconds * self.threads as f64;
        if capacity <= 0.0 {
            0.0
        } else {
            (self.busy_seconds / capacity).min(1.0)
        }
    }
}

/// Accumulated engine profile of one [`Experiments`](super::Experiments)
/// context.
#[derive(Debug, Clone, Default)]
pub struct EngineProfile {
    runs: Vec<RunRecord>,
    disk_hits: usize,
    disk_misses: usize,
    disk_stale: usize,
    prewarms: Vec<PrewarmRecord>,
    trace: TraceStoreCounts,
}

/// Capture/replay counters of the trace-store subsystem, as accumulated
/// by one experiment context. Exported to telemetry under the
/// `tracestore.*` namespace ([`EngineProfile::tracestore_counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TraceStoreCounts {
    /// Functional kernel executions performed to capture a trace.
    pub captures: usize,
    /// Wall seconds spent in those captures.
    pub capture_seconds: f64,
    /// Trace-store lookups satisfied from disk.
    pub disk_hits: usize,
    /// Trace-store lookups with no entry.
    pub disk_misses: usize,
    /// Entries rejected by codec validation (and removed).
    pub corrupt: usize,
    /// Runs resolved by replaying a captured trace.
    pub replays: usize,
    /// Replays that failed mid-stream and fell back to a live run.
    pub replay_fallbacks: usize,
    /// Runs whose attached JSONL trace export failed to write.
    pub export_failures: usize,
}

impl EngineProfile {
    /// Records one resolved run, stamping it with the calling thread's
    /// `trace` context field (set by the serve worker for the job being
    /// resolved) so a slow run is attributable to the exact request
    /// that caused it.
    pub fn record_run(&mut self, key: String, seconds: f64, source: RunSource) {
        self.runs.push(RunRecord {
            key,
            seconds,
            source,
            trace: crate::obs::context_value("trace"),
        });
    }

    /// Counts a disk-cache hit.
    pub fn note_disk_hit(&mut self) {
        self.disk_hits += 1;
    }

    /// Counts a disk-cache miss (entry never existed).
    pub fn note_disk_miss(&mut self) {
        self.disk_misses += 1;
    }

    /// Counts a stale disk entry (existed, but invalidated by a config,
    /// environment, or schema change).
    pub fn note_disk_stale(&mut self) {
        self.disk_stale += 1;
    }

    /// Records one `prewarm` fan-out.
    pub fn record_prewarm(&mut self, record: PrewarmRecord) {
        self.prewarms.push(record);
    }

    /// Counts one trace capture (a functional kernel execution).
    pub fn note_trace_capture(&mut self, seconds: f64) {
        self.trace.captures += 1;
        self.trace.capture_seconds += seconds;
    }

    /// Counts a trace-store disk hit.
    pub fn note_trace_disk_hit(&mut self) {
        self.trace.disk_hits += 1;
    }

    /// Counts a trace-store disk miss.
    pub fn note_trace_disk_miss(&mut self) {
        self.trace.disk_misses += 1;
    }

    /// Counts a corrupt trace-store entry (rejected and removed).
    pub fn note_trace_corrupt(&mut self) {
        self.trace.corrupt += 1;
    }

    /// Counts one run resolved by replay.
    pub fn note_replay(&mut self) {
        self.trace.replays += 1;
    }

    /// Counts a replay that failed and fell back to a live run.
    pub fn note_replay_fallback(&mut self) {
        self.trace.replay_fallbacks += 1;
    }

    /// Counts a run whose JSONL trace export failed to write.
    pub fn note_trace_export_failure(&mut self) {
        self.trace.export_failures += 1;
    }

    /// The accumulated trace-store counters.
    pub fn trace_store(&self) -> TraceStoreCounts {
        self.trace
    }

    /// The trace-store counters as a telemetry registry under the
    /// `tracestore.*` namespace.
    pub fn tracestore_counters(&self) -> CounterRegistry {
        let mut reg = CounterRegistry::default();
        let t = &self.trace;
        reg.record("tracestore.captures", t.captures as f64);
        reg.record("tracestore.capture_seconds", t.capture_seconds);
        reg.record("tracestore.disk_hits", t.disk_hits as f64);
        reg.record("tracestore.disk_misses", t.disk_misses as f64);
        reg.record("tracestore.corrupt", t.corrupt as f64);
        reg.record("tracestore.replays", t.replays as f64);
        reg.record("tracestore.replay_fallbacks", t.replay_fallbacks as f64);
        reg.record("tracestore.export_failures", t.export_failures as f64);
        reg
    }

    /// All run records, in resolution order.
    pub fn runs(&self) -> &[RunRecord] {
        &self.runs
    }

    /// All prewarm records.
    pub fn prewarms(&self) -> &[PrewarmRecord] {
        &self.prewarms
    }

    /// `(hits, misses, stale)` disk-cache lookup counts.
    pub fn disk_counts(&self) -> (usize, usize, usize) {
        (self.disk_hits, self.disk_misses, self.disk_stale)
    }

    /// Stale disk-cache lookups.
    pub fn disk_stale(&self) -> usize {
        self.disk_stale
    }

    /// Total wall seconds spent actually simulating (live and replayed
    /// timing runs; disk hits excluded).
    pub fn simulated_seconds(&self) -> f64 {
        self.runs
            .iter()
            .filter(|r| r.source != RunSource::DiskHit)
            .map(|r| r.seconds)
            .sum()
    }

    /// The slowest run, if any.
    pub fn slowest(&self) -> Option<&RunRecord> {
        self.runs
            .iter()
            .max_by(|a, b| a.seconds.total_cmp(&b.seconds))
    }

    /// Multi-line human-readable summary (each line prefixed
    /// `[profile]`), ending with a newline.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let simulated = self
            .runs
            .iter()
            .filter(|r| r.source != RunSource::DiskHit)
            .count();
        let _ = writeln!(
            s,
            "[profile] runs: {} ({} simulated in {:.2}s, {} disk hits)",
            self.runs.len(),
            simulated,
            self.simulated_seconds(),
            self.runs.len() - simulated,
        );
        let _ = writeln!(
            s,
            "[profile] disk cache: {} hits, {} misses, {} stale",
            self.disk_hits, self.disk_misses, self.disk_stale
        );
        if self.trace != TraceStoreCounts::default() {
            let t = &self.trace;
            let _ = writeln!(
                s,
                "[profile] trace store: {} captures ({:.2}s), {} disk hits, \
                 {} misses, {} corrupt; {} replays, {} fallbacks",
                t.captures,
                t.capture_seconds,
                t.disk_hits,
                t.disk_misses,
                t.corrupt,
                t.replays,
                t.replay_fallbacks
            );
        }
        if self.trace.export_failures > 0 {
            let _ = writeln!(
                s,
                "[profile] WARNING: {} JSONL trace exports failed to write \
                 (traces on disk are incomplete)",
                self.trace.export_failures
            );
        }
        if let Some(slowest) = self.slowest() {
            let _ = writeln!(
                s,
                "[profile] slowest run: {} ({:.2}s, {})",
                slowest.key,
                slowest.seconds,
                slowest.source.label()
            );
        }
        for (i, p) in self.prewarms.iter().enumerate() {
            let _ = writeln!(
                s,
                "[profile] prewarm #{}: {} keys on {} threads, {:.2}s wall, \
                 {:.0}% pool utilization",
                i + 1,
                p.keys,
                p.threads,
                p.wall_seconds,
                100.0 * p.utilization()
            );
        }
        s
    }

    /// The full profile as a JSON document (hand-rolled; the vendored
    /// serde is a no-op stand-in).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"key\": \"{}\", \"seconds\": {:?}, \"source\": \"{}\"",
                r.key,
                r.seconds,
                r.source.label()
            );
            if let Some(trace) = &r.trace {
                let _ = write!(s, ", \"trace\": \"{trace}\"");
            }
            s.push('}');
            s.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        let _ = writeln!(
            s,
            "  ],\n  \"disk\": {{\"hits\": {}, \"misses\": {}, \"stale\": {}}},",
            self.disk_hits, self.disk_misses, self.disk_stale
        );
        let t = &self.trace;
        let _ = writeln!(
            s,
            "  \"tracestore\": {{\"captures\": {}, \"capture_seconds\": {:?}, \
             \"disk_hits\": {}, \"disk_misses\": {}, \"corrupt\": {}, \
             \"replays\": {}, \"replay_fallbacks\": {}, \"export_failures\": {}}},",
            t.captures,
            t.capture_seconds,
            t.disk_hits,
            t.disk_misses,
            t.corrupt,
            t.replays,
            t.replay_fallbacks,
            t.export_failures
        );
        s.push_str("  \"prewarm\": [\n");
        for (i, p) in self.prewarms.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"keys\": {}, \"threads\": {}, \"wall_seconds\": {:?}, \
                 \"busy_seconds\": {:?}, \"utilization\": {:?}}}",
                p.keys,
                p.threads,
                p.wall_seconds,
                p.busy_seconds,
                p.utilization()
            );
            s.push_str(if i + 1 < self.prewarms.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_summary() {
        let mut p = EngineProfile::default();
        p.note_disk_miss();
        p.record_run("dc-baseline".into(), 1.5, RunSource::Simulated);
        p.note_disk_hit();
        p.record_run("dc-graphpim".into(), 0.01, RunSource::DiskHit);
        p.note_disk_stale();
        p.record_run("bfs-baseline".into(), 0.5, RunSource::Simulated);
        p.record_prewarm(PrewarmRecord {
            keys: 3,
            threads: 2,
            wall_seconds: 1.25,
            busy_seconds: 2.0,
        });
        assert_eq!(p.disk_counts(), (1, 1, 1));
        assert_eq!(p.runs().len(), 3);
        assert!((p.simulated_seconds() - 2.0).abs() < 1e-12);
        assert_eq!(p.slowest().unwrap().key, "dc-baseline");
        let util = p.prewarms()[0].utilization();
        assert!((util - 0.8).abs() < 1e-12);
        let summary = p.summary();
        assert!(summary.contains("2 simulated"));
        assert!(summary.contains("1 hits, 1 misses, 1 stale"));
        assert!(summary.contains("slowest run: dc-baseline"));
        assert!(summary.contains("80% pool utilization"));
    }

    #[test]
    fn utilization_bounds() {
        let p = PrewarmRecord {
            keys: 1,
            threads: 4,
            wall_seconds: 0.0,
            busy_seconds: 1.0,
        };
        assert_eq!(p.utilization(), 0.0);
        let q = PrewarmRecord {
            keys: 1,
            threads: 1,
            wall_seconds: 1.0,
            busy_seconds: 5.0,
        };
        assert_eq!(q.utilization(), 1.0);
    }

    #[test]
    fn json_dump_is_parseable() {
        let mut p = EngineProfile::default();
        p.record_run("dc-k1".into(), 0.25, RunSource::Simulated);
        p.record_prewarm(PrewarmRecord {
            keys: 1,
            threads: 1,
            wall_seconds: 0.25,
            busy_seconds: 0.25,
        });
        let doc = crate::experiments::cache::json::parse(&p.to_json()).expect("valid JSON");
        let top = doc.as_object().unwrap();
        let runs = top.get("runs").unwrap().as_array().unwrap();
        assert_eq!(runs.len(), 1);
        let run = runs[0].as_object().unwrap();
        assert_eq!(run.get("key").unwrap().as_str(), Some("dc-k1"));
        assert_eq!(run.get("seconds").unwrap().as_f64(), Some(0.25));
        let disk = top.get("disk").unwrap().as_object().unwrap();
        assert_eq!(disk.get("hits").unwrap().as_u64(), Some(0));
        let prewarm = top.get("prewarm").unwrap().as_array().unwrap();
        assert_eq!(
            prewarm[0]
                .as_object()
                .unwrap()
                .get("threads")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn trace_store_counters_flow_to_summary_and_telemetry() {
        let mut p = EngineProfile::default();
        p.note_trace_disk_miss();
        p.note_trace_capture(0.5);
        p.note_replay();
        p.record_run("bfs-k1".into(), 0.1, RunSource::Replayed);
        p.note_trace_disk_hit();
        p.note_replay();
        p.record_run("bfs-k1-pim".into(), 0.1, RunSource::Replayed);
        p.note_trace_export_failure();
        let t = p.trace_store();
        assert_eq!(t.captures, 1);
        assert_eq!(t.disk_hits, 1);
        assert_eq!(t.disk_misses, 1);
        assert_eq!(t.replays, 2);
        assert_eq!(t.export_failures, 1);
        // Replayed runs count as simulated time.
        assert!((p.simulated_seconds() - 0.2).abs() < 1e-12);
        let summary = p.summary();
        assert!(summary.contains("trace store: 1 captures"));
        assert!(summary.contains("2 replays"));
        assert!(summary.contains("WARNING: 1 JSONL trace exports failed"));
        let reg = p.tracestore_counters();
        assert_eq!(reg.get("tracestore.captures"), Some(1.0));
        assert_eq!(reg.get("tracestore.replays"), Some(2.0));
        assert_eq!(reg.get("tracestore.export_failures"), Some(1.0));
        // The JSON dump stays parseable with the new section.
        let doc = crate::experiments::cache::json::parse(&p.to_json()).expect("valid JSON");
        let ts = doc
            .as_object()
            .unwrap()
            .get("tracestore")
            .unwrap()
            .as_object()
            .unwrap();
        assert_eq!(ts.get("replays").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn empty_profile_json_is_parseable() {
        let p = EngineProfile::default();
        assert!(crate::experiments::cache::json::parse(&p.to_json()).is_some());
        assert!(p.slowest().is_none());
        assert_eq!(p.simulated_seconds(), 0.0);
    }
}
