//! Engine profiling: where the experiment sweep spends its time.
//!
//! [`EngineProfile`] records, per run, whether the result came from the
//! disk cache or a fresh simulation and how long it took; per `prewarm`
//! fan-out, how well the worker pool was utilized. The `all_figures`
//! driver prints [`EngineProfile::summary`] at the end of a sweep and can
//! dump [`EngineProfile::to_json`] via `GRAPHPIM_PROFILE_JSON`.
//!
//! Wall times are measured around the experiment engine, not inside the
//! simulator, so profiling never touches simulated timing.

use std::fmt::Write as _;

/// Where a run's result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunSource {
    /// Freshly simulated in this process.
    Simulated,
    /// Loaded from the persistent disk cache.
    DiskHit,
}

impl RunSource {
    fn label(self) -> &'static str {
        match self {
            RunSource::Simulated => "simulated",
            RunSource::DiskHit => "disk-hit",
        }
    }
}

/// One resolved run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The run's `RunKey::file_stem()`.
    pub key: String,
    /// Wall seconds spent resolving it (simulation or cache load).
    pub seconds: f64,
    /// Where the result came from.
    pub source: RunSource,
}

/// One `prewarm` fan-out.
#[derive(Debug, Clone)]
pub struct PrewarmRecord {
    /// Distinct keys dispatched.
    pub keys: usize,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall seconds of the fan-out.
    pub wall_seconds: f64,
    /// Summed per-run busy seconds across all workers.
    pub busy_seconds: f64,
}

impl PrewarmRecord {
    /// Worker-pool utilization in `[0, 1]`: busy time over the pool's
    /// wall-time capacity.
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall_seconds * self.threads as f64;
        if capacity <= 0.0 {
            0.0
        } else {
            (self.busy_seconds / capacity).min(1.0)
        }
    }
}

/// Accumulated engine profile of one [`Experiments`](super::Experiments)
/// context.
#[derive(Debug, Clone, Default)]
pub struct EngineProfile {
    runs: Vec<RunRecord>,
    disk_hits: usize,
    disk_misses: usize,
    disk_stale: usize,
    prewarms: Vec<PrewarmRecord>,
}

impl EngineProfile {
    /// Records one resolved run.
    pub fn record_run(&mut self, key: String, seconds: f64, source: RunSource) {
        self.runs.push(RunRecord {
            key,
            seconds,
            source,
        });
    }

    /// Counts a disk-cache hit.
    pub fn note_disk_hit(&mut self) {
        self.disk_hits += 1;
    }

    /// Counts a disk-cache miss (entry never existed).
    pub fn note_disk_miss(&mut self) {
        self.disk_misses += 1;
    }

    /// Counts a stale disk entry (existed, but invalidated by a config,
    /// environment, or schema change).
    pub fn note_disk_stale(&mut self) {
        self.disk_stale += 1;
    }

    /// Records one `prewarm` fan-out.
    pub fn record_prewarm(&mut self, record: PrewarmRecord) {
        self.prewarms.push(record);
    }

    /// All run records, in resolution order.
    pub fn runs(&self) -> &[RunRecord] {
        &self.runs
    }

    /// All prewarm records.
    pub fn prewarms(&self) -> &[PrewarmRecord] {
        &self.prewarms
    }

    /// `(hits, misses, stale)` disk-cache lookup counts.
    pub fn disk_counts(&self) -> (usize, usize, usize) {
        (self.disk_hits, self.disk_misses, self.disk_stale)
    }

    /// Stale disk-cache lookups.
    pub fn disk_stale(&self) -> usize {
        self.disk_stale
    }

    /// Total wall seconds spent actually simulating.
    pub fn simulated_seconds(&self) -> f64 {
        self.runs
            .iter()
            .filter(|r| r.source == RunSource::Simulated)
            .map(|r| r.seconds)
            .sum()
    }

    /// The slowest run, if any.
    pub fn slowest(&self) -> Option<&RunRecord> {
        self.runs
            .iter()
            .max_by(|a, b| a.seconds.total_cmp(&b.seconds))
    }

    /// Multi-line human-readable summary (each line prefixed
    /// `[profile]`), ending with a newline.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let simulated = self
            .runs
            .iter()
            .filter(|r| r.source == RunSource::Simulated)
            .count();
        let _ = writeln!(
            s,
            "[profile] runs: {} ({} simulated in {:.2}s, {} disk hits)",
            self.runs.len(),
            simulated,
            self.simulated_seconds(),
            self.runs.len() - simulated,
        );
        let _ = writeln!(
            s,
            "[profile] disk cache: {} hits, {} misses, {} stale",
            self.disk_hits, self.disk_misses, self.disk_stale
        );
        if let Some(slowest) = self.slowest() {
            let _ = writeln!(
                s,
                "[profile] slowest run: {} ({:.2}s, {})",
                slowest.key,
                slowest.seconds,
                slowest.source.label()
            );
        }
        for (i, p) in self.prewarms.iter().enumerate() {
            let _ = writeln!(
                s,
                "[profile] prewarm #{}: {} keys on {} threads, {:.2}s wall, \
                 {:.0}% pool utilization",
                i + 1,
                p.keys,
                p.threads,
                p.wall_seconds,
                100.0 * p.utilization()
            );
        }
        s
    }

    /// The full profile as a JSON document (hand-rolled; the vendored
    /// serde is a no-op stand-in).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"key\": \"{}\", \"seconds\": {:?}, \"source\": \"{}\"}}",
                r.key,
                r.seconds,
                r.source.label()
            );
            s.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        let _ = writeln!(
            s,
            "  ],\n  \"disk\": {{\"hits\": {}, \"misses\": {}, \"stale\": {}}},",
            self.disk_hits, self.disk_misses, self.disk_stale
        );
        s.push_str("  \"prewarm\": [\n");
        for (i, p) in self.prewarms.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"keys\": {}, \"threads\": {}, \"wall_seconds\": {:?}, \
                 \"busy_seconds\": {:?}, \"utilization\": {:?}}}",
                p.keys,
                p.threads,
                p.wall_seconds,
                p.busy_seconds,
                p.utilization()
            );
            s.push_str(if i + 1 < self.prewarms.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_summary() {
        let mut p = EngineProfile::default();
        p.note_disk_miss();
        p.record_run("dc-baseline".into(), 1.5, RunSource::Simulated);
        p.note_disk_hit();
        p.record_run("dc-graphpim".into(), 0.01, RunSource::DiskHit);
        p.note_disk_stale();
        p.record_run("bfs-baseline".into(), 0.5, RunSource::Simulated);
        p.record_prewarm(PrewarmRecord {
            keys: 3,
            threads: 2,
            wall_seconds: 1.25,
            busy_seconds: 2.0,
        });
        assert_eq!(p.disk_counts(), (1, 1, 1));
        assert_eq!(p.runs().len(), 3);
        assert!((p.simulated_seconds() - 2.0).abs() < 1e-12);
        assert_eq!(p.slowest().unwrap().key, "dc-baseline");
        let util = p.prewarms()[0].utilization();
        assert!((util - 0.8).abs() < 1e-12);
        let summary = p.summary();
        assert!(summary.contains("2 simulated"));
        assert!(summary.contains("1 hits, 1 misses, 1 stale"));
        assert!(summary.contains("slowest run: dc-baseline"));
        assert!(summary.contains("80% pool utilization"));
    }

    #[test]
    fn utilization_bounds() {
        let p = PrewarmRecord {
            keys: 1,
            threads: 4,
            wall_seconds: 0.0,
            busy_seconds: 1.0,
        };
        assert_eq!(p.utilization(), 0.0);
        let q = PrewarmRecord {
            keys: 1,
            threads: 1,
            wall_seconds: 1.0,
            busy_seconds: 5.0,
        };
        assert_eq!(q.utilization(), 1.0);
    }

    #[test]
    fn json_dump_is_parseable() {
        let mut p = EngineProfile::default();
        p.record_run("dc-k1".into(), 0.25, RunSource::Simulated);
        p.record_prewarm(PrewarmRecord {
            keys: 1,
            threads: 1,
            wall_seconds: 0.25,
            busy_seconds: 0.25,
        });
        let doc = crate::experiments::cache::json::parse(&p.to_json()).expect("valid JSON");
        let top = doc.as_object().unwrap();
        let runs = top.get("runs").unwrap().as_array().unwrap();
        assert_eq!(runs.len(), 1);
        let run = runs[0].as_object().unwrap();
        assert_eq!(run.get("key").unwrap().as_str(), Some("dc-k1"));
        assert_eq!(run.get("seconds").unwrap().as_f64(), Some(0.25));
        let disk = top.get("disk").unwrap().as_object().unwrap();
        assert_eq!(disk.get("hits").unwrap().as_u64(), Some(0));
        let prewarm = top.get("prewarm").unwrap().as_array().unwrap();
        assert_eq!(
            prewarm[0]
                .as_object()
                .unwrap()
                .get("threads")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn empty_profile_json_is_parseable() {
        let p = EngineProfile::default();
        assert!(crate::experiments::cache::json::parse(&p.to_json()).is_some());
        assert!(p.slowest().is_none());
        assert_eq!(p.simulated_seconds(), 0.0);
    }
}
