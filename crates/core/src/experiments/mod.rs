//! Experiment drivers: one module per table/figure of the paper.
//!
//! All figures share one [`Experiments`] context, which memoizes
//! (kernel × configuration) simulation runs so that e.g. Figures 7, 9, 10
//! and 12 — different views of the same three-configuration sweep — cost
//! one simulation each.
//!
//! The input scale defaults to LDBC-10k so the whole harness finishes in
//! minutes; set `GRAPHPIM_SCALE=1k|10k|100k|1m` to change it (the paper
//! uses LDBC-1M; shapes are stable across scales — Figure 14 is the scale
//! sweep itself).

pub mod ablation;
pub mod fig01;
pub mod fig02;
pub mod fig04;
pub mod fig07;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod hybrid;
pub mod tables;

use crate::config::{PimMode, SystemConfig};
use crate::metrics::RunMetrics;
use crate::system::SystemSim;
use graphpim_graph::generate::{GraphSpec, LdbcSize};
use graphpim_graph::{CsrGraph, VertexId};
use graphpim_workloads::kernels::{by_name, KernelParams};
use std::collections::HashMap;

/// A memoization key for one simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct RunKey {
    kernel: String,
    mode: PimMode,
    size: LdbcSize,
    fus: usize,
    /// Link bandwidth factor in tenths (5 = half, 10 = paper, 20 = double).
    bw_tenths: u32,
    /// Figure 4 variant: atomics replaced by plain read + write.
    plain_atomics: bool,
}

/// Shared context: input graphs and memoized runs.
pub struct Experiments {
    size: LdbcSize,
    graphs: HashMap<LdbcSize, CsrGraph>,
    weighted: HashMap<LdbcSize, CsrGraph>,
    runs: HashMap<RunKey, RunMetrics>,
    verbose: bool,
}

impl Experiments {
    /// Context at the scale selected by `GRAPHPIM_SCALE` (default 10k).
    pub fn from_env() -> Self {
        let size = match std::env::var("GRAPHPIM_SCALE").as_deref() {
            Ok("1k") => LdbcSize::K1,
            Ok("100k") => LdbcSize::K100,
            Ok("1m") => LdbcSize::M1,
            _ => LdbcSize::K10,
        };
        Experiments::at_scale(size)
    }

    /// Context at an explicit scale.
    pub fn at_scale(size: LdbcSize) -> Self {
        Experiments {
            size,
            graphs: HashMap::new(),
            weighted: HashMap::new(),
            runs: HashMap::new(),
            verbose: std::env::var("GRAPHPIM_VERBOSE").is_ok(),
        }
    }

    /// The context's default input size.
    pub fn size(&self) -> LdbcSize {
        self.size
    }

    /// The (unweighted) LDBC-like graph at `size`, generated once.
    pub fn graph(&mut self, size: LdbcSize) -> &CsrGraph {
        self.graphs
            .entry(size)
            .or_insert_with(|| GraphSpec::ldbc(size).seed(7).build())
    }

    /// The weighted variant (for SSSP).
    pub fn weighted_graph(&mut self, size: LdbcSize) -> &CsrGraph {
        self.weighted
            .entry(size)
            .or_insert_with(|| GraphSpec::ldbc(size).seed(7).weighted().build())
    }

    /// Runs (or recalls) `kernel` under `mode` at the context scale with
    /// the paper's Table IV configuration.
    pub fn metrics(&mut self, kernel: &str, mode: PimMode) -> RunMetrics {
        let size = self.size;
        self.metrics_full(kernel, mode, size, 16, 10, false)
    }

    /// Figure 4 variant: baseline with atomics executed as plain
    /// read + write.
    pub fn metrics_plain_atomics(&mut self, kernel: &str) -> RunMetrics {
        let size = self.size;
        self.metrics_full(kernel, PimMode::Baseline, size, 16, 10, true)
    }

    /// Parameterized run: FU count and link-bandwidth tenths.
    pub fn metrics_at(
        &mut self,
        kernel: &str,
        mode: PimMode,
        size: LdbcSize,
        fus: usize,
        bw_tenths: u32,
    ) -> RunMetrics {
        self.metrics_full(kernel, mode, size, fus, bw_tenths, false)
    }

    fn metrics_full(
        &mut self,
        kernel: &str,
        mode: PimMode,
        size: LdbcSize,
        fus: usize,
        bw_tenths: u32,
        plain_atomics: bool,
    ) -> RunMetrics {
        let key = RunKey {
            kernel: kernel.to_string(),
            mode,
            size,
            fus,
            bw_tenths,
            plain_atomics,
        };
        if let Some(hit) = self.runs.get(&key) {
            return hit.clone();
        }
        let weighted = kernel == "SSSP";
        // Generate (and cache) the graph before timing the run.
        let graph = if weighted {
            self.weighted_graph(size).clone()
        } else {
            self.graph(size).clone()
        };
        let mut params = KernelParams::scaled_for(graph.vertex_count());
        params.root = pick_root(&graph);
        let mut k = by_name(kernel, params)
            .unwrap_or_else(|| panic!("unknown kernel {kernel}"));
        let mut config = SystemConfig::hpca(mode)
            .with_fus_per_vault(fus)
            .with_link_bandwidth_factor(bw_tenths as f64 / 10.0);
        if plain_atomics {
            config = config.with_atomics_as_plain();
        }
        if self.verbose {
            eprintln!("[run] {kernel} {mode} {size} fus={fus} bw={bw_tenths}");
        }
        let metrics = SystemSim::run_kernel(k.as_mut(), &graph, &config);
        self.runs.insert(key, metrics.clone());
        metrics
    }

    /// Speedup of `mode` over baseline for `kernel` at the default scale.
    pub fn speedup(&mut self, kernel: &str, mode: PimMode) -> f64 {
        let base = self.metrics(kernel, PimMode::Baseline).total_cycles;
        let m = self.metrics(kernel, mode).total_cycles;
        base / m.max(1e-9)
    }
}

impl std::fmt::Debug for Experiments {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiments")
            .field("size", &self.size)
            .field("cached_runs", &self.runs.len())
            .finish()
    }
}

/// The eight evaluation workloads, in Figure 7's x-axis order.
pub const EVAL_KERNELS: [&str; 8] = ["BFS", "CComp", "DC", "kCore", "SSSP", "TC", "BC", "PRank"];

/// Picks a high-degree root so traversals cover the giant component.
pub fn pick_root(graph: &CsrGraph) -> VertexId {
    (0..graph.vertex_count() as VertexId)
        .max_by_key(|&v| graph.out_degree(v))
        .unwrap_or(0)
}

/// Geometric mean helper used by "Average" columns.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut product = 1.0f64;
    let mut count = 0usize;
    for v in values {
        product *= v.max(1e-12);
        count += 1;
    }
    if count == 0 {
        1.0
    } else {
        product.powf(1.0 / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphpim_graph::GraphBuilder;

    #[test]
    fn pick_root_prefers_hub() {
        let g = GraphBuilder::new(4)
            .edge(1, 0)
            .edge(1, 2)
            .edge(1, 3)
            .edge(2, 3)
            .build();
        assert_eq!(pick_root(&g), 1);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
    }

    #[test]
    fn memoization_reuses_runs() {
        let mut ctx = Experiments::at_scale(LdbcSize::K1);
        let a = ctx.metrics("DC", PimMode::Baseline);
        let b = ctx.metrics("DC", PimMode::Baseline);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(ctx.runs.len(), 1);
    }
}
