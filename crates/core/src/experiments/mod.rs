//! Experiment drivers: one module per table/figure of the paper.
//!
//! All figures share one [`Experiments`] context, which memoizes
//! (kernel × configuration) simulation runs so that e.g. Figures 7, 9, 10
//! and 12 — different views of the same three-configuration sweep — cost
//! one simulation each.
//!
//! The context is thread-safe (`&self` everywhere): distinct runs can be
//! simulated concurrently while each individual simulation stays
//! single-threaded and deterministic, so results are bit-identical to a
//! serial sweep. Figure drivers expose their run set as
//! [`RunKey`]s via `keys()` and fan them out through
//! [`Experiments::prewarm`] before formatting output. Finished runs are
//! additionally persisted to a [disk cache](cache) shared across
//! processes.
//!
//! Environment knobs:
//!
//! * `GRAPHPIM_SCALE=1k|10k|100k|1m` — input scale (default `10k`;
//!   case-insensitive; the paper uses LDBC-1M; shapes are stable across
//!   scales — Figure 14 is the scale sweep itself).
//! * `GRAPHPIM_THREADS=<n>` — worker threads for `prewarm` and
//!   [`parallel_map`] (default: available parallelism).
//! * `GRAPHPIM_CACHE_DIR=<dir>` — persistent run-cache directory
//!   (default `<tmpdir>/graphpim-run-cache`).
//! * `GRAPHPIM_NO_CACHE=1` — disable the persistent run cache.
//! * `GRAPHPIM_VERBOSE=1` — log each simulation as it starts.
//! * `GRAPHPIM_TRACE_DIR=<dir>` — write one JSONL counter trace per
//!   freshly simulated run (see [`crate::telemetry`]). Disk-cache hits
//!   produce no trace; combine with `GRAPHPIM_NO_CACHE=1` to force
//!   traces for every run.
//! * `GRAPHPIM_PERFETTO_DIR=<dir>` — write one Chrome trace-event file
//!   (`<key stem>.trace.json`, see [`crate::perfetto`]) per freshly
//!   simulated run, openable in ui.perfetto.dev. Like
//!   `GRAPHPIM_TRACE_DIR`, disk-cache hits produce no trace.
//! * `GRAPHPIM_ATTRIB=1` — tag each fresh simulation with cycle
//!   attribution ledgers ([`graphpim_sim::attrib`]); results gain
//!   `attrib.*` counters while timing stays bit-identical.
//! * `GRAPHPIM_TRACE_STORE=<dir>` — instruction-trace store directory
//!   (default `<tmpdir>/graphpim-trace-store`; see [`crate::tracestore`]).
//! * `GRAPHPIM_NO_TRACE_STORE=1` — disable trace capture/replay; every
//!   run executes its kernel live.
//! * `GRAPHPIM_STREAM_REPLAY=1|0` — memory-lean streaming mode: captures
//!   stream straight to the store file, cached traces stay in encoded
//!   form (replayed frame by frame instead of from a flat decoded
//!   buffer), and live runs pipeline kernel execution against the timing
//!   models on a second thread. Unset: on at the `1m` scale, off below
//!   it. Results are bit-identical either way (pinned by tests), so this
//!   knob is deliberately *not* part of
//!   [`crate::fingerprint::RESULT_ENV_KNOBS`].
//! * `GRAPHPIM_VALIDATE=1|0` — per-run conservation invariants (see
//!   [`crate::validate`]). Unset: on in debug builds (so `cargo test`
//!   enforces them), off in release sweeps. Never affects results, only
//!   whether an inconsistent run panics — so it is deliberately *not*
//!   part of [`crate::fingerprint::RESULT_ENV_KNOBS`].

pub mod ablation;
pub mod backends;
pub mod cache;
pub mod fig01;
pub mod fig02;
pub mod fig04;
pub mod fig07;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod figjson;
pub mod hybrid;
pub mod profile;
pub mod tables;

pub use cache::DiskCache;
pub use profile::EngineProfile;

use crate::config::{PimMode, SystemConfig};
use crate::fingerprint::{fingerprint, result_env_fingerprint};
use crate::metrics::RunMetrics;
use crate::perfetto::PerfettoTrace;
use crate::system::{Instrumentation, SystemSim};
use crate::telemetry::TraceExporter;
use crate::tracestore::{TraceLookup, TraceStore, WorkloadKey};
use graphpim_graph::generate::{GraphSpec, LdbcSize};
use graphpim_graph::{CsrGraph, VertexId};
use graphpim_sim::trace::codec::{CodecError, DecodedTrace, TraceReader, CODEC_VERSION};
use graphpim_sim::trace::{TraceEvent, TraceOp};
use graphpim_sim::validate::ConfigError;
use graphpim_workloads::kernels::{by_name, Kernel, KernelParams};
use profile::{PrewarmRecord, RunSource};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Seed for all generated input graphs (part of the cache fingerprint).
const GRAPH_SEED: u64 = 7;

/// A captured workload trace, in the form replays will consume it.
///
/// The engine keeps each distinct workload's trace resident for the whole
/// sweep; the representation trades replay speed against memory:
///
/// * [`Decoded`](LoadedTrace::Decoded) — the flat op buffer. Fastest to
///   replay (no varint work per run) but several times the encoded size.
///   Default at the 1k–100k scales.
/// * [`Bytes`](LoadedTrace::Bytes) — the raw encoded stream, decoded
///   frame by frame on a producer thread during each replay (see
///   [`SystemSim::run_replayed_streaming`]). Default at the 1M scale,
///   where the decoded form of eight kernels' traces would dominate the
///   process footprint.
///
/// Both replay paths are bit-identical on the same bytes.
#[derive(Debug)]
enum LoadedTrace {
    /// Flat decoded op buffer (fast replay, larger resident set).
    Decoded(DecodedTrace),
    /// Encoded bytes for streaming replay (memory-lean).
    Bytes(Vec<u8>),
}

/// A memoization key for one simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Kernel name as accepted by `graphpim_workloads::kernels::by_name`.
    pub kernel: String,
    /// PIM offloading policy.
    pub mode: PimMode,
    /// Input graph scale.
    pub size: LdbcSize,
    /// Atomic FUs per vault (paper default 16).
    pub fus: usize,
    /// Link bandwidth factor in tenths (5 = half, 10 = paper, 20 = double).
    pub bw_tenths: u32,
    /// Figure 4 variant: atomics replaced by plain read + write.
    pub plain_atomics: bool,
}

impl RunKey {
    /// A key with the paper's Table IV defaults (16 FUs, nominal link
    /// bandwidth, real atomics).
    pub fn new(kernel: &str, mode: PimMode, size: LdbcSize) -> RunKey {
        RunKey {
            kernel: kernel.to_string(),
            mode,
            size,
            fus: 16,
            bw_tenths: 10,
            plain_atomics: false,
        }
    }

    /// Same key with a different FU count.
    pub fn with_fus(mut self, fus: usize) -> RunKey {
        self.fus = fus;
        self
    }

    /// Same key with a different link-bandwidth factor (in tenths).
    pub fn with_bw_tenths(mut self, bw_tenths: u32) -> RunKey {
        self.bw_tenths = bw_tenths;
        self
    }

    /// Same key with atomics lowered to plain read + write.
    pub fn with_plain_atomics(mut self) -> RunKey {
        self.plain_atomics = true;
        self
    }

    /// Filesystem-safe stem used for disk-cache entries.
    pub fn file_stem(&self) -> String {
        format!(
            "{}-{}-{}-fus{}-bw{}{}",
            self.kernel,
            self.mode.label().replace('/', "_"),
            self.size.name(),
            self.fus,
            self.bw_tenths,
            if self.plain_atomics { "-plain" } else { "" }
        )
    }

    /// Parses a [`file_stem`](Self::file_stem) back into a key — the
    /// exact inverse mapping, used when runs are addressed by string
    /// (e.g. `GET /counters/{run-key}` on the experiment service).
    ///
    /// Returns `None` on any malformed stem. The kernel name is only
    /// checked for non-emptiness here; use
    /// [`Experiments::validate_key`] to reject unknown kernels and
    /// invalid configurations with a typed error.
    pub fn parse_stem(stem: &str) -> Option<RunKey> {
        let (rest, plain_atomics) = match stem.strip_suffix("-plain") {
            Some(rest) => (rest, true),
            None => (stem, false),
        };
        let (rest, bw) = rest.rsplit_once("-bw")?;
        let bw_tenths: u32 = bw.parse().ok()?;
        let (rest, fus) = rest.rsplit_once("-fus")?;
        let fus: usize = fus.parse().ok()?;
        let (rest, size) = LdbcSize::ALL.into_iter().find_map(|s| {
            rest.strip_suffix(s.name())?
                .strip_suffix('-')
                .map(|r| (r, s))
        })?;
        let (kernel, mode) = PimMode::ALL.into_iter().find_map(|m| {
            let label = m.label().replace('/', "_");
            rest.strip_suffix(label.as_str())?
                .strip_suffix('-')
                .map(|k| (k, m))
        })?;
        if kernel.is_empty() {
            return None;
        }
        Some(RunKey {
            kernel: kernel.to_string(),
            mode,
            size,
            fus,
            bw_tenths,
            plain_atomics,
        })
    }
}

/// Why a [`RunKey`] cannot be executed (see [`Experiments::validate_key`]).
#[derive(Debug, Clone, PartialEq)]
pub enum KeyError {
    /// No kernel is registered under this name.
    UnknownKernel(String),
    /// The key resolves to an invalid system configuration.
    Config(ConfigError),
}

impl KeyError {
    /// Stable snake-case id for structured error reporting (mirrors
    /// [`ConfigError::id`] for the configuration variants).
    pub fn id(&self) -> &'static str {
        match self {
            KeyError::UnknownKernel(_) => "unknown_kernel",
            KeyError::Config(e) => e.id(),
        }
    }
}

impl std::fmt::Display for KeyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyError::UnknownKernel(name) => write!(f, "unknown kernel {name:?}"),
            KeyError::Config(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl std::error::Error for KeyError {}

/// Why a trace-slice read failed (see [`Experiments::trace_slice_json`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceSliceError {
    /// The instruction-trace store is disabled in this context.
    StoreDisabled,
    /// No trace has been captured for this workload yet.
    NotCaptured,
    /// The stored entry failed codec validation.
    Corrupt,
    /// The requested superstep range is empty.
    EmptyRange,
}

impl std::fmt::Display for TraceSliceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TraceSliceError::StoreDisabled => "the instruction-trace store is disabled",
            TraceSliceError::NotCaptured => "no trace captured for this workload",
            TraceSliceError::Corrupt => "the stored trace entry failed codec validation",
            TraceSliceError::EmptyRange => "the requested superstep range is empty",
        };
        f.write_str(s)
    }
}

impl std::error::Error for TraceSliceError {}

/// A memoization table whose per-entry [`OnceLock`] cells let same-key
/// callers block on one computation while distinct keys proceed in
/// parallel.
type OnceMap<K, V> = Mutex<HashMap<K, Arc<OnceLock<V>>>>;

/// Shared context: input graphs and memoized runs.
///
/// Thread-safe: the run and graph tables use per-entry [`OnceLock`]s
/// behind short-lived mutexes, so two threads asking for the same run
/// block on that one cell (exactly one simulation happens) while runs
/// for different keys proceed in parallel.
pub struct Experiments {
    size: LdbcSize,
    /// (size, weighted) → lazily generated graph.
    graphs: OnceMap<(LdbcSize, bool), Arc<CsrGraph>>,
    runs: OnceMap<RunKey, RunMetrics>,
    disk: Option<DiskCache>,
    verbose: bool,
    simulated: AtomicUsize,
    disk_hits: AtomicUsize,
    /// Snapshot of [`crate::fingerprint::RESULT_ENV_KNOBS`], folded into
    /// every store fingerprint.
    env_fingerprint: String,
    /// Where freshly simulated runs write JSONL counter traces.
    trace_dir: Option<PathBuf>,
    /// Where freshly simulated runs write Chrome trace-event spans.
    perfetto_dir: Option<PathBuf>,
    /// Whether runs tag cycles with [`graphpim_sim::attrib`] ledgers
    /// (`attrib.*` counters). Observation-only, like tracing.
    attribution: bool,
    /// Instruction-trace store (`None` = capture/replay disabled; every
    /// run executes its kernel live).
    trace_store: Option<TraceStore>,
    /// Workload → captured-and-loaded trace (or the codec error, cached
    /// so every sweep point degrades identically). Captured at most once
    /// per distinct workload no matter how many sweep points replay it;
    /// the loaded form ([`LoadedTrace`]) depends on the streaming mode.
    traces: OnceMap<WorkloadKey, Arc<Result<LoadedTrace, CodecError>>>,
    /// Forced streaming mode (`Some`), or per-size default (`None`): see
    /// [`Experiments::stream_replay_for`].
    stream_replay: Option<bool>,
    profile: Mutex<EngineProfile>,
}

impl Experiments {
    /// Context at the scale selected by `GRAPHPIM_SCALE` (default 10k).
    ///
    /// Panics on an unrecognized value — a typo'd scale silently falling
    /// back to 10k produces figures at the wrong scale with no warning.
    pub fn from_env() -> Self {
        let size = match std::env::var("GRAPHPIM_SCALE") {
            Err(std::env::VarError::NotPresent) => LdbcSize::K10,
            Err(e) => panic!("GRAPHPIM_SCALE is not valid unicode: {e}"),
            Ok(v) => parse_scale(&v).unwrap_or_else(|err| panic!("{err}")),
        };
        Experiments::at_scale(size)
    }

    /// Context at an explicit scale, with the disk cache selected by the
    /// environment (`GRAPHPIM_CACHE_DIR` / `GRAPHPIM_NO_CACHE`).
    pub fn at_scale(size: LdbcSize) -> Self {
        Experiments::with_cache(size, DiskCache::from_env())
    }

    /// Context at an explicit scale with an explicit disk cache
    /// (`None` = in-memory memoization only). Tracing is taken from
    /// `GRAPHPIM_TRACE_DIR` (off when unset); the instruction-trace
    /// store from `GRAPHPIM_TRACE_STORE` / `GRAPHPIM_NO_TRACE_STORE`
    /// (on by default).
    pub fn with_cache(size: LdbcSize, disk: Option<DiskCache>) -> Self {
        Experiments {
            size,
            graphs: Mutex::new(HashMap::new()),
            runs: Mutex::new(HashMap::new()),
            disk,
            verbose: std::env::var("GRAPHPIM_VERBOSE").is_ok(),
            simulated: AtomicUsize::new(0),
            disk_hits: AtomicUsize::new(0),
            env_fingerprint: result_env_fingerprint(),
            trace_dir: std::env::var_os("GRAPHPIM_TRACE_DIR").map(PathBuf::from),
            perfetto_dir: std::env::var_os("GRAPHPIM_PERFETTO_DIR").map(PathBuf::from),
            attribution: std::env::var_os("GRAPHPIM_ATTRIB").is_some(),
            trace_store: TraceStore::from_env(),
            traces: Mutex::new(HashMap::new()),
            stream_replay: stream_replay_from_env(),
            profile: Mutex::new(EngineProfile::default()),
        }
    }

    /// Same context with the memory-lean streaming mode forced on or off
    /// (overrides `GRAPHPIM_STREAM_REPLAY` and the per-size default).
    /// Results are bit-identical either way; only peak memory and the
    /// live/replay execution shape change.
    pub fn with_stream_replay(mut self, enabled: bool) -> Self {
        self.stream_replay = Some(enabled);
        self
    }

    /// Whether runs at `size` use the memory-lean streaming mode:
    /// streaming capture, encoded-bytes trace residency with frame-by-
    /// frame replay, and pipelined live runs. Forced value if set, else
    /// on exactly at the 1M scale — the scale where the decoded trace
    /// buffers stop fitting comfortably.
    pub fn stream_replay_for(&self, size: LdbcSize) -> bool {
        self.stream_replay.unwrap_or(size == LdbcSize::M1)
    }

    /// Same context with an explicit instruction-trace store (`None`
    /// disables capture/replay). Overrides the environment selection.
    pub fn with_trace_store(mut self, store: Option<TraceStore>) -> Self {
        self.trace_store = store;
        self
    }

    /// The instruction-trace store, if capture/replay is enabled.
    pub fn trace_store(&self) -> Option<&TraceStore> {
        self.trace_store.as_ref()
    }

    /// Same context with an explicit trace directory: every freshly
    /// simulated run writes `<dir>/<key stem>.jsonl`. Tracing is
    /// observation-only — metrics are bit-identical with it on or off.
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// The trace directory, if tracing is enabled.
    pub fn trace_dir(&self) -> Option<&std::path::Path> {
        self.trace_dir.as_deref()
    }

    /// Same context with an explicit Perfetto directory: every freshly
    /// simulated run writes `<dir>/<key stem>.trace.json` (see
    /// [`crate::perfetto`]). Observation-only, like [`Self::with_trace_dir`].
    pub fn with_perfetto_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.perfetto_dir = Some(dir.into());
        self
    }

    /// The Perfetto trace directory, if span export is enabled.
    pub fn perfetto_dir(&self) -> Option<&std::path::Path> {
        self.perfetto_dir.as_deref()
    }

    /// Same context with cycle attribution forced on or off (overrides
    /// `GRAPHPIM_ATTRIB`). When on, each fresh simulation carries
    /// [`graphpim_sim::attrib`] ledgers and reports `attrib.*` counters;
    /// timing stays bit-identical either way.
    pub fn with_attribution(mut self, enabled: bool) -> Self {
        self.attribution = enabled;
        self
    }

    /// Whether cycle attribution is enabled for fresh simulations.
    pub fn attribution(&self) -> bool {
        self.attribution
    }

    /// A snapshot of the engine profile accumulated so far (per-run wall
    /// times, disk-cache outcomes, prewarm pool utilization).
    pub fn profile(&self) -> EngineProfile {
        self.profile.lock().unwrap().clone()
    }

    /// The context's default input size.
    pub fn size(&self) -> LdbcSize {
        self.size
    }

    /// The (unweighted) LDBC-like graph at `size`, generated once.
    pub fn graph(&self, size: LdbcSize) -> Arc<CsrGraph> {
        self.graph_inner(size, false)
    }

    /// The weighted variant (for SSSP).
    pub fn weighted_graph(&self, size: LdbcSize) -> Arc<CsrGraph> {
        self.graph_inner(size, true)
    }

    fn graph_inner(&self, size: LdbcSize, weighted: bool) -> Arc<CsrGraph> {
        let cell = {
            let mut graphs = self.graphs.lock().unwrap();
            Arc::clone(graphs.entry((size, weighted)).or_default())
        };
        Arc::clone(cell.get_or_init(|| {
            let spec = GraphSpec::ldbc(size).seed(GRAPH_SEED);
            let spec = if weighted { spec.weighted() } else { spec };
            Arc::new(spec.build())
        }))
    }

    /// Runs (or recalls) `kernel` under `mode` at the context scale with
    /// the paper's Table IV configuration.
    pub fn metrics(&self, kernel: &str, mode: PimMode) -> RunMetrics {
        self.metrics_for(&RunKey::new(kernel, mode, self.size))
    }

    /// Figure 4 variant: baseline with atomics executed as plain
    /// read + write.
    pub fn metrics_plain_atomics(&self, kernel: &str) -> RunMetrics {
        self.metrics_for(&RunKey::new(kernel, PimMode::Baseline, self.size).with_plain_atomics())
    }

    /// Parameterized run: FU count and link-bandwidth tenths.
    pub fn metrics_at(
        &self,
        kernel: &str,
        mode: PimMode,
        size: LdbcSize,
        fus: usize,
        bw_tenths: u32,
    ) -> RunMetrics {
        self.metrics_for(
            &RunKey::new(kernel, mode, size)
                .with_fus(fus)
                .with_bw_tenths(bw_tenths),
        )
    }

    /// Runs (or recalls) the simulation identified by `key`.
    ///
    /// Exactly one simulation happens per distinct key, no matter how
    /// many threads ask concurrently; later callers block until the
    /// first finishes and then share its result.
    pub fn metrics_for(&self, key: &RunKey) -> RunMetrics {
        let cell = {
            let mut runs = self.runs.lock().unwrap();
            match runs.get(key) {
                Some(cell) => Arc::clone(cell),
                None => {
                    let cell = Arc::new(OnceLock::new());
                    runs.insert(key.clone(), Arc::clone(&cell));
                    cell
                }
            }
        };
        cell.get_or_init(|| self.compute(key)).clone()
    }

    /// Simulates every distinct key across a worker pool, so later
    /// `metrics*` calls are cache hits. Results are identical to running
    /// the keys serially: each simulation is single-threaded and
    /// deterministic; only the sweep is parallel.
    pub fn prewarm<I>(&self, keys: I)
    where
        I: IntoIterator<Item = RunKey>,
    {
        let mut seen = HashSet::new();
        let work: Vec<RunKey> = keys
            .into_iter()
            .filter(|key| seen.insert(key.clone()))
            .collect();
        if work.is_empty() {
            return;
        }
        let threads = worker_threads().min(work.len());
        let busy_ns = AtomicU64::new(0);
        let wall = Instant::now();
        parallel_map(&work, |key| {
            let start = Instant::now();
            self.metrics_for(key);
            busy_ns.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        });
        self.profile.lock().unwrap().record_prewarm(PrewarmRecord {
            keys: work.len(),
            threads,
            wall_seconds: wall.elapsed().as_secs_f64(),
            busy_seconds: busy_ns.load(Ordering::Relaxed) as f64 * 1e-9,
        });
    }

    fn compute(&self, key: &RunKey) -> RunMetrics {
        let start = Instant::now();
        let fingerprint = self.fingerprint(key);
        if let Some(disk) = &self.disk {
            match disk.lookup(key, fingerprint) {
                cache::Lookup::Hit(hit) => {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    if self.verbose {
                        crate::obs::info("engine", "disk hit", &[("key", &key.file_stem())]);
                    }
                    let mut profile = self.profile.lock().unwrap();
                    profile.note_disk_hit();
                    profile.record_run(
                        key.file_stem(),
                        start.elapsed().as_secs_f64(),
                        RunSource::DiskHit,
                    );
                    return *hit;
                }
                cache::Lookup::Stale => self.profile.lock().unwrap().note_disk_stale(),
                cache::Lookup::Miss => self.profile.lock().unwrap().note_disk_miss(),
            }
        }
        let graph = if key.kernel == "SSSP" {
            self.weighted_graph(key.size)
        } else {
            self.graph(key.size)
        };
        if self.verbose {
            crate::obs::info(
                "engine",
                "run",
                &[
                    ("kernel", &key.kernel),
                    ("mode", &key.mode),
                    ("size", &key.size),
                    ("fus", &key.fus),
                    ("bw_tenths", &key.bw_tenths),
                ],
            );
        }
        let config = self.config_for(key);
        let make_instrumentation = || Instrumentation {
            trace: self.trace_dir.as_ref().and_then(|dir| {
                let path = dir.join(format!("{}.jsonl", key.file_stem()));
                match TraceExporter::create(&path) {
                    Ok(exporter) => Some(exporter),
                    Err(e) => {
                        crate::obs::warn(
                            "trace",
                            "cannot create trace exporter",
                            &[("path", &path.display()), ("error", &e)],
                        );
                        None
                    }
                }
            }),
            perfetto: self.perfetto_dir.as_ref().map(|dir| {
                let mut perfetto =
                    PerfettoTrace::create(dir.join(format!("{}.trace.json", key.file_stem())));
                // A serve worker resolving a job has pushed its trace ID
                // (and measured queue wait) as thread context; attach them
                // so the exported trace carries the request's identity.
                if let Some(trace_id) = crate::obs::context_value("trace") {
                    let queue_wait = crate::obs::context_value("queue_wait_us")
                        .and_then(|v| v.parse::<f64>().ok());
                    perfetto.set_job_context(&trace_id, queue_wait);
                }
                perfetto
            }),
            attribution: self.attribution,
        };
        let live = || {
            let mut k = self.build_kernel(key, &graph);
            if self.stream_replay_for(key.size) {
                // Pipelined: the kernel runs on a producer thread while
                // this thread clocks the timing models. Bit-identical to
                // the sequential path (pinned by tests).
                SystemSim::run_kernel_pipelined_instrumented(
                    k.as_mut(),
                    &graph,
                    &config,
                    make_instrumentation(),
                )
            } else {
                SystemSim::run_kernel_instrumented(
                    k.as_mut(),
                    &graph,
                    &config,
                    make_instrumentation(),
                )
            }
        };
        let replay_fallback = |e: &dyn std::fmt::Display| {
            // Should be unreachable — entries are checksum-validated at
            // load — but a decode failure must degrade to a correct live
            // run, never a panic.
            crate::obs::warn(
                "tracestore",
                "replay failed; running live",
                &[("key", &key.file_stem()), ("error", e)],
            );
            self.profile.lock().unwrap().note_replay_fallback();
        };
        let (metrics, source) = match self.workload_trace(key, &graph) {
            Some(trace) => match trace.as_ref() {
                Ok(LoadedTrace::Decoded(decoded)) => {
                    let m = SystemSim::run_decoded_instrumented(
                        decoded,
                        &config,
                        make_instrumentation(),
                    );
                    self.profile.lock().unwrap().note_replay();
                    (m, RunSource::Replayed)
                }
                Ok(LoadedTrace::Bytes(bytes)) => {
                    match SystemSim::run_replayed_streaming_instrumented(
                        bytes,
                        &config,
                        make_instrumentation(),
                    ) {
                        Ok(m) => {
                            self.profile.lock().unwrap().note_replay();
                            (m, RunSource::Replayed)
                        }
                        Err(e) => {
                            replay_fallback(&e);
                            (live(), RunSource::Simulated)
                        }
                    }
                }
                Err(e) => {
                    replay_fallback(e);
                    (live(), RunSource::Simulated)
                }
            },
            None => (live(), RunSource::Simulated),
        };
        self.simulated.fetch_add(1, Ordering::Relaxed);
        if let Some(disk) = &self.disk {
            disk.store(key, fingerprint, &metrics);
        }
        let mut profile = self.profile.lock().unwrap();
        if metrics.trace_export_failed {
            // The write-time warning already named the exact file; repeat
            // the run so sweep logs connect the warning to a figure row.
            crate::obs::warn(
                "trace",
                "export failed for run (see preceding error)",
                &[("key", &key.file_stem())],
            );
            profile.note_trace_export_failure();
        }
        profile.record_run(key.file_stem(), start.elapsed().as_secs_f64(), source);
        drop(profile);
        metrics
    }

    /// A fresh kernel instance for `key`, parameterized exactly as every
    /// run (live or capture) of this workload must be.
    fn build_kernel(&self, key: &RunKey, graph: &CsrGraph) -> Box<dyn Kernel> {
        let mut params = KernelParams::scaled_for(graph.vertex_count());
        params.root = pick_root(graph);
        by_name(&key.kernel, params).unwrap_or_else(|| panic!("unknown kernel {}", key.kernel))
    }

    /// The captured instruction trace for `key`'s workload, loaded and
    /// ready to replay, or `None` when the trace store is disabled.
    ///
    /// Capture-once, load-once semantics: the first caller for a
    /// distinct `(kernel, graph, threads)` workload either loads the
    /// trace from the store or performs the single functional kernel
    /// execution and persists it (streaming straight to the store file
    /// in streaming mode), then loads the bytes into the replay form for
    /// the context's streaming mode; all concurrent and later callers
    /// (any mode, FU count, or bandwidth) share the loaded trace. A
    /// codec error is cached too — `compute` turns it into a live-run
    /// fallback.
    fn workload_trace(
        &self,
        key: &RunKey,
        graph: &Arc<CsrGraph>,
    ) -> Option<Arc<Result<LoadedTrace, CodecError>>> {
        let store = self.trace_store.as_ref()?;
        let threads = self.config_for(key).sim.core.cores;
        let streaming = self.stream_replay_for(key.size);
        let wkey = WorkloadKey {
            kernel: key.kernel.clone(),
            graph: format!("ldbc-{}", key.size.name()),
            threads,
        };
        let cell = {
            let mut traces = self.traces.lock().unwrap();
            Arc::clone(traces.entry(wkey.clone()).or_default())
        };
        Some(Arc::clone(cell.get_or_init(|| {
            let fp = self.trace_fingerprint(key, threads);
            let bytes = match store.lookup(&wkey, fp) {
                TraceLookup::Hit(bytes) => {
                    if self.verbose {
                        crate::obs::info(
                            "tracestore",
                            "store hit",
                            &[("workload", &wkey.file_stem())],
                        );
                    }
                    self.profile.lock().unwrap().note_trace_disk_hit();
                    bytes
                }
                found => {
                    {
                        let mut profile = self.profile.lock().unwrap();
                        match found {
                            TraceLookup::Corrupt => profile.note_trace_corrupt(),
                            _ => profile.note_trace_disk_miss(),
                        }
                    }
                    if self.verbose {
                        crate::obs::info(
                            "tracestore",
                            "capture",
                            &[("workload", &wkey.file_stem())],
                        );
                    }
                    let start = Instant::now();
                    let bytes = if streaming {
                        store.capture_streaming(&wkey, fp, graph, threads, &mut || {
                            self.build_kernel(key, graph)
                        })
                    } else {
                        let mut k = self.build_kernel(key, graph);
                        let bytes = crate::tracestore::capture_kernel(k.as_mut(), graph, threads);
                        store.store(&wkey, fp, &bytes);
                        bytes
                    };
                    self.profile
                        .lock()
                        .unwrap()
                        .note_trace_capture(start.elapsed().as_secs_f64());
                    bytes
                }
            };
            Arc::new(if streaming {
                // Keep the encoded bytes resident; validate the framing
                // up front so a bad entry degrades exactly like a decode
                // error on the buffered path.
                match TraceReader::new(&bytes) {
                    Ok(_) => Ok(LoadedTrace::Bytes(bytes)),
                    Err(e) => Err(e),
                }
            } else {
                // The raw bytes are dropped here; replays only ever
                // touch the decoded form.
                DecodedTrace::decode(&bytes).map(LoadedTrace::Decoded)
            })
        })))
    }

    /// Trace-store fingerprint: everything that determines the
    /// instruction trace — codec and crate versions, kernel, the full
    /// input-graph recipe, thread count, and the result-affecting env
    /// knobs. Deliberately excludes the timing configuration: that is
    /// what makes one capture serve every sweep point.
    fn trace_fingerprint(&self, key: &RunKey, threads: usize) -> u64 {
        fingerprint(&[
            &format!("codec-v{CODEC_VERSION}"),
            env!("CARGO_PKG_VERSION"),
            &key.kernel,
            &format!(
                "ldbc:{}:seed{}:weighted={}",
                key.size.name(),
                GRAPH_SEED,
                key.kernel == "SSSP"
            ),
            &threads.to_string(),
            &self.env_fingerprint,
        ])
    }

    /// Flat JSON document of the `tracestore.*` telemetry counters
    /// (written by the figure binaries under `GRAPHPIM_STORE_STATS_JSON`).
    pub fn store_stats_json(&self) -> String {
        let reg = self.profile.lock().unwrap().tracestore_counters();
        let mut s = String::from("{\n");
        let entries: Vec<String> = reg
            .iter()
            .map(|(k, v)| format!("  \"{k}\": {v:?}"))
            .collect();
        s.push_str(&entries.join(",\n"));
        s.push_str("\n}\n");
        s
    }

    /// The full system configuration a key resolves to.
    ///
    /// # Panics
    ///
    /// Panics when the resolved configuration is invalid (e.g. a sweep
    /// key with zero FUs): figure drivers must fail loudly before
    /// simulating, caching, or fingerprinting a broken config.
    fn config_for(&self, key: &RunKey) -> SystemConfig {
        let config = self.raw_config_for(key);
        if let Err(e) = config.validate() {
            panic!("run key {key:?} resolves to an invalid configuration: {e}");
        }
        config
    }

    /// Builds the configuration `key` resolves to without validating it.
    fn raw_config_for(&self, key: &RunKey) -> SystemConfig {
        let mut config = SystemConfig::hpca(key.mode)
            .with_fus_per_vault(key.fus)
            .with_link_bandwidth_factor(key.bw_tenths as f64 / 10.0);
        if key.plain_atomics {
            config = config.with_atomics_as_plain();
        }
        config
    }

    /// Non-panicking counterpart of the engine's key resolution: checks
    /// that the kernel exists and that the resolved configuration
    /// validates, for callers that surface errors instead of aborting
    /// (the experiment service turns these into structured 400
    /// responses).
    pub fn validate_key(&self, key: &RunKey) -> Result<(), KeyError> {
        if by_name(&key.kernel, KernelParams::default()).is_none() {
            return Err(KeyError::UnknownKernel(key.kernel.clone()));
        }
        self.raw_config_for(key)
            .validate()
            .map_err(KeyError::Config)
    }

    /// The metrics for `key` if they are already available without
    /// simulating — memoized in this context or present in the disk
    /// cache — else `None`.
    ///
    /// Side-effect-free: no simulation starts, the memo table is not
    /// populated, and nothing is recorded in the engine profile (a later
    /// [`metrics_for`](Self::metrics_for) accounts the run normally).
    /// The experiment service uses this to decide whether a figure can
    /// be served inline and to cost only the uncached part of a sweep.
    pub fn cached_metrics(&self, key: &RunKey) -> Option<RunMetrics> {
        {
            let runs = self.runs.lock().unwrap();
            if let Some(m) = runs.get(key).and_then(|cell| cell.get()) {
                return Some(m.clone());
            }
        }
        // Fingerprinting resolves the full configuration, which panics on
        // an invalid key — an invalid key can never have been cached.
        if self.raw_config_for(key).validate().is_err() {
            return None;
        }
        let disk = self.disk.as_ref()?;
        match disk.lookup(key, self.fingerprint(key)) {
            cache::Lookup::Hit(hit) => Some(*hit),
            cache::Lookup::Stale | cache::Lookup::Miss => None,
        }
    }

    /// Summarizes supersteps `range.0 .. range.1` (half-open; `None` end
    /// = to the end of the trace) of the stored GPTR instruction trace
    /// for `kernel` at `size`, as one JSON document. Serves
    /// `GET /traces/{workload}` on the experiment service.
    ///
    /// Decoding stops at the end of the requested range, so early slices
    /// of a long trace stay cheap. The slice is read straight from the
    /// store entry — no simulation, no capture; ask for a run first (or
    /// POST a sweep) if the workload has never been captured.
    pub fn trace_slice_json(
        &self,
        kernel: &str,
        size: LdbcSize,
        range: (usize, Option<usize>),
    ) -> Result<String, TraceSliceError> {
        let (lo, hi) = range;
        if hi.is_some_and(|h| h <= lo) {
            return Err(TraceSliceError::EmptyRange);
        }
        let store = self
            .trace_store
            .as_ref()
            .ok_or(TraceSliceError::StoreDisabled)?;
        let key = RunKey::new(kernel, PimMode::Baseline, size);
        let threads = self.raw_config_for(&key).sim.core.cores;
        let wkey = WorkloadKey {
            kernel: kernel.to_string(),
            graph: format!("ldbc-{}", size.name()),
            threads,
        };
        let bytes = match store.lookup(&wkey, self.trace_fingerprint(&key, threads)) {
            TraceLookup::Hit(bytes) => bytes,
            TraceLookup::Corrupt => return Err(TraceSliceError::Corrupt),
            TraceLookup::Miss => return Err(TraceSliceError::NotCaptured),
        };
        let mut reader = TraceReader::new(&bytes).map_err(|_| TraceSliceError::Corrupt)?;

        #[derive(Default)]
        struct Acc {
            instructions: u64,
            loads: u64,
            stores: u64,
            atomics: u64,
            branches: u64,
            ops_per_thread: Vec<u64>,
        }
        let fresh = || Acc {
            ops_per_thread: vec![0u64; threads],
            ..Acc::default()
        };
        // Superstep `i` is the chunk span before the i-th barrier; ops
        // after the final barrier (if any) form one trailing superstep.
        let mut slices: Vec<(usize, Acc)> = Vec::new();
        let mut current = fresh();
        let mut dirty = false;
        let mut index = 0usize;
        let mut exhausted = true;
        loop {
            if hi.is_some_and(|h| index >= h) {
                exhausted = false;
                break;
            }
            match reader.next_event().map_err(|_| TraceSliceError::Corrupt)? {
                None => break,
                Some(TraceEvent::Barrier) => {
                    if index >= lo {
                        slices.push((index, std::mem::replace(&mut current, fresh())));
                    }
                    dirty = false;
                    index += 1;
                }
                Some(TraceEvent::Chunk(step)) => {
                    dirty = true;
                    if index >= lo {
                        for (t, ops) in step.threads.iter().enumerate() {
                            for op in ops {
                                current.instructions += op.instruction_count();
                                current.ops_per_thread[t] += 1;
                                match op {
                                    TraceOp::Load { .. } => current.loads += 1,
                                    TraceOp::Store { .. } => current.stores += 1,
                                    TraceOp::Atomic { .. } => current.atomics += 1,
                                    TraceOp::Branch { .. } => current.branches += 1,
                                    TraceOp::Compute(_) => {}
                                }
                            }
                        }
                    }
                }
            }
        }
        if exhausted && dirty && index >= lo {
            slices.push((index, current));
        }

        let mut s = String::with_capacity(256 + slices.len() * 128);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"workload\": \"{}\",", wkey.file_stem());
        let _ = writeln!(s, "  \"kernel\": \"{kernel}\",");
        let _ = writeln!(s, "  \"graph\": \"{}\",", wkey.graph);
        let _ = writeln!(s, "  \"threads\": {threads},");
        let _ = writeln!(s, "  \"start\": {lo},");
        let _ = writeln!(s, "  \"exhausted\": {exhausted},");
        s.push_str("  \"supersteps\": [");
        for (i, (index, acc)) in slices.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            let per_thread: Vec<String> = acc.ops_per_thread.iter().map(u64::to_string).collect();
            let _ = write!(
                s,
                "{{\"superstep\": {index}, \"instructions\": {}, \"memory_ops\": {}, \
                 \"loads\": {}, \"stores\": {}, \"atomics\": {}, \"branches\": {}, \
                 \"ops_per_thread\": [{}]}}",
                acc.instructions,
                acc.loads + acc.stores + acc.atomics,
                acc.loads,
                acc.stores,
                acc.atomics,
                acc.branches,
                per_thread.join(", "),
            );
        }
        if !slices.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}");
        Ok(s)
    }

    /// Cache fingerprint: covers everything that can change the result of
    /// a run without changing its [`RunKey`] — schema and crate versions,
    /// the fully resolved system configuration, the input-graph recipe,
    /// and the [`RESULT_ENV_KNOBS`] snapshot.
    fn fingerprint(&self, key: &RunKey) -> u64 {
        cache::fingerprint(&[
            &cache::SCHEMA_VERSION.to_string(),
            env!("CARGO_PKG_VERSION"),
            &format!("{:?}", self.config_for(key)),
            &format!(
                "ldbc:{}:seed{}:weighted={}",
                key.size.name(),
                GRAPH_SEED,
                key.kernel == "SSSP"
            ),
            &self.env_fingerprint,
        ])
    }

    /// Speedup of `mode` over baseline for `kernel` at the default scale.
    pub fn speedup(&self, kernel: &str, mode: PimMode) -> f64 {
        let base = self.metrics(kernel, PimMode::Baseline).total_cycles;
        let m = self.metrics(kernel, mode).total_cycles;
        assert!(
            base > 0.0 && m > 0.0,
            "zero-cycle run in speedup({kernel}, {mode}): base={base}, {mode}={m}"
        );
        base / m
    }

    /// Number of simulations actually executed by this context (disk-cache
    /// hits and memoized recalls excluded).
    pub fn simulations_executed(&self) -> usize {
        self.simulated.load(Ordering::Relaxed)
    }

    /// Number of runs satisfied from the persistent disk cache.
    pub fn disk_cache_hits(&self) -> usize {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Number of distinct runs resident in the in-memory table.
    pub fn cached_runs(&self) -> usize {
        self.runs.lock().unwrap().len()
    }
}

impl std::fmt::Debug for Experiments {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiments")
            .field("size", &self.size)
            .field("cached_runs", &self.cached_runs())
            .field("simulated", &self.simulations_executed())
            .field("disk_hits", &self.disk_cache_hits())
            .finish()
    }
}

/// Parses `GRAPHPIM_STREAM_REPLAY` (`1`/`0`; unset → per-size default).
///
/// A garbage value warns and falls back to the default instead of
/// aborting: the knob never affects results, only the memory and
/// execution shape, so a typo is not worth killing a sweep over.
fn stream_replay_from_env() -> Option<bool> {
    match std::env::var("GRAPHPIM_STREAM_REPLAY") {
        Ok(v) => match v.trim() {
            "1" => Some(true),
            "0" => Some(false),
            other => {
                crate::obs::warn(
                    "engine",
                    "unrecognized GRAPHPIM_STREAM_REPLAY value (expected 1 or 0); \
                     using the per-size default",
                    &[("value", &format!("{other:?}"))],
                );
                None
            }
        },
        Err(_) => None,
    }
}

/// Parses a `GRAPHPIM_SCALE` value (case-insensitive).
pub fn parse_scale(value: &str) -> Result<LdbcSize, String> {
    match value.trim().to_ascii_lowercase().as_str() {
        "1k" => Ok(LdbcSize::K1),
        "10k" => Ok(LdbcSize::K10),
        "100k" => Ok(LdbcSize::K100),
        "1m" => Ok(LdbcSize::M1),
        other => Err(format!(
            "unrecognized GRAPHPIM_SCALE value {other:?}; valid values: 1k, 10k, 100k, 1m \
             (case-insensitive)"
        )),
    }
}

/// Worker-thread count for [`Experiments::prewarm`] and [`parallel_map`]:
/// `GRAPHPIM_THREADS` if set, else available parallelism.
///
/// A garbage value warns and falls back instead of aborting: the thread
/// count only affects wall time, never results, so a typo is not worth
/// killing an `all_figures` sweep over (unlike `GRAPHPIM_SCALE`, where a
/// silent fallback would produce figures at the wrong scale).
pub fn worker_threads() -> usize {
    let fallback = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    match std::env::var("GRAPHPIM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                crate::obs::warn_once(
                    "engine.threads-env",
                    "engine",
                    "unrecognized GRAPHPIM_THREADS value (expected a positive integer); \
                     using available parallelism",
                    &[("value", &format!("{v:?}"))],
                );
                fallback()
            }
        },
        Err(_) => fallback(),
    }
}

/// Applies `f` to every item across a scoped worker pool and returns the
/// results in input order. Used by drivers whose runs do not go through
/// the [`Experiments`] table (ablation, hybrid, Figure 17).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = worker_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(&items[i]);
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker filled every slot")
        })
        .collect()
}

/// The eight evaluation workloads, in Figure 7's x-axis order.
pub const EVAL_KERNELS: [&str; 8] = ["BFS", "CComp", "DC", "kCore", "SSSP", "TC", "BC", "PRank"];

/// Picks a high-degree root so traversals cover the giant component.
pub fn pick_root(graph: &CsrGraph) -> VertexId {
    (0..graph.vertex_count() as VertexId)
        .max_by_key(|&v| graph.out_degree(v))
        .unwrap_or(0)
}

/// Geometric mean helper used by "Average" columns.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut product = 1.0f64;
    let mut count = 0usize;
    for v in values {
        product *= v.max(1e-12);
        count += 1;
    }
    if count == 0 {
        1.0
    } else {
        product.powf(1.0 / count as f64)
    }
}

#[cfg(test)]
pub(crate) mod testctx {
    //! Shared cached contexts for the in-crate figure tests: every test
    //! module reuses one sweep per scale instead of redoing each other's
    //! simulations.

    use super::Experiments;
    use graphpim_graph::generate::LdbcSize;
    use std::sync::OnceLock;

    /// The shared LDBC-1k context.
    pub fn k1() -> &'static Experiments {
        static CTX: OnceLock<Experiments> = OnceLock::new();
        CTX.get_or_init(|| Experiments::at_scale(LdbcSize::K1))
    }

    /// The shared LDBC-10k context (release-only tests).
    pub fn k10() -> &'static Experiments {
        static CTX: OnceLock<Experiments> = OnceLock::new();
        CTX.get_or_init(|| Experiments::at_scale(LdbcSize::K10))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphpim_graph::GraphBuilder;

    #[test]
    fn pick_root_prefers_hub() {
        let g = GraphBuilder::new(4)
            .edge(1, 0)
            .edge(1, 2)
            .edge(1, 3)
            .edge(2, 3)
            .build();
        assert_eq!(pick_root(&g), 1);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
    }

    #[test]
    fn scale_parsing_is_case_insensitive_and_strict() {
        assert_eq!(parse_scale("1k"), Ok(LdbcSize::K1));
        assert_eq!(parse_scale("1K"), Ok(LdbcSize::K1));
        assert_eq!(parse_scale(" 10K "), Ok(LdbcSize::K10));
        assert_eq!(parse_scale("100k"), Ok(LdbcSize::K100));
        assert_eq!(parse_scale("1M"), Ok(LdbcSize::M1));
        let err = parse_scale("10000").unwrap_err();
        assert!(err.contains("1k, 10k, 100k, 1m"), "helpful error: {err}");
        assert!(parse_scale("").is_err());
    }

    #[test]
    fn run_key_builders_and_stem() {
        let key = RunKey::new("DC", PimMode::GraphPim, LdbcSize::K1)
            .with_fus(4)
            .with_bw_tenths(5);
        assert_eq!(key.fus, 4);
        assert_eq!(key.bw_tenths, 5);
        assert!(!key.plain_atomics);
        let stem = key.file_stem();
        assert!(
            !stem.contains('/') && !stem.contains(' '),
            "stem must be filesystem-safe: {stem}"
        );
        assert_ne!(stem, key.clone().with_plain_atomics().file_stem());
    }

    #[test]
    fn parse_stem_round_trips_every_key_shape() {
        for kernel in ["DC", "BFS", "kCore", "PRank"] {
            for mode in PimMode::ALL {
                for size in LdbcSize::ALL {
                    for fus in [1usize, 16] {
                        for bw in [5u32, 10, 20] {
                            for plain in [false, true] {
                                let mut key = RunKey::new(kernel, mode, size)
                                    .with_fus(fus)
                                    .with_bw_tenths(bw);
                                if plain {
                                    key = key.with_plain_atomics();
                                }
                                assert_eq!(
                                    RunKey::parse_stem(&key.file_stem()),
                                    Some(key.clone()),
                                    "stem {}",
                                    key.file_stem()
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn parse_stem_rejects_malformed_stems() {
        for bad in [
            "",
            "DC",
            "DC-GraphPIM-LDBC-1k",
            "DC-GraphPIM-LDBC-1k-fus16",
            "DC-GraphPIM-LDBC-1k-fusX-bw10",
            "DC-GraphPIM-LDBC-1k-fus16-bwX",
            "DC-GraphPIM-LDBC-2k-fus16-bw10",
            "DC-SomeMode-LDBC-1k-fus16-bw10",
            "-GraphPIM-LDBC-1k-fus16-bw10",
            "DC-GraphPIM-LDBC-1k-fus16-bw10-shiny",
        ] {
            assert_eq!(RunKey::parse_stem(bad), None, "must reject {bad:?}");
        }
    }

    #[test]
    fn validate_key_reports_typed_errors() {
        let ctx = Experiments::with_cache(LdbcSize::K1, None);
        let good = RunKey::new("DC", PimMode::GraphPim, LdbcSize::K1);
        assert_eq!(ctx.validate_key(&good), Ok(()));
        let unknown = RunKey::new("NotAKernel", PimMode::Baseline, LdbcSize::K1);
        let err = ctx.validate_key(&unknown).unwrap_err();
        assert_eq!(err.id(), "unknown_kernel");
        let zero_fus = good.clone().with_fus(0);
        let err = ctx.validate_key(&zero_fus).unwrap_err();
        assert_eq!(err.id(), "zero_fus");
        assert!(ctx.cached_metrics(&zero_fus).is_none(), "must not panic");
    }

    #[test]
    fn cached_metrics_probe_is_side_effect_free() {
        let ctx = Experiments::with_cache(LdbcSize::K1, None);
        let key = RunKey::new("DC", PimMode::Baseline, LdbcSize::K1);
        assert!(ctx.cached_metrics(&key).is_none());
        assert_eq!(ctx.cached_runs(), 0, "probe must not populate the memo");
        assert_eq!(ctx.simulations_executed(), 0);
        let m = ctx.metrics_for(&key);
        assert_eq!(ctx.cached_metrics(&key), Some(m));
    }

    #[test]
    fn trace_slice_reports_store_and_range_errors() {
        let ctx = Experiments::with_cache(LdbcSize::K1, None).with_trace_store(None);
        assert_eq!(
            ctx.trace_slice_json("DC", LdbcSize::K1, (0, None)),
            Err(TraceSliceError::StoreDisabled)
        );
        let dir = std::env::temp_dir().join(format!("graphpim-slice-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ctx = Experiments::with_cache(LdbcSize::K1, None)
            .with_trace_store(Some(TraceStore::at(&dir)));
        assert_eq!(
            ctx.trace_slice_json("DC", LdbcSize::K1, (3, Some(3))),
            Err(TraceSliceError::EmptyRange)
        );
        assert_eq!(
            ctx.trace_slice_json("DC", LdbcSize::K1, (0, None)),
            Err(TraceSliceError::NotCaptured)
        );
        // A run captures the workload; the slice then decodes.
        ctx.metrics("DC", PimMode::Baseline);
        let json = ctx
            .trace_slice_json("DC", LdbcSize::K1, (0, Some(2)))
            .expect("captured trace must slice");
        let doc = cache::json::parse(&json).expect("slice output must parse");
        let obj = doc.as_object().unwrap();
        assert_eq!(obj.get("kernel").unwrap().as_str(), Some("DC"));
        let steps = obj.get("supersteps").unwrap().as_array().unwrap();
        assert!(!steps.is_empty(), "DC at 1k has supersteps");
        assert!(steps.len() <= 2, "range must cap the slice");
        // Full (unbounded) slice agrees with itself when re-read and is
        // marked exhausted.
        let full = ctx.trace_slice_json("DC", LdbcSize::K1, (0, None)).unwrap();
        let fobj = cache::json::parse(&full).unwrap();
        assert_eq!(
            fobj.as_object()
                .unwrap()
                .get("exhausted")
                .unwrap()
                .as_bool(),
            Some(true)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..97).collect();
        let doubled = parallel_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        assert_eq!(parallel_map(&[] as &[usize], |&x| x), Vec::<usize>::new());
    }

    #[test]
    fn graphs_are_shared_not_cloned() {
        let ctx = Experiments::with_cache(LdbcSize::K1, None);
        let a = ctx.graph(LdbcSize::K1);
        let b = ctx.graph(LdbcSize::K1);
        assert!(Arc::ptr_eq(&a, &b));
        let w = ctx.weighted_graph(LdbcSize::K1);
        assert!(!Arc::ptr_eq(&a, &w));
    }

    #[test]
    fn stream_replay_mode_is_bit_identical() {
        use crate::tracestore::TraceStore;
        // Streaming mode changes the capture path (straight to disk), the
        // resident trace form (encoded bytes), the replay path (frame-by-
        // frame on a producer thread), and the live path (pipelined) —
        // none of which may move a single counter. Exact RunMetrics
        // equality across both modes, with and without a trace store.
        let store_dir =
            std::env::temp_dir().join(format!("graphpim-streamreplay-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&store_dir);
        for with_store in [true, false] {
            let make_store = || {
                if with_store {
                    Some(TraceStore::at(&store_dir))
                } else {
                    None
                }
            };
            let buffered = Experiments::with_cache(LdbcSize::K1, None)
                .with_trace_store(make_store())
                .with_stream_replay(false);
            let streaming = Experiments::with_cache(LdbcSize::K1, None)
                .with_trace_store(make_store())
                .with_stream_replay(true);
            for mode in [PimMode::Baseline, PimMode::UPei, PimMode::GraphPim] {
                assert_eq!(
                    buffered.metrics("DC", mode),
                    streaming.metrics("DC", mode),
                    "with_store={with_store} mode={mode:?}"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&store_dir);
    }

    #[test]
    fn stream_replay_defaults_on_at_1m_only() {
        let ctx = Experiments::with_cache(LdbcSize::K1, None);
        // Only check the built-in default when the env knob is not
        // overriding it in this test process.
        if std::env::var_os("GRAPHPIM_STREAM_REPLAY").is_none() {
            assert!(!ctx.stream_replay_for(LdbcSize::K1));
            assert!(!ctx.stream_replay_for(LdbcSize::K100));
            assert!(ctx.stream_replay_for(LdbcSize::M1));
        }
        let forced = ctx.with_stream_replay(true);
        assert!(forced.stream_replay_for(LdbcSize::K1));
        assert!(!forced
            .with_stream_replay(false)
            .stream_replay_for(LdbcSize::M1));
    }

    #[test]
    fn memoization_reuses_runs() {
        let ctx = Experiments::with_cache(LdbcSize::K1, None);
        let a = ctx.metrics("DC", PimMode::Baseline);
        let b = ctx.metrics("DC", PimMode::Baseline);
        assert_eq!(a, b);
        assert_eq!(ctx.cached_runs(), 1);
        assert_eq!(ctx.simulations_executed(), 1);
        assert_eq!(ctx.disk_cache_hits(), 0);
    }
}
