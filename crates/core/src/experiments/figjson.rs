//! Machine-readable figure output shared by the CLI binaries and the
//! experiment service.
//!
//! Every served figure renders through [`figure_json`], so
//! `fig07 --json` on the command line and `GET /figures/fig07` on the
//! service produce **byte-identical** documents from one code path.
//! Serialization is hand-rolled (the vendored `serde` is a no-op
//! stand-in; see `vendor/README.md`): floats use Rust's shortest
//! round-trip formatting (`{:?}`), integers exact decimal — the same
//! discipline as the [run cache](super::cache), so identical cached runs
//! render identically everywhere.
//!
//! Figure 17 is deliberately absent: it is a standalone design-space
//! sweep with its own driver, not a run-key figure over the shared
//! [`Experiments`] context.

use super::{
    fig01, fig02, fig04, fig07, fig09, fig10, fig11, fig12, fig13, fig14, fig15, fig16,
    Experiments, RunKey,
};
use std::fmt::Write as _;

/// Figure ids accepted by [`figure_json`] and [`figure_keys`], in paper
/// order.
pub const FIGURES: [&str; 12] = [
    "fig01", "fig02", "fig04", "fig07", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
    "fig15", "fig16",
];

/// The run set figure `fig` needs (for prewarming, sweep submission, and
/// cached-figure probes), or `None` for an unknown id.
pub fn figure_keys(fig: &str, ctx: &Experiments) -> Option<Vec<RunKey>> {
    Some(match fig {
        "fig01" => fig01::keys(ctx),
        "fig02" => fig02::keys(ctx),
        "fig04" => fig04::keys(ctx),
        "fig07" => fig07::keys(ctx),
        "fig09" => fig09::keys(ctx),
        "fig10" => fig10::keys(ctx),
        "fig11" => fig11::keys(ctx),
        "fig12" => fig12::keys(ctx),
        "fig13" => fig13::keys(ctx),
        "fig14" => fig14::keys(ctx),
        "fig15" => fig15::keys(ctx),
        "fig16" => fig16::keys(ctx),
        _ => return None,
    })
}

/// Runs (or recalls) figure `fig` and renders its rows as one JSON
/// document, or `None` for an unknown id. Deterministic for a given set
/// of run results — see the module docs.
pub fn figure_json(fig: &str, ctx: &Experiments) -> Option<String> {
    let mut rows: Vec<String> = Vec::new();
    let mut extra = String::new();
    match fig {
        "fig01" => {
            for r in fig01::run(ctx) {
                rows.push(format!(
                    "{{\"workload\": \"{}\", \"category\": \"{}\", \"ipc\": {:?}}}",
                    escape(&r.workload),
                    r.category,
                    r.ipc
                ));
            }
        }
        "fig02" => {
            for r in fig02::run(ctx) {
                rows.push(format!(
                    "{{\"workload\": \"{}\", \"retiring\": {:?}, \"frontend\": {:?}, \
                     \"bad_speculation\": {:?}, \"backend\": {:?}, \"l1_mpki\": {:?}, \
                     \"l2_mpki\": {:?}, \"l3_mpki\": {:?}}}",
                    escape(&r.workload),
                    r.breakdown.retiring,
                    r.breakdown.frontend,
                    r.breakdown.bad_speculation,
                    r.breakdown.backend,
                    r.l1_mpki,
                    r.l2_mpki,
                    r.l3_mpki
                ));
            }
        }
        "fig04" => {
            for r in fig04::run(ctx) {
                rows.push(format!(
                    "{{\"workload\": \"{}\", \"normalized_time\": {:?}}}",
                    escape(&r.workload),
                    r.normalized_time
                ));
            }
        }
        "fig07" => {
            for r in fig07::run(ctx) {
                rows.push(format!(
                    "{{\"workload\": \"{}\", \"upei\": {:?}, \"graphpim\": {:?}}}",
                    escape(&r.workload),
                    r.upei,
                    r.graphpim
                ));
            }
        }
        "fig09" => {
            for b in fig09::run(ctx) {
                rows.push(format!(
                    "{{\"workload\": \"{}\", \"mode\": \"{}\", \"atomic_incore\": {:?}, \
                     \"atomic_incache\": {:?}, \"other\": {:?}}}",
                    escape(&b.workload),
                    b.mode.label(),
                    b.atomic_incore,
                    b.atomic_incache,
                    b.other
                ));
            }
        }
        "fig10" => {
            for r in fig10::run(ctx) {
                rows.push(format!(
                    "{{\"workload\": \"{}\", \"miss_rate\": {:?}, \"candidates\": {}}}",
                    escape(&r.workload),
                    r.miss_rate,
                    r.candidates
                ));
            }
        }
        "fig11" => {
            let _ = writeln!(
                extra,
                "  \"fus\": [{}],",
                fig11::FU_SWEEP.map(|f| f.to_string()).join(", ")
            );
            for r in fig11::run(ctx) {
                rows.push(format!(
                    "{{\"workload\": \"{}\", \"speedups\": [{}]}}",
                    escape(&r.workload),
                    floats(&r.speedups)
                ));
            }
        }
        "fig12" => {
            for b in fig12::run(ctx) {
                rows.push(format!(
                    "{{\"workload\": \"{}\", \"mode\": \"{}\", \"request\": {:?}, \
                     \"response\": {:?}}}",
                    escape(&b.workload),
                    b.mode.label(),
                    b.request,
                    b.response
                ));
            }
        }
        "fig13" => {
            let _ = writeln!(
                extra,
                "  \"bw_tenths\": [{}],",
                fig13::BW_SWEEP.map(|b| b.to_string()).join(", ")
            );
            for r in fig13::run(ctx) {
                rows.push(format!(
                    "{{\"workload\": \"{}\", \"baseline\": [{}], \"graphpim\": [{}]}}",
                    escape(&r.workload),
                    floats(&r.baseline),
                    floats(&r.graphpim)
                ));
            }
        }
        "fig14" => {
            for c in fig14::run(ctx) {
                rows.push(format!(
                    "{{\"workload\": \"{}\", \"size\": \"{}\", \
                     \"improvement_over_upei\": {:?}, \"speedup_over_baseline\": {:?}}}",
                    escape(&c.workload),
                    c.size.name(),
                    c.improvement_over_upei,
                    c.speedup_over_baseline
                ));
            }
        }
        "fig15" => {
            for b in fig15::run(ctx) {
                rows.push(format!(
                    "{{\"workload\": \"{}\", \"mode\": \"{}\", \"caches\": {:?}, \
                     \"hmc_link\": {:?}, \"hmc_fu\": {:?}, \"hmc_logic\": {:?}, \
                     \"hmc_dram\": {:?}}}",
                    escape(&b.workload),
                    b.mode.label(),
                    b.energy.caches,
                    b.energy.hmc_link,
                    b.energy.hmc_fu,
                    b.energy.hmc_logic,
                    b.energy.hmc_dram
                ));
            }
        }
        "fig16" => {
            for r in fig16::run(ctx) {
                rows.push(format!(
                    "{{\"workload\": \"{}\", \"simulated\": {:?}, \"analytical\": {:?}}}",
                    escape(&r.workload),
                    r.simulated,
                    r.analytical
                ));
            }
        }
        _ => return None,
    }
    let mut s = String::with_capacity(128 + rows.iter().map(String::len).sum::<usize>());
    s.push_str("{\n");
    let _ = writeln!(s, "  \"figure\": \"{fig}\",");
    let _ = writeln!(s, "  \"scale\": \"{}\",", ctx.size().name());
    s.push_str(&extra);
    s.push_str("  \"rows\": [");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    ");
        s.push_str(row);
    }
    if !rows.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}");
    Some(s)
}

/// Comma-joins floats with round-trip (`{:?}`) formatting.
fn floats(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{v:?}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Escapes the two characters the cache's JSON reader understands
/// (`"` and `\`); workload and mode labels are plain ASCII anyway.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::cache::json;
    use crate::experiments::testctx;

    #[test]
    fn unknown_figures_are_rejected() {
        let ctx = testctx::k1();
        assert!(figure_keys("fig99", ctx).is_none());
        assert!(figure_json("fig99", ctx).is_none());
        assert!(figure_keys("fig17", ctx).is_none(), "fig17 is standalone");
    }

    #[test]
    fn every_figure_id_has_keys() {
        let ctx = testctx::k1();
        for fig in FIGURES {
            let keys = figure_keys(fig, ctx).unwrap_or_else(|| panic!("{fig} must have keys"));
            assert!(!keys.is_empty(), "{fig} needs at least one run");
        }
    }

    #[test]
    fn fig07_json_parses_and_is_deterministic() {
        let ctx = testctx::k1();
        let a = figure_json("fig07", ctx).expect("fig07 renders");
        let b = figure_json("fig07", ctx).expect("fig07 renders");
        assert_eq!(a, b, "same context, same bytes");
        let doc = json::parse(&a).expect("figure output must parse");
        let obj = doc.as_object().unwrap();
        assert_eq!(obj.get("figure").unwrap().as_str(), Some("fig07"));
        assert_eq!(obj.get("scale").unwrap().as_str(), Some("LDBC-1k"));
        let rows = obj.get("rows").unwrap().as_array().unwrap();
        // Eight workloads plus the geomean "Average" row.
        assert_eq!(rows.len(), 9);
        let last = rows.last().unwrap().as_object().unwrap();
        assert_eq!(last.get("workload").unwrap().as_str(), Some("Average"));
        assert!(last.get("graphpim").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn fig04_and_fig10_json_parse() {
        // Figures that reuse fig07's three-mode runs are cheap once the
        // shared context is warm; fig04 adds the plain-atomics variant.
        let ctx = testctx::k1();
        for fig in ["fig04", "fig10"] {
            let doc = figure_json(fig, ctx).unwrap();
            let parsed = json::parse(&doc).unwrap_or_else(|| panic!("{fig} must parse: {doc}"));
            let rows = parsed.as_object().unwrap().get("rows").unwrap();
            assert!(!rows.as_array().unwrap().is_empty(), "{fig} has rows");
        }
    }
}
