//! Figure 13: sensitivity to HMC link bandwidth.
//!
//! HMC's four 120 GB/s links are so over-provisioned for these workloads
//! that halving or doubling them changes nothing — which is also why
//! GraphPIM's bandwidth savings (Fig. 12) do not translate into speedup
//! but do translate into energy (Fig. 15).

use super::{Experiments, RunKey, EVAL_KERNELS};
use crate::config::PimMode;
use crate::report::{fmt_speedup, Table};

/// Bandwidth factors in tenths (half / 1x / double).
pub const BW_SWEEP: [u32; 3] = [5, 10, 20];

/// One workload's six bars.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Workload name.
    pub workload: String,
    /// Baseline at half / 1x / double bandwidth, normalized to baseline@1x.
    pub baseline: [f64; 3],
    /// GraphPIM at half / 1x / double bandwidth, normalized to baseline@1x.
    pub graphpim: [f64; 3],
}

/// The runs this figure needs (for prewarming).
pub fn keys(ctx: &Experiments) -> Vec<RunKey> {
    EVAL_KERNELS
        .iter()
        .flat_map(|&name| {
            [PimMode::Baseline, PimMode::GraphPim]
                .into_iter()
                .flat_map(move |mode| {
                    BW_SWEEP
                        .iter()
                        .map(move |&bw| RunKey::new(name, mode, ctx.size()).with_bw_tenths(bw))
                })
        })
        .collect()
}

/// Runs the sweep.
pub fn run(ctx: &Experiments) -> Vec<Row> {
    ctx.prewarm(keys(ctx));
    let size = ctx.size();
    EVAL_KERNELS
        .iter()
        .map(|&name| {
            let reference = ctx
                .metrics_at(name, PimMode::Baseline, size, 16, 10)
                .total_cycles;
            let collect = |mode: PimMode| {
                let mut out = [0.0; 3];
                for (i, &bw) in BW_SWEEP.iter().enumerate() {
                    let m = ctx.metrics_at(name, mode, size, 16, bw);
                    out[i] = reference / m.total_cycles.max(1e-9);
                }
                out
            };
            Row {
                workload: name.to_string(),
                baseline: collect(PimMode::Baseline),
                graphpim: collect(PimMode::GraphPim),
            }
        })
        .collect()
}

/// Formats the rows.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new("Figure 13: speedup vs HMC link bandwidth").header([
        "Workload",
        "Base 1/2x",
        "Base 1x",
        "Base 2x",
        "GPIM 1/2x",
        "GPIM 1x",
        "GPIM 2x",
    ]);
    for r in rows {
        t.row([
            r.workload.clone(),
            fmt_speedup(r.baseline[0]),
            fmt_speedup(r.baseline[1]),
            fmt_speedup(r.baseline[2]),
            fmt_speedup(r.graphpim[0]),
            fmt_speedup(r.graphpim[1]),
            fmt_speedup(r.graphpim[2]),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testctx;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn insensitive_to_link_bandwidth() {
        let rows = run(testctx::k1());
        for r in &rows {
            // Baseline@1x is the normalization anchor.
            assert!((r.baseline[1] - 1.0).abs() < 1e-9);
            for i in 0..3 {
                // Smoke-scale runs are short, so allow generous noise; the
                // recorded full-scale run shows the paper's flat curves.
                assert!(
                    (r.baseline[i] - 1.0).abs() < 0.20,
                    "{}: baseline bw sweep {:?}",
                    r.workload,
                    r.baseline
                );
                let rel = (r.graphpim[i] - r.graphpim[1]).abs() / r.graphpim[1];
                assert!(
                    rel < 0.20,
                    "{}: GraphPIM bw sweep {:?}",
                    r.workload,
                    r.graphpim
                );
            }
        }
    }
}
