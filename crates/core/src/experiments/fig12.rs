//! Figure 12: normalized bandwidth consumption with request/response
//! breakdown.
//!
//! Atomic packets are far smaller than cache-line transfers (Table V), so
//! GraphPIM cuts link traffic by ~30% on the atomic-heavy kernels, mostly
//! on the response direction (graph workloads are read dominated).

use super::{Experiments, RunKey, EVAL_KERNELS};
use crate::config::PimMode;
use crate::report::Table;

/// One stacked bar (workload × configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct Bar {
    /// Workload name.
    pub workload: String,
    /// Configuration of this bar.
    pub mode: PimMode,
    /// Request-direction FLITs, normalized to the baseline total.
    pub request: f64,
    /// Response-direction FLITs, normalized to the baseline total.
    pub response: f64,
}

impl Bar {
    /// Total normalized bandwidth of this bar.
    pub fn total(&self) -> f64 {
        self.request + self.response
    }
}

/// The runs this figure needs (for prewarming).
pub fn keys(ctx: &Experiments) -> Vec<RunKey> {
    EVAL_KERNELS
        .iter()
        .flat_map(|&name| PimMode::ALL.map(|mode| RunKey::new(name, mode, ctx.size())))
        .collect()
}

/// Runs the experiment: three bars per workload.
pub fn run(ctx: &Experiments) -> Vec<Bar> {
    ctx.prewarm(keys(ctx));
    let mut bars = Vec::new();
    for &name in &EVAL_KERNELS {
        let base_total = ctx.metrics(name, PimMode::Baseline).total_flits() as f64;
        for mode in PimMode::ALL {
            let m = ctx.metrics(name, mode);
            bars.push(Bar {
                workload: name.to_string(),
                mode,
                request: m.hmc.request_flits() as f64 / base_total.max(1.0),
                response: m.hmc.response_flits() as f64 / base_total.max(1.0),
            });
        }
    }
    bars
}

/// Formats the bars.
pub fn table(bars: &[Bar]) -> Table {
    let mut t = Table::new("Figure 12: normalized bandwidth consumption")
        .header(["Workload", "Config", "Request", "Response", "Total"]);
    for b in bars {
        t.row([
            b.workload.clone(),
            b.mode.to_string(),
            format!("{:.2}", b.request),
            format!("{:.2}", b.response),
            format!("{:.2}", b.total()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testctx;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn bars_normalize_and_reads_dominate() {
        // The bandwidth *savings* require the cache-missing regime (the
        // recorded EXPERIMENTS.md run and tests/full_stack.rs cover it);
        // at smoke scale we check normalization and the read dominance.
        let bars = run(testctx::k1());
        assert_eq!(bars.len(), 24); // 8 workloads x 3 configs
        let get = |w: &str, m: PimMode| {
            bars.iter()
                .find(|b| b.workload == w && b.mode == m)
                .unwrap_or_else(|| panic!("{w}/{m}"))
        };
        for name in ["BFS", "DC", "CComp"] {
            let base = get(name, PimMode::Baseline);
            assert!((base.total() - 1.0).abs() < 1e-6);
            // Read-dominated workloads: responses outweigh requests.
            assert!(base.response > base.request);
        }
    }
}
