//! Prometheus text exposition (format 0.0.4): an append-only builder
//! producing `# HELP`/`# TYPE` headers and sample lines, plus a strict
//! linter shared by the test suite and `servectl metrics --lint`.
//!
//! Engine counter names are dotted (`attrib.core.busy`,
//! `tracestore.replays`); [`sanitize`] maps them onto the Prometheus
//! name grammar (`[a-zA-Z_:][a-zA-Z0-9_:]*`) by replacing every
//! invalid character with `_`. Power-of-two [`Histogram`]s render as
//! native Prometheus histograms with cumulative `le` buckets.

use graphpim_sim::telemetry::Histogram;

/// Maps an arbitrary counter name onto the Prometheus metric-name
/// grammar: invalid characters become `_`, and a leading digit gets a
/// `_` prefix. `attrib.core.busy` → `attrib_core_busy`.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a sample value: integers without a fraction, infinities as
/// `+Inf`/`-Inf` (the exposition spelling).
pub fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// An exposition document under construction. Families are emitted in
/// call order; each `family()` call writes the `# HELP`/`# TYPE` pair
/// and subsequent `sample()` calls append series for it.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// An empty document.
    pub fn new() -> Exposition {
        Exposition::default()
    }

    /// Starts a metric family: writes its `# HELP` and `# TYPE` lines.
    /// `name` must already be a valid metric name (use [`sanitize`]).
    /// `kind` is `counter`, `gauge`, `histogram`, `summary`, or
    /// `untyped`.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        let help: String = help
            .chars()
            .map(|c| if c == '\n' { ' ' } else { c })
            .collect();
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(&help.replace('\\', "\\\\"));
        self.out.push('\n');
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// Appends one sample line. Label values are escaped here; label
    /// names must already be valid.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                self.out.push_str(&escape_label(v));
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(&format_value(value));
        self.out.push('\n');
    }

    /// Renders a power-of-two [`Histogram`] as one Prometheus
    /// histogram series set: cumulative `le` buckets (the unbounded
    /// last bucket folds into `+Inf`), `_sum`, and `_count`. The
    /// family header (`# TYPE ... histogram`) must come from a prior
    /// [`family`](Self::family) call.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], h: &Histogram) {
        let counts = h.bucket_counts();
        let mut cumulative = 0u64;
        let bucket_name = format!("{name}_bucket");
        for (i, &c) in counts.iter().enumerate() {
            cumulative += c;
            let le = if i + 1 >= counts.len() {
                "+Inf".to_string()
            } else {
                format_value(h.bucket_bound(i))
            };
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", &le));
            self.sample(&bucket_name, &with_le, cumulative as f64);
        }
        self.sample(&format!("{name}_sum"), labels, h.sum());
        self.sample(&format!("{name}_count"), labels, h.count() as f64);
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// One lint violation: `(line number, message)`. Line numbers are
/// 1-based; line 0 flags document-level problems.
pub type LintError = (usize, String);

/// Strictly lints a text-exposition document: every line must match
/// the exposition grammar, every sample's family must have `# HELP`
/// and `# TYPE` declared before its first sample, families must not
/// interleave, and no two samples may share a (name, label set)
/// series. Histogram families must carry cumulative `le` buckets
/// ending in `+Inf` with `_count` equal to the `+Inf` bucket.
pub fn lint(text: &str) -> Result<(), Vec<LintError>> {
    let mut errors: Vec<LintError> = Vec::new();
    // family name -> (has_help, has_type, kind)
    let mut families: std::collections::HashMap<String, (bool, bool, String)> =
        std::collections::HashMap::new();
    let mut closed: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut seen_series: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut current_family: Option<String> = None;
    // (histogram family, non-le label set) -> (last cumulative bucket,
    // saw +Inf, count value). Keyed per series, not per family: one
    // histogram family legitimately holds many labeled series and each
    // has its own cumulative bucket chain.
    type HistogramState = (f64, Option<f64>, Option<f64>);
    let mut histograms: std::collections::HashMap<(String, String), HistogramState> =
        std::collections::HashMap::new();

    for (idx, line) in text.lines().enumerate() {
        let ln = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let (keyword, rest) = match rest.split_once(' ') {
                Some(pair) => pair,
                None => {
                    errors.push((ln, "malformed comment line".to_string()));
                    continue;
                }
            };
            if keyword != "HELP" && keyword != "TYPE" {
                continue; // plain comment: legal, ignored
            }
            let (name, payload) = match rest.split_once(' ') {
                Some(pair) => pair,
                None if keyword == "HELP" => (rest, ""),
                None => {
                    errors.push((ln, format!("# {keyword} line missing payload")));
                    continue;
                }
            };
            if !valid_name(name) {
                errors.push((ln, format!("invalid metric name {name:?}")));
                continue;
            }
            if closed.contains(name) {
                errors.push((
                    ln,
                    format!("family {name} interleaved: redeclared after other samples"),
                ));
            }
            if let Some(current) = &current_family {
                if current != name {
                    closed.insert(current.clone());
                }
            }
            current_family = Some(name.to_string());
            let entry = families
                .entry(name.to_string())
                .or_insert((false, false, String::new()));
            if keyword == "HELP" {
                if entry.0 {
                    errors.push((ln, format!("duplicate # HELP for {name}")));
                }
                entry.0 = true;
            } else {
                if entry.1 {
                    errors.push((ln, format!("duplicate # TYPE for {name}")));
                }
                entry.1 = true;
                let kind = payload.trim();
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    errors.push((ln, format!("unknown metric type {kind:?} for {name}")));
                }
                entry.2 = kind.to_string();
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // bare comment
        }

        // A sample line: name[{labels}] value [timestamp]
        let (series, family, labels) = match parse_sample(line) {
            Ok(parts) => parts,
            Err(msg) => {
                errors.push((ln, msg));
                continue;
            }
        };
        let base = base_family(&family, &families);
        match families.get(&base) {
            Some((has_help, has_type, _)) => {
                if !has_help {
                    errors.push((ln, format!("sample for {base} before its # HELP")));
                }
                if !has_type {
                    errors.push((ln, format!("sample for {base} before its # TYPE")));
                }
            }
            None => {
                errors.push((ln, format!("sample for undeclared family {base}")));
            }
        }
        if current_family.as_deref() != Some(base.as_str()) && families.contains_key(&base) {
            errors.push((
                ln,
                format!("family {base} samples not contiguous with its header"),
            ));
        }
        if !seen_series.insert(series.clone()) {
            errors.push((ln, format!("duplicate series {series}")));
        }

        // Histogram bookkeeping, per (family, non-le label set).
        if families.get(&base).map(|f| f.2.as_str()) == Some("histogram") {
            let value: f64 = line
                .rsplit(' ')
                .next()
                .and_then(parse_value)
                .unwrap_or(f64::NAN);
            let mut series_labels: Vec<&(String, String)> =
                labels.iter().filter(|(k, _)| k != "le").collect();
            series_labels.sort();
            let series_key = series_labels
                .iter()
                .map(|(k, v)| format!("{k}={v:?}"))
                .collect::<Vec<_>>()
                .join(",");
            let entry = histograms
                .entry((base.clone(), series_key))
                .or_insert((0.0, None, None));
            if family == format!("{base}_bucket") {
                if let Some(le) = labels.iter().find(|(k, _)| k == "le").map(|(_, v)| v) {
                    if value + 1e-9 < entry.0 {
                        errors.push((ln, format!("{base} buckets not cumulative at le={le}")));
                    }
                    entry.0 = value;
                    if le == "+Inf" {
                        entry.1 = Some(value);
                    }
                } else {
                    errors.push((ln, format!("{base}_bucket sample missing le label")));
                }
            } else if family == format!("{base}_count") {
                entry.2 = Some(value);
            }
        }
    }

    for (name, (has_help, has_type, _)) in &families {
        if !has_help {
            errors.push((0, format!("family {name} has # TYPE but no # HELP")));
        }
        if !has_type {
            errors.push((0, format!("family {name} has # HELP but no # TYPE")));
        }
    }
    for ((name, series), (_, inf, count)) in &histograms {
        let series = if series.is_empty() {
            name.clone()
        } else {
            format!("{name}{{{series}}}")
        };
        match inf {
            None => errors.push((0, format!("histogram {series} has no +Inf bucket"))),
            Some(inf) => {
                if let Some(count) = count {
                    if (inf - count).abs() > 1e-9 {
                        errors.push((
                            0,
                            format!("histogram {series}: +Inf bucket {inf} != _count {count}"),
                        ));
                    }
                }
            }
        }
        if count.is_none() {
            errors.push((0, format!("histogram {series} has no _count sample")));
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        errors.sort();
        Err(errors)
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// The family a sample belongs to: its name, minus a histogram/summary
/// suffix when the suffixed base is a declared family.
fn base_family(
    name: &str,
    families: &std::collections::HashMap<String, (bool, bool, String)>,
) -> String {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if let Some((_, _, kind)) = families.get(base) {
                if kind == "histogram" || kind == "summary" {
                    return base.to_string();
                }
            }
        }
    }
    name.to_string()
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        s => s.parse().ok(),
    }
}

/// Parses one sample line into (canonical series id, metric name,
/// labels). The canonical id sorts labels so permuted duplicates are
/// still caught.
#[allow(clippy::type_complexity)]
fn parse_sample(line: &str) -> Result<(String, String, Vec<(String, String)>), String> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| "unclosed label brace".to_string())?;
            if close < brace {
                return Err("malformed label braces".to_string());
            }
            (&line[..brace], &line[close + 1..])
        }
        None => match line.find(' ') {
            Some(space) => (&line[..space], &line[space..]),
            None => return Err("sample line has no value".to_string()),
        },
    };
    if !valid_name(name_part) {
        return Err(format!("invalid metric name {name_part:?}"));
    }
    let mut labels: Vec<(String, String)> = Vec::new();
    if let Some(brace) = line.find('{') {
        let close = line.rfind('}').unwrap();
        let body = &line[brace + 1..close];
        let mut chars = body.chars().peekable();
        while chars.peek().is_some() {
            let mut label = String::new();
            for c in chars.by_ref() {
                if c == '=' {
                    break;
                }
                label.push(c);
            }
            if !valid_label_name(&label) {
                return Err(format!("invalid label name {label:?}"));
            }
            if chars.next() != Some('"') {
                return Err(format!("label {label} value not quoted"));
            }
            let mut value = String::new();
            let mut escaped = false;
            let mut terminated = false;
            for c in chars.by_ref() {
                if escaped {
                    match c {
                        '\\' => value.push('\\'),
                        '"' => value.push('"'),
                        'n' => value.push('\n'),
                        c => return Err(format!("bad escape \\{c} in label {label}")),
                    }
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    terminated = true;
                    break;
                } else {
                    value.push(c);
                }
            }
            if !terminated {
                return Err(format!("unterminated value for label {label}"));
            }
            labels.push((label, value));
            match chars.peek() {
                Some(',') => {
                    chars.next();
                }
                Some(c) => return Err(format!("expected ',' or '}}' after label, got {c:?}")),
                None => {}
            }
        }
    }

    let rest = rest.trim_start();
    let mut parts = rest.split(' ').filter(|p| !p.is_empty());
    let value = parts
        .next()
        .ok_or_else(|| "missing sample value".to_string())?;
    if parse_value(value).is_none() {
        return Err(format!("unparseable sample value {value:?}"));
    }
    if let Some(ts) = parts.next() {
        if ts.parse::<i64>().is_err() {
            return Err(format!("unparseable timestamp {ts:?}"));
        }
    }
    if parts.next().is_some() {
        return Err("trailing garbage after sample".to_string());
    }

    let mut sorted = labels.clone();
    sorted.sort();
    let series = format!(
        "{name_part}{{{}}}",
        sorted
            .iter()
            .map(|(k, v)| format!("{k}={v:?}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    Ok((series, name_part.to_string(), labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_dotted_names() {
        assert_eq!(sanitize("attrib.core.busy"), "attrib_core_busy");
        assert_eq!(
            sanitize("hmc.vault07.queue_wait.p99"),
            "hmc_vault07_queue_wait_p99"
        );
        assert_eq!(sanitize("7seconds"), "_7seconds");
        assert_eq!(sanitize("ok_name:sub"), "ok_name:sub");
        assert_eq!(sanitize(""), "_");
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(3.0), "3");
        assert_eq!(format_value(0.5), "0.5");
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(-1.0), "-1");
    }

    #[test]
    fn build_and_lint_round_trip() {
        let mut e = Exposition::new();
        e.family("graphpim_jobs_completed_total", "counter", "Jobs completed");
        e.sample("graphpim_jobs_completed_total", &[], 42.0);
        e.family("graphpim_queue_depth", "gauge", "Units queued");
        e.sample("graphpim_queue_depth", &[("state", "queued")], 3.0);
        e.sample("graphpim_queue_depth", &[("state", "running")], 1.0);
        let mut h = Histogram::new(4);
        for v in [0.5, 1.5, 3.0, 100.0] {
            h.record(v);
        }
        e.family("graphpim_latency_micros", "histogram", "Endpoint latency");
        e.histogram("graphpim_latency_micros", &[("endpoint", "/healthz")], &h);
        // A second labeled series in the same family: its bucket chain
        // restarts from a smaller cumulative count, which the linter
        // must track per series, not per family.
        let mut h2 = Histogram::new(4);
        h2.record(2.0);
        e.histogram("graphpim_latency_micros", &[("endpoint", "/stats")], &h2);
        let text = e.finish();
        assert!(lint(&text).is_ok(), "{:?}\n{text}", lint(&text));
        assert!(
            text.contains("graphpim_latency_micros_bucket{endpoint=\"/healthz\",le=\"+Inf\"} 4")
        );
        assert!(text.contains("graphpim_latency_micros_count{endpoint=\"/healthz\"} 4"));
    }

    #[test]
    fn lint_catches_violations() {
        // Sample with no HELP/TYPE.
        let errs = lint("orphan_metric 1\n").unwrap_err();
        assert!(errs.iter().any(|(_, m)| m.contains("undeclared family")));

        // Duplicate series.
        let doc = "# HELP m help\n# TYPE m gauge\nm{a=\"x\"} 1\nm{a=\"x\"} 2\n";
        let errs = lint(doc).unwrap_err();
        assert!(errs.iter().any(|(_, m)| m.contains("duplicate series")));

        // Duplicate series under permuted labels.
        let doc = "# HELP m help\n# TYPE m gauge\nm{a=\"x\",b=\"y\"} 1\nm{b=\"y\",a=\"x\"} 2\n";
        assert!(lint(doc).is_err());

        // TYPE without HELP.
        let errs = lint("# TYPE m gauge\nm 1\n").unwrap_err();
        assert!(errs.iter().any(|(_, m)| m.contains("no # HELP")));

        // Bad metric type.
        let errs = lint("# HELP m h\n# TYPE m banana\nm 1\n").unwrap_err();
        assert!(errs.iter().any(|(_, m)| m.contains("unknown metric type")));

        // Interleaved families.
        let doc =
            "# HELP a h\n# TYPE a gauge\na 1\n# HELP b h\n# TYPE b gauge\nb 1\na{x=\"1\"} 2\n";
        let errs = lint(doc).unwrap_err();
        assert!(errs.iter().any(|(_, m)| m.contains("not contiguous")));

        // Histogram without +Inf.
        let doc = "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        let errs = lint(doc).unwrap_err();
        assert!(errs.iter().any(|(_, m)| m.contains("no +Inf bucket")));

        // Unparseable value.
        let errs = lint("# HELP m h\n# TYPE m gauge\nm abc\n").unwrap_err();
        assert!(errs
            .iter()
            .any(|(_, m)| m.contains("unparseable sample value")));
    }
}
