//! Structured observability: leveled logging, per-thread context
//! fields, trace IDs, and Prometheus text exposition ([`prom`]).
//!
//! Every diagnostic the library emits goes through [`error`], [`warn`],
//! [`info`], [`debug`], or [`warn_once`] — never a bare `eprintln!`
//! (CI lints for that). Each record is rendered into a single buffer
//! and written with one `write_all`, so lines from concurrent worker
//! threads never tear. Two knobs shape the output:
//!
//! * `GRAPHPIM_LOG` — the level filter. A bare level
//!   (`error|warn|info|debug|off`) sets the global threshold;
//!   comma-separated `target=level` pairs override it per target
//!   (`GRAPHPIM_LOG=warn,tracestore=debug`). Default: `info`.
//! * `GRAPHPIM_LOG_FORMAT` — `logfmt` (default) or `json`. Both are
//!   one record per line; JSON lines are valid JSON objects.
//!
//! A record carries a *target* (subsystem name: `engine`, `tracestore`,
//! `serve`, ...), a message, explicit key/value fields, and whatever
//! context fields the current thread has pushed via [`push_context`]
//! (the serve acceptor pushes `trace` so every log line a request
//! causes carries its trace ID). Logging is observation-neutral by
//! construction: it only ever formats values the models already
//! computed, on the control path, never inside the simulation loop.

pub mod prom;

use std::collections::HashSet;
use std::fmt::Display;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed and its result is lost or wrong.
    Error,
    /// Degraded mode: the operation continues with reduced function.
    Warn,
    /// Normal operational landmarks (run started, cache hit, ...).
    Info,
    /// High-volume diagnostics for debugging.
    Debug,
}

impl Level {
    /// Lowercase name, as it appears in log lines and `GRAPHPIM_LOG`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// All levels, most severe first.
    pub const ALL: [Level; 4] = [Level::Error, Level::Warn, Level::Info, Level::Debug];

    fn idx(self) -> usize {
        match self {
            Level::Error => 0,
            Level::Warn => 1,
            Level::Info => 2,
            Level::Debug => 3,
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// Output format for log lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `ts=... level=... target=... msg=... key=value ...`
    Logfmt,
    /// One JSON object per line.
    Json,
}

/// The level filter: a global threshold plus per-target overrides.
#[derive(Debug, Clone)]
struct Filter {
    /// `None` means logging is off entirely.
    global: Option<Level>,
    /// `(target, max level)` overrides, first match wins.
    targets: Vec<(String, Option<Level>)>,
}

impl Filter {
    fn parse(spec: &str) -> Filter {
        let mut global = Some(Level::Info);
        let mut targets = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                Some((target, level)) => {
                    let level = if level.trim() == "off" {
                        None
                    } else {
                        match Level::parse(level) {
                            Some(l) => Some(l),
                            None => continue, // garbage override: keep default
                        }
                    };
                    targets.push((target.trim().to_string(), level));
                }
                None => {
                    if part == "off" {
                        global = None;
                    } else if let Some(l) = Level::parse(part) {
                        global = Some(l);
                    }
                    // Garbage keeps the info default: a mistyped filter
                    // must not silence diagnostics.
                }
            }
        }
        Filter { global, targets }
    }

    fn enabled(&self, level: Level, target: &str) -> bool {
        for (t, max) in &self.targets {
            if t == target {
                return match max {
                    Some(max) => level <= *max,
                    None => false,
                };
            }
        }
        match self.global {
            Some(max) => level <= max,
            None => false,
        }
    }
}

/// Where rendered lines go. The production sink is stderr; tests swap
/// in a buffer to assert byte-exact framing.
pub trait Sink: Send + Sync {
    /// Writes one complete line (including the trailing newline) in a
    /// single call. Returns false if the line could not be written.
    fn write_line(&self, line: &[u8]) -> bool;
}

struct StderrSink;

impl Sink for StderrSink {
    fn write_line(&self, line: &[u8]) -> bool {
        let mut err = std::io::stderr().lock();
        err.write_all(line).is_ok()
    }
}

/// Per-level emitted/dropped counters, surfaced by `/stats` and
/// `/metrics` so log floods and drop conditions are visible.
#[derive(Debug, Default)]
pub struct LoggerStats {
    emitted: [AtomicU64; 4],
    dropped: [AtomicU64; 4],
}

impl LoggerStats {
    /// Lines written for `level` since process start.
    pub fn emitted(&self, level: Level) -> u64 {
        self.emitted[level.idx()].load(Ordering::Relaxed)
    }

    /// Lines suppressed (filtered out or failed to write) for `level`.
    pub fn dropped(&self, level: Level) -> u64 {
        self.dropped[level.idx()].load(Ordering::Relaxed)
    }
}

struct Logger {
    filter: RwLock<Filter>,
    format: RwLock<Format>,
    sink: RwLock<Box<dyn Sink>>,
    stats: LoggerStats,
    once: Mutex<HashSet<String>>,
}

fn logger() -> &'static Logger {
    static LOGGER: OnceLock<Logger> = OnceLock::new();
    LOGGER.get_or_init(|| {
        let filter = match std::env::var("GRAPHPIM_LOG") {
            Ok(spec) => Filter::parse(&spec),
            Err(_) => Filter::parse("info"),
        };
        let format = match std::env::var("GRAPHPIM_LOG_FORMAT").as_deref() {
            Ok("json") => Format::Json,
            _ => Format::Logfmt,
        };
        Logger {
            filter: RwLock::new(filter),
            format: RwLock::new(format),
            sink: RwLock::new(Box::new(StderrSink)),
            stats: LoggerStats::default(),
            once: Mutex::new(HashSet::new()),
        }
    })
}

/// Read-guards that tolerate a panicking writer: the data is plain
/// config, valid regardless of where the poisoning panic happened.
fn read<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static CONTEXT: std::cell::RefCell<Vec<(String, String)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Restores the thread's context-field stack on drop; returned by
/// [`push_context`].
#[must_use = "the context field pops when this guard drops"]
pub struct ContextGuard {
    depth: usize,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.with(|c| c.borrow_mut().truncate(self.depth));
    }
}

/// Pushes a context field onto the current thread's stack. Every log
/// line the thread emits while the guard lives carries `key=value`;
/// the field pops when the guard drops.
pub fn push_context(key: &str, value: &str) -> ContextGuard {
    CONTEXT.with(|c| {
        let mut c = c.borrow_mut();
        let depth = c.len();
        c.push((key.to_string(), value.to_string()));
        ContextGuard { depth }
    })
}

/// The innermost context value for `key` on this thread, if any.
/// `EngineProfile::record_run` reads `trace` through this to stamp run
/// records without threading an argument through every engine layer.
pub fn context_value(key: &str) -> Option<String> {
    CONTEXT.with(|c| {
        c.borrow()
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    })
}

/// Whether a record at `level` for `target` would be emitted. Lets
/// callers skip building expensive fields for suppressed lines.
pub fn enabled(level: Level, target: &str) -> bool {
    read(&logger().filter).enabled(level, target)
}

/// A borrowed key/value field; values render via `Display`.
pub type Field<'a> = (&'a str, &'a dyn Display);

fn unix_ts() -> (u64, u32) {
    match std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => (d.as_secs(), d.subsec_millis()),
        Err(_) => (0, 0),
    }
}

fn needs_quotes(s: &str) -> bool {
    s.is_empty()
        || s.chars()
            .any(|c| c.is_whitespace() || c == '"' || c == '=' || c.is_control())
}

fn logfmt_value(out: &mut String, v: &str) {
    if needs_quotes(v) {
        out.push('"');
        for c in v.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if c.is_control() => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    } else {
        out.push_str(v);
    }
}

fn json_value(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if c.is_control() => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render(format: Format, level: Level, target: &str, msg: &str, fields: &[Field<'_>]) -> String {
    let (secs, millis) = unix_ts();
    let mut line = String::with_capacity(96);
    let context: Vec<(String, String)> = CONTEXT.with(|c| c.borrow().clone());
    match format {
        Format::Logfmt => {
            let _ = write!(
                line,
                "ts={secs}.{millis:03} level={} target=",
                level.as_str()
            );
            logfmt_value(&mut line, target);
            line.push_str(" msg=");
            logfmt_value(&mut line, msg);
            for (k, v) in &context {
                line.push(' ');
                line.push_str(k);
                line.push('=');
                logfmt_value(&mut line, v);
            }
            for (k, v) in fields {
                line.push(' ');
                line.push_str(k);
                line.push('=');
                logfmt_value(&mut line, &v.to_string());
            }
        }
        Format::Json => {
            let _ = write!(line, "{{\"ts\": {secs}.{millis:03}, \"level\": ");
            json_value(&mut line, level.as_str());
            line.push_str(", \"target\": ");
            json_value(&mut line, target);
            line.push_str(", \"msg\": ");
            json_value(&mut line, msg);
            for (k, v) in &context {
                line.push_str(", ");
                json_value(&mut line, k);
                line.push_str(": ");
                json_value(&mut line, v);
            }
            for (k, v) in fields {
                line.push_str(", ");
                json_value(&mut line, k);
                line.push_str(": ");
                json_value(&mut line, &v.to_string());
            }
            line.push('}');
        }
    }
    line.push('\n');
    line
}

/// Emits one record. Prefer the level-named wrappers ([`error`],
/// [`warn`], [`info`], [`debug`]).
pub fn log(level: Level, target: &str, msg: &str, fields: &[Field<'_>]) {
    let logger = logger();
    if !read(&logger.filter).enabled(level, target) {
        logger.stats.dropped[level.idx()].fetch_add(1, Ordering::Relaxed);
        return;
    }
    let line = render(*read(&logger.format), level, target, msg, fields);
    if read(&logger.sink).write_line(line.as_bytes()) {
        logger.stats.emitted[level.idx()].fetch_add(1, Ordering::Relaxed);
    } else {
        logger.stats.dropped[level.idx()].fetch_add(1, Ordering::Relaxed);
    }
}

/// Logs at [`Level::Error`].
pub fn error(target: &str, msg: &str, fields: &[Field<'_>]) {
    log(Level::Error, target, msg, fields);
}

/// Logs at [`Level::Warn`].
pub fn warn(target: &str, msg: &str, fields: &[Field<'_>]) {
    log(Level::Warn, target, msg, fields);
}

/// Logs at [`Level::Info`].
pub fn info(target: &str, msg: &str, fields: &[Field<'_>]) {
    log(Level::Info, target, msg, fields);
}

/// Logs at [`Level::Debug`].
pub fn debug(target: &str, msg: &str, fields: &[Field<'_>]) {
    log(Level::Debug, target, msg, fields);
}

/// Logs a warning at most once per `key` for the process lifetime.
///
/// Keys should be per-(site, path) where a path is involved — e.g.
/// `tracestore.write:/var/store` — so a store failing on one directory
/// does not silence warnings about a different one. Returns whether
/// this call was the first (and therefore emitted).
pub fn warn_once(key: &str, target: &str, msg: &str, fields: &[Field<'_>]) -> bool {
    let logger = logger();
    let first = {
        let mut once = logger.once.lock().unwrap_or_else(|e| e.into_inner());
        once.insert(key.to_string())
    };
    if first {
        warn(target, msg, fields);
    }
    first
}

/// Per-level (level, emitted, dropped) counters since process start.
pub fn stats() -> [(Level, u64, u64); 4] {
    let s = &logger().stats;
    Level::ALL.map(|l| (l, s.emitted(l), s.dropped(l)))
}

/// A fresh 16-hex-digit trace ID, unique within and across processes
/// with overwhelming probability (time, PID, thread, and a counter are
/// folded through an FNV mix).
pub fn new_trace_id() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let tid = {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        h.finish()
    };
    let mut x = 0xcbf29ce484222325u64;
    for word in [nanos, u64::from(std::process::id()), tid, seq] {
        for byte in word.to_le_bytes() {
            x ^= u64::from(byte);
            x = x.wrapping_mul(0x100000001b3);
        }
    }
    format!("{x:016x}")
}

/// Swaps the global sink; returns the previous one. Test-only hook for
/// asserting byte-exact line framing.
#[doc(hidden)]
pub fn set_sink(sink: Box<dyn Sink>) -> Box<dyn Sink> {
    let logger = logger();
    let mut slot = logger.sink.write().unwrap_or_else(|e| e.into_inner());
    std::mem::replace(&mut *slot, sink)
}

/// Overrides the filter spec at runtime (same grammar as
/// `GRAPHPIM_LOG`). Test-only hook.
#[doc(hidden)]
pub fn set_filter(spec: &str) {
    let logger = logger();
    *logger.filter.write().unwrap_or_else(|e| e.into_inner()) = Filter::parse(spec);
}

/// Overrides the output format at runtime. Test-only hook.
#[doc(hidden)]
pub fn set_format(format: Format) {
    let logger = logger();
    *logger.format.write().unwrap_or_else(|e| e.into_inner()) = format;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_grammar() {
        let f = Filter::parse("warn,tracestore=debug,engine=off");
        assert!(f.enabled(Level::Warn, "serve"));
        assert!(!f.enabled(Level::Info, "serve"));
        assert!(f.enabled(Level::Debug, "tracestore"));
        assert!(!f.enabled(Level::Error, "engine"));

        let f = Filter::parse("off");
        assert!(!f.enabled(Level::Error, "anything"));

        // Garbage degrades to the info default, never to silence.
        let f = Filter::parse("banana");
        assert!(f.enabled(Level::Info, "serve"));
        assert!(!f.enabled(Level::Debug, "serve"));

        let f = Filter::parse("");
        assert!(f.enabled(Level::Info, "serve"));
    }

    #[test]
    fn logfmt_quoting() {
        let mut s = String::new();
        logfmt_value(&mut s, "plain");
        assert_eq!(s, "plain");
        let mut s = String::new();
        logfmt_value(&mut s, "has space");
        assert_eq!(s, "\"has space\"");
        let mut s = String::new();
        logfmt_value(&mut s, "a=b \"q\"\nend");
        assert_eq!(s, "\"a=b \\\"q\\\"\\nend\"");
        let mut s = String::new();
        logfmt_value(&mut s, "");
        assert_eq!(s, "\"\"");
    }

    #[test]
    fn render_shapes() {
        let path = "/tmp/store dir";
        let line = render(
            Format::Logfmt,
            Level::Warn,
            "tracestore",
            "cannot write a trace entry",
            &[("path", &path), ("error", &"denied")],
        );
        assert!(line.starts_with("ts="));
        assert!(line.contains(" level=warn target=tracestore msg=\"cannot write a trace entry\""));
        assert!(line.contains(" path=\"/tmp/store dir\" error=denied\n"));

        let line = render(
            Format::Json,
            Level::Info,
            "engine",
            "run",
            &[("key", &"DC-1k")],
        );
        assert!(line.contains("\"level\": \"info\""));
        assert!(line.contains("\"msg\": \"run\""));
        assert!(line.contains("\"key\": \"DC-1k\""));
        assert!(line.ends_with("}\n"));
    }

    #[test]
    fn context_fields_nest_and_pop() {
        assert_eq!(context_value("trace"), None);
        {
            let _g = push_context("trace", "abc");
            assert_eq!(context_value("trace").as_deref(), Some("abc"));
            {
                let _h = push_context("trace", "inner");
                assert_eq!(context_value("trace").as_deref(), Some("inner"));
                let line = render(Format::Logfmt, Level::Info, "t", "m", &[]);
                assert!(line.contains("trace=abc trace=inner"));
            }
            assert_eq!(context_value("trace").as_deref(), Some("abc"));
        }
        assert_eq!(context_value("trace"), None);
    }

    #[test]
    fn trace_ids_are_unique_hex() {
        let a = new_trace_id();
        let b = new_trace_id();
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(a, b);
    }

    #[test]
    fn warn_once_is_per_key() {
        let key_a = format!("test.site:{}", new_trace_id());
        let key_b = format!("test.site:{}", new_trace_id());
        assert!(warn_once(&key_a, "test", "first", &[]));
        assert!(!warn_once(&key_a, "test", "repeat", &[]));
        assert!(warn_once(&key_b, "test", "different path", &[]));
    }
}
