//! The analytical performance model of Section IV-B5 (Equations 1–2).
//!
//! For applications too large to simulate, the paper splits CPI into a
//! non-atomic component and an atomic component:
//!
//! ```text
//! CPI_baseline = CPI_other · (1 − overlap)
//!              + r_atomic · (AIO + Lat_cache + Miss_atomic · Lat_mem)
//! CPI_graphpim = CPI_other · (1 − overlap) + r_atomic · Lat_PIM
//! ```
//!
//! where `CPI_other` is the CPI of non-atomic instructions, `overlap` the
//! fraction of atomic latency hidden by out-of-order execution, `r_atomic`
//! the atomic-instruction rate, `AIO` the in-core atomic overhead,
//! `Lat_cache`/`Lat_mem`/`Lat_PIM` the average cache / memory / PIM-atomic
//! latencies, and `Miss_atomic` the miss rate of atomic instructions.

use crate::metrics::RunMetrics;
use graphpim_sim::config::SimConfig;
use serde::{Deserialize, Serialize};

/// Inputs to the analytical model (Equation 1–2 terms).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalyticalModel {
    /// CPI of non-atomic instructions.
    pub cpi_other: f64,
    /// Fraction of atomic cycles overlapped with other work.
    pub overlap: f64,
    /// Atomic instructions per instruction.
    pub atomic_rate: f64,
    /// In-core atomic instruction overhead, cycles (pipeline freeze +
    /// write-buffer drain).
    pub atomic_overhead: f64,
    /// Average cache checking latency, cycles.
    pub lat_cache: f64,
    /// Average main-memory service latency, cycles.
    pub lat_mem: f64,
    /// Average PIM-atomic round-trip latency, cycles.
    pub lat_pim: f64,
    /// Cache miss rate of atomic instructions.
    pub atomic_miss_rate: f64,
}

impl AnalyticalModel {
    /// Baseline CPI (Equation 1).
    pub fn baseline_cpi(&self) -> f64 {
        self.cpi_other * (1.0 - self.overlap)
            + self.atomic_rate
                * (self.atomic_overhead + self.lat_cache + self.atomic_miss_rate * self.lat_mem)
    }

    /// GraphPIM CPI (Equation 2): the atomic component collapses to the
    /// (overlappable) PIM round trip; no in-core overhead, no cache
    /// checking.
    pub fn graphpim_cpi(&self) -> f64 {
        self.cpi_other * (1.0 - self.overlap) + self.atomic_rate * self.lat_pim
    }

    /// Predicted GraphPIM speedup over baseline.
    pub fn speedup(&self) -> f64 {
        self.baseline_cpi() / self.graphpim_cpi().max(1e-12)
    }

    /// Effective per-atomic PIM cost from design parameters: the idle
    /// atomic round trip (links + vault + DRAM RMW) divided by the
    /// memory-level parallelism the core sustains (MSHRs) — PIM atomics
    /// overlap, so only the occupancy share is visible per instruction.
    pub fn default_lat_pim(config: &SimConfig) -> f64 {
        let ns = config.core.clock_ghz;
        let round_trip = 2.0 * (config.hmc.link_latency_ns * ns)
            + config.hmc.vault_overhead_ns * ns
            + 2.0 * config.hmc.t_cl_ns * ns
            + config.hmc.fu_op_ns * ns;
        round_trip / config.core.mshrs.max(1) as f64
    }

    /// [`default_lat_pim`](Self::default_lat_pim), made aware of the
    /// configured memory backend: a multi-cube chain adds the average
    /// round-trip hop cost (a uniform interleave lands on the mean cube
    /// position), and a DPU backend swaps in the DPU op latency plus the
    /// explicit host↔PIM transfer each way. For the single-cube default
    /// this is exactly `default_lat_pim`.
    pub fn backend_lat_pim(config: &SimConfig) -> f64 {
        use graphpim_sim::backend::BackendConfig;
        let ns = config.core.clock_ghz;
        let mlp = config.core.mshrs.max(1) as f64;
        match &config.backend {
            BackendConfig::SingleCube => Self::default_lat_pim(config),
            BackendConfig::MultiCube(mc) => {
                let mean_hops = (mc.cubes.saturating_sub(1)) as f64 / 2.0;
                Self::default_lat_pim(config) + 2.0 * mean_hops * mc.hop_latency_ns * ns / mlp
            }
            BackendConfig::Dpu(dc) => {
                let derived = SimConfig {
                    hmc: dc.derived_hmc(&config.hmc),
                    backend: BackendConfig::SingleCube,
                    ..config.clone()
                };
                Self::default_lat_pim(&derived) + 2.0 * dc.transfer_ns * ns / mlp
            }
        }
    }

    /// Derives the model inputs from a *baseline* simulation run, the way
    /// the paper derives them from hardware performance counters.
    ///
    /// Only cycles that *visibly* stall the pipeline enter the atomic
    /// component: the fixed in-core serialization (exact, counted by the
    /// core model) plus the MLP-discounted memory service of missing
    /// atomics. Per-operation cache-checking latencies overlap in the
    /// out-of-order window, so they are folded into `overlap`-adjusted
    /// other time rather than charged serially — charging them serially
    /// over-predicts the offloading benefit by an order of magnitude on
    /// cache-resident inputs.
    ///
    /// `lat_pim` comes from the HMC parameters: an idle atomic round trip
    /// largely overlaps with other PIM atomics, so the effective per-atomic
    /// cost is the occupancy divided by the achievable memory-level
    /// parallelism (see [`AnalyticalModel::default_lat_pim`]).
    pub fn from_baseline(metrics: &RunMetrics, lat_pim: f64) -> Self {
        let instr = metrics.core.instructions.max(1) as f64;
        let atomics = metrics.core.host_atomics.max(1) as f64;
        let machine_cycles = metrics.machine_cycles();
        let miss = metrics.candidate_miss_rate();
        // MLP-discounted memory service per missing atomic: cache check +
        // line fetch, overlapped across the MSHR window like other misses.
        let lat_mem_visible = 2.0 * lat_pim;
        let aio = metrics.core.atomic_incore_cycles / atomics;
        let visible_atomic_cycles =
            metrics.core.atomic_incore_cycles + atomics * miss * lat_mem_visible;
        let other_cycles = (machine_cycles - visible_atomic_cycles).max(0.05 * machine_cycles);
        AnalyticalModel {
            cpi_other: other_cycles / instr,
            overlap: 0.0,
            atomic_rate: atomics / instr,
            atomic_overhead: aio,
            // The serially-visible cache component is inside `aio`; the
            // checking latency overlaps.
            lat_cache: 0.0,
            lat_mem: lat_mem_visible,
            lat_pim,
            atomic_miss_rate: miss,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AnalyticalModel {
        AnalyticalModel {
            cpi_other: 1.0,
            overlap: 0.1,
            atomic_rate: 0.05,
            atomic_overhead: 40.0,
            lat_cache: 50.0,
            lat_mem: 120.0,
            lat_pim: 10.0,
            atomic_miss_rate: 0.8,
        }
    }

    #[test]
    fn baseline_cpi_formula() {
        let m = model();
        let expect = 1.0 * 0.9 + 0.05 * (40.0 + 50.0 + 0.8 * 120.0);
        assert!((m.baseline_cpi() - expect).abs() < 1e-12);
    }

    #[test]
    fn graphpim_cpi_formula() {
        let m = model();
        let expect = 0.9 + 0.05 * 10.0;
        assert!((m.graphpim_cpi() - expect).abs() < 1e-12);
    }

    #[test]
    fn speedup_above_one_for_atomic_heavy() {
        assert!(model().speedup() > 1.0);
    }

    #[test]
    fn zero_atomics_means_no_speedup() {
        let mut m = model();
        m.atomic_rate = 0.0;
        assert!((m.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn backend_lat_pim_orders_design_points() {
        use graphpim_sim::backend::{BackendConfig, DpuConfig, MultiCubeConfig};
        let single = SimConfig::hpca_default();
        assert_eq!(
            AnalyticalModel::backend_lat_pim(&single),
            AnalyticalModel::default_lat_pim(&single)
        );
        let mut chained = single.clone();
        chained.backend = BackendConfig::MultiCube(MultiCubeConfig::default());
        assert!(
            AnalyticalModel::backend_lat_pim(&chained) > AnalyticalModel::backend_lat_pim(&single)
        );
        let mut dpu = single.clone();
        dpu.backend = BackendConfig::Dpu(DpuConfig::default());
        // The transfer-bound DPU regime dominates both HMC design points.
        assert!(
            AnalyticalModel::backend_lat_pim(&dpu) > AnalyticalModel::backend_lat_pim(&chained)
        );
    }

    #[test]
    fn higher_miss_rate_means_more_speedup() {
        let mut low = model();
        low.atomic_miss_rate = 0.1;
        let mut high = model();
        high.atomic_miss_rate = 0.9;
        assert!(high.speedup() > low.speedup());
    }
}
