//! System configurations of the evaluation (Section IV-B).

use graphpim_sim::config::SimConfig;
use graphpim_sim::validate::{fraction, ConfigError};
use serde::{Deserialize, Serialize};

/// Which offloading policy the system uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PimMode {
    /// Conventional architecture with HMC as main memory; no instruction
    /// offloading.
    Baseline,
    /// Upper-bound PEI (Ahn et al.): offloading requests that hit in the
    /// cache are processed in the host at cache latency, misses are
    /// offloaded after the cache check, and coherence is assumed free.
    UPei,
    /// GraphPIM: atomics to the PIM memory region bypass the caches and
    /// offload to HMC; all other PMR accesses bypass the caches too
    /// (uncacheable semantics).
    GraphPim,
}

impl PimMode {
    /// The three evaluated configurations, in the paper's legend order.
    pub const ALL: [PimMode; 3] = [PimMode::Baseline, PimMode::UPei, PimMode::GraphPim];

    /// Display label used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            PimMode::Baseline => "Baseline",
            PimMode::UPei => "U-PEI",
            PimMode::GraphPim => "GraphPIM",
        }
    }

    /// Parses a figure label back into a mode (exact inverse of
    /// [`label`](Self::label); used when run keys arrive as strings, e.g.
    /// over the experiment service's API).
    pub fn from_label(label: &str) -> Option<PimMode> {
        PimMode::ALL.into_iter().find(|m| m.label() == label)
    }
}

impl std::fmt::Display for PimMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Full system configuration: substrate parameters + offloading policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Substrate (cores, caches, HMC) parameters.
    pub sim: SimConfig,
    /// Offloading policy.
    pub mode: PimMode,
    /// Whether the HMC implements the paper's proposed FP add/sub atomics
    /// (Section III-C). Required for PRank and BC offloading.
    pub fp_extension: bool,
    /// Probability an unpredictable (data-dependent) branch mispredicts.
    pub mispredict_rate: f64,
    /// RNG seed for the misprediction model.
    pub seed: u64,
    /// Figure 4 micro-benchmark knob: execute every atomic as a plain
    /// read + write (no synchronization cost). Functionally unsound on
    /// real hardware — used only to measure atomic-instruction overhead.
    pub atomics_as_plain: bool,
    /// Hybrid HMC + DRAM deployments (Section III-B): the fraction of the
    /// graph property placed in the HMC (and hence in the PMR). The rest
    /// lives in conventional, cacheable memory and is processed
    /// host-side. 1.0 = the paper's all-HMC system.
    pub hmc_property_fraction: f64,
}

impl SystemConfig {
    /// The paper's Table IV system under the given policy, with the FP
    /// extension enabled (as in the BC/PRank bars of Figure 7).
    pub fn hpca(mode: PimMode) -> Self {
        SystemConfig {
            sim: SimConfig::hpca_default(),
            mode,
            fp_extension: true,
            mispredict_rate: 0.12,
            seed: 12345,
            atomics_as_plain: false,
            hmc_property_fraction: 1.0,
        }
    }

    /// Runs against a different memory backend (multi-cube chain,
    /// UPMEM-style DPU; see [`graphpim_sim::backend`]).
    pub fn with_backend(mut self, backend: graphpim_sim::backend::BackendConfig) -> Self {
        self.sim.backend = backend;
        self
    }

    /// Hybrid-memory variant: only `fraction` of the property lives in the
    /// HMC-backed PMR (Section III-B discussion).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn with_hmc_property_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        self.hmc_property_fraction = fraction;
        self
    }

    /// Figure 4 variant: atomics execute as plain read + write.
    pub fn with_atomics_as_plain(mut self) -> Self {
        self.atomics_as_plain = true;
        self
    }

    /// Disables the FP extension (plain HMC 2.0 command set).
    pub fn without_fp_extension(mut self) -> Self {
        self.fp_extension = false;
        self
    }

    /// Overrides the number of atomic functional units per vault (Fig. 11).
    pub fn with_fus_per_vault(mut self, fus: usize) -> Self {
        self.sim.hmc.fus_per_vault = fus;
        self
    }

    /// Scales the per-link bandwidth (Fig. 13: 0.5 = half, 2.0 = double).
    pub fn with_link_bandwidth_factor(mut self, factor: f64) -> Self {
        self.sim.hmc.link_gbps *= factor;
        self
    }

    /// Validates the substrate slices plus the system-level fields.
    ///
    /// Invoked by [`crate::system::SystemSim::new`] (so a bad
    /// configuration fails before any simulation) and by the experiment
    /// engine's key resolution. Note that `fp_extension` being off while
    /// a workload emits FP atomics is *not* a config error — it is a
    /// legal configuration the paper evaluates (those atomics execute
    /// host-side); the run-invariant layer instead rejects runs where FP
    /// atomics reached the cube without the extension.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.sim.validate()?;
        fraction("mispredict_rate", self.mispredict_rate)?;
        fraction("hmc_property_fraction", self.hmc_property_fraction)?;
        Ok(())
    }

    /// Non-fatal configuration concerns: legal values the simulation will
    /// not honor exactly. Currently one check — the POU quantizes
    /// `hmc_property_fraction` (see [`crate::pou::quantize_hybrid_fraction`]),
    /// and a shift of the effective HMC share beyond `5e-4` is worth
    /// telling the user about. [`crate::system::SystemSim::new`] prints
    /// these to stderr.
    pub fn validation_warnings(&self) -> Vec<String> {
        const WARN_SHIFT: f64 = 5e-4;
        let mut warnings = Vec::new();
        let err = crate::pou::hybrid_quantization_error(self.hmc_property_fraction);
        if err > WARN_SHIFT {
            warnings.push(format!(
                "hmc_property_fraction {} quantizes to a share {:.6} away \
                 from the configured value (threshold {WARN_SHIFT})",
                self.hmc_property_fraction, err
            ));
        }
        warnings
    }

    /// A smaller configuration for fast tests (2 cores, tiny caches).
    pub fn tiny(mode: PimMode) -> Self {
        SystemConfig {
            sim: SimConfig::test_tiny(),
            mode,
            fp_extension: true,
            mispredict_rate: 0.12,
            seed: 12345,
            atomics_as_plain: false,
            hmc_property_fraction: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_figures() {
        assert_eq!(PimMode::Baseline.label(), "Baseline");
        assert_eq!(PimMode::UPei.label(), "U-PEI");
        assert_eq!(PimMode::GraphPim.label(), "GraphPIM");
    }

    #[test]
    fn hpca_defaults() {
        let c = SystemConfig::hpca(PimMode::GraphPim);
        assert_eq!(c.sim.core.cores, 16);
        assert!(c.fp_extension);
    }

    #[test]
    fn validate_covers_system_fields() {
        for mode in PimMode::ALL {
            SystemConfig::hpca(mode).validate().expect("hpca valid");
            SystemConfig::tiny(mode).validate().expect("tiny valid");
        }
        let mut c = SystemConfig::hpca(PimMode::GraphPim);
        c.mispredict_rate = 1.5;
        assert!(c
            .validate()
            .unwrap_err()
            .to_string()
            .contains("mispredict_rate"));
        let mut c = SystemConfig::hpca(PimMode::GraphPim);
        c.hmc_property_fraction = -0.1;
        assert!(c.validate().is_err());
        let mut c = SystemConfig::hpca(PimMode::GraphPim);
        c.sim.core.issue_width = 0;
        assert!(c.validate().is_err(), "substrate errors must propagate");
        // fp off is a legal config, not a config error.
        SystemConfig::hpca(PimMode::GraphPim)
            .without_fp_extension()
            .validate()
            .expect("fp-off is legal");
    }

    #[test]
    fn quantization_warnings_are_quiet_at_per_100k() {
        // The per-100k quantum bounds the quantization error at 1e-5,
        // well under the 5e-4 warning threshold, for any legal fraction.
        for f in [0.0, 0.0004, 0.123456, 0.5, 0.9996, 1.0] {
            let c = SystemConfig::hpca(PimMode::GraphPim).with_hmc_property_fraction(f);
            assert!(c.validation_warnings().is_empty(), "fraction {f}");
        }
    }

    #[test]
    fn backend_knob_applies_and_validates() {
        use graphpim_sim::backend::{BackendConfig, MultiCubeConfig};
        let c = SystemConfig::hpca(PimMode::GraphPim)
            .with_backend(BackendConfig::MultiCube(MultiCubeConfig::default()));
        assert_eq!(c.sim.backend.label(), "multi-cube");
        c.validate().expect("default chain validates");
        let bad = SystemConfig::hpca(PimMode::GraphPim).with_backend(BackendConfig::MultiCube(
            MultiCubeConfig {
                cubes: 0,
                ..MultiCubeConfig::default()
            },
        ));
        assert!(bad.validate().is_err());
    }

    #[test]
    fn knobs_apply() {
        let c = SystemConfig::hpca(PimMode::GraphPim)
            .without_fp_extension()
            .with_fus_per_vault(1)
            .with_link_bandwidth_factor(0.5);
        assert!(!c.fp_extension);
        assert_eq!(c.sim.hmc.fus_per_vault, 1);
        assert_eq!(c.sim.hmc.link_gbps, 60.0);
    }
}
