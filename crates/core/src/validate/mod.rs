//! The simulation validation layer: conservation invariants over finished
//! runs, config/metrics consistency checks, and the sim-vs-analytic
//! [differential harness](differential).
//!
//! Three kinds of checks live here:
//!
//! * **Config validation** — typed, unconditional; implemented in
//!   [`graphpim_sim::validate`] (re-exported as [`ConfigError`]) plus
//!   [`crate::config::SystemConfig::validate`] for the system-level
//!   fields, and invoked by every constructor and figure driver.
//! * **Run invariants** — [`check_run`] and [`check_run_config`] enforce
//!   the conservation laws every finished [`RunMetrics`] must satisfy
//!   (offload accounting, memory-request conservation, backend-internal
//!   totals, cycle-breakdown conservation, live-counter coherence).
//!   The memory-side laws are stated over the backend's *aggregated*
//!   [`graphpim_sim::hmc::HmcStats`], so they hold unchanged for every
//!   [`graphpim_sim::backend::MemoryBackend`] — "vault" means global
//!   vault index for a multi-cube chain and rank for the DPU backend.
//!   [`crate::system::SystemSim`] runs them on every `into_metrics` when
//!   [`validation_enabled`] — on by default under `cargo test` (debug
//!   builds) and in CI (`GRAPHPIM_VALIDATE=1`), opt-in for release
//!   benches.
//! * **Differential validation** — [`differential`] runs every kernel
//!   through both the interval simulator and the Equation 1–2 analytic
//!   model and fails when they diverge beyond documented tolerances.
//!
//! See `VALIDATION.md` at the repository root for the full invariant
//! catalog and the reasoning behind each law.

pub mod differential;

use crate::config::{PimMode, SystemConfig};
use crate::metrics::RunMetrics;
use graphpim_sim::stats::CycleBreakdown;
use graphpim_sim::telemetry::CounterRegistry;

pub use graphpim_sim::validate::{validation_enabled, ConfigError};

/// One violated invariant, with the numbers that broke it.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Stable invariant identifier (e.g. `"offload-accounting"`).
    pub invariant: &'static str,
    /// Human-readable description with the offending values.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// Breakdown fraction sums within this of 1.0 count as conserved.
const BREAKDOWN_SUM_TOLERANCE: f64 = 1e-6;

/// Relative tolerance for attribution closure (sums of exact per-event
/// floats; only association-order rounding separates the two sides).
const ATTRIB_CLOSE_TOLERANCE: f64 = 1e-6;

/// Whether `a` and `b` agree within [`ATTRIB_CLOSE_TOLERANCE`]
/// relative to their magnitude (absolute near zero).
fn attrib_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= ATTRIB_CLOSE_TOLERANCE * a.abs().max(b.abs()).max(1.0)
}

fn check(violations: &mut Vec<Violation>, invariant: &'static str, ok: bool, detail: String) {
    if !ok {
        violations.push(Violation { invariant, detail });
    }
}

/// Checks every conservation law a finished run must satisfy.
///
/// `counters` is the registry pulled from the *live* components (the same
/// pull path the trace exporter snapshots); the metrics' own
/// [`RunMetrics::counter_registry`] must agree with it key for key.
/// Returns every violated invariant — empty means the run conserves.
pub fn check_run(m: &RunMetrics, counters: &CounterRegistry) -> Vec<Violation> {
    let mut v = Vec::new();

    // Offload accounting: the cube sees exactly the atomics the system
    // offloaded, and every core-retired PIM atomic is either an offload or
    // a U-PEI host-side execution.
    check(
        &mut v,
        "offload-accounting",
        m.hmc.atomics == m.offloaded_atomics,
        format!(
            "hmc.atomics ({}) != offloaded_atomics ({})",
            m.hmc.atomics, m.offloaded_atomics
        ),
    );
    check(
        &mut v,
        "offload-accounting",
        m.core.pim_atomics == m.offloaded_atomics + m.host_pei_atomics,
        format!(
            "core.pim_atomics ({}) != offloaded ({}) + host_pei ({})",
            m.core.pim_atomics, m.offloaded_atomics, m.host_pei_atomics
        ),
    );

    // Candidate accounting: resolved candidates (offloaded, executed
    // host-side by U-PEI, or degraded to a bus-locked uncached RMW) never
    // exceed the candidates seen; under GraphPIM every candidate resolves
    // one of those three ways, so the ledger balances exactly.
    let resolved = m.offloaded_atomics + m.host_pei_atomics + m.uncached_atomics;
    check(
        &mut v,
        "candidate-accounting",
        resolved <= m.offload_candidates,
        format!(
            "resolved candidates ({resolved}) exceed offload_candidates ({})",
            m.offload_candidates
        ),
    );
    if m.mode == PimMode::GraphPim {
        check(
            &mut v,
            "candidate-accounting",
            resolved == m.offload_candidates,
            format!(
                "GraphPIM must resolve every candidate: offloaded ({}) + uncached ({}) \
                 != candidates ({})",
                m.offloaded_atomics, m.uncached_atomics, m.offload_candidates
            ),
        );
    }
    check(
        &mut v,
        "candidate-accounting",
        m.candidate_cache_hits <= m.offload_candidates,
        format!(
            "candidate_cache_hits ({}) exceed offload_candidates ({})",
            m.candidate_cache_hits, m.offload_candidates
        ),
    );

    // Mode sanity: counters that can only move under specific policies.
    match m.mode {
        PimMode::Baseline => check(
            &mut v,
            "mode-sanity",
            m.offloaded_atomics == 0
                && m.host_pei_atomics == 0
                && m.uncached_reads == 0
                && m.uncached_writes == 0
                && m.uncached_atomics == 0,
            format!(
                "Baseline run took PIM paths: offloaded {}, host_pei {}, uncached r/w/a {}/{}/{}",
                m.offloaded_atomics,
                m.host_pei_atomics,
                m.uncached_reads,
                m.uncached_writes,
                m.uncached_atomics
            ),
        ),
        PimMode::UPei => check(
            &mut v,
            "mode-sanity",
            m.uncached_reads == 0 && m.uncached_writes == 0 && m.uncached_atomics == 0,
            format!(
                "U-PEI keeps data cacheable but saw uncached r/w/a {}/{}/{}",
                m.uncached_reads, m.uncached_writes, m.uncached_atomics
            ),
        ),
        PimMode::GraphPim => check(
            &mut v,
            "mode-sanity",
            m.host_pei_atomics == 0,
            format!(
                "GraphPIM has no locality-dependent path but host_pei_atomics = {}",
                m.host_pei_atomics
            ),
        ),
    }

    // Memory-request conservation: every core memory op either probed the
    // cache hierarchy (exactly one L1 hit or miss) or bypassed it (uncached
    // PMR reads/writes, bus-locked atomics, and — under GraphPIM only —
    // direct offloads; U-PEI offloads probe the caches first).
    let hierarchy_accesses = m.l1.hits + m.l1.misses;
    let bypasses = m.uncached_reads
        + m.uncached_writes
        + m.uncached_atomics
        + if m.mode == PimMode::GraphPim {
            m.offloaded_atomics
        } else {
            0
        };
    check(
        &mut v,
        "memory-conservation",
        hierarchy_accesses + bypasses == m.core.memory_ops,
        format!(
            "L1 hits+misses ({hierarchy_accesses}) + bypasses ({bypasses}) \
             != core.memory_ops ({})",
            m.core.memory_ops
        ),
    );

    // Backend-internal totals: per-vault and per-category histograms are
    // decompositions of the same scalar counters. These hold for any
    // memory backend because the trait contract requires aggregated
    // stats (vault buckets are ranks on the DPU backend, global vault
    // indices on a chain); the invariant ids keep the historical
    // "hmc-totals" name.
    let vault_atomics: u64 = m.hmc.atomics_per_vault.iter().sum();
    check(
        &mut v,
        "hmc-totals",
        vault_atomics == m.hmc.atomics,
        format!(
            "sum(atomics_per_vault) ({vault_atomics}) != hmc.atomics ({})",
            m.hmc.atomics
        ),
    );
    let category_atomics: u64 = m.hmc.atomics_by_category.iter().sum();
    check(
        &mut v,
        "hmc-totals",
        category_atomics == m.hmc.atomics,
        format!(
            "sum(atomics_by_category) ({category_atomics}) != hmc.atomics ({})",
            m.hmc.atomics
        ),
    );
    check(
        &mut v,
        "hmc-totals",
        m.hmc.fp_atomics <= m.hmc.atomics,
        format!(
            "fp_atomics ({}) exceed atomics ({})",
            m.hmc.fp_atomics, m.hmc.atomics
        ),
    );
    check(
        &mut v,
        "hmc-totals",
        m.hmc.reads + m.hmc.writes + m.hmc.atomics == m.hmc.dram_accesses,
        format!(
            "reads ({}) + writes ({}) + atomics ({}) != dram_accesses ({})",
            m.hmc.reads, m.hmc.writes, m.hmc.atomics, m.hmc.dram_accesses
        ),
    );
    let vault_requests: u64 = m.hmc.requests_per_vault.iter().sum();
    check(
        &mut v,
        "hmc-totals",
        vault_requests == m.hmc.dram_accesses,
        format!(
            "sum(requests_per_vault) ({vault_requests}) != dram_accesses ({})",
            m.hmc.dram_accesses
        ),
    );
    for (vault, (&requests, &atomics)) in m
        .hmc
        .requests_per_vault
        .iter()
        .zip(&m.hmc.atomics_per_vault)
        .enumerate()
    {
        check(
            &mut v,
            "hmc-totals",
            atomics <= requests,
            format!("vault {vault}: atomics ({atomics}) exceed requests ({requests})"),
        );
    }
    check(
        &mut v,
        "hmc-totals",
        m.hmc.dram_activations <= m.hmc.dram_accesses,
        format!(
            "dram_activations ({}) exceed dram_accesses ({})",
            m.hmc.dram_activations, m.hmc.dram_accesses
        ),
    );

    // Cycle-breakdown conservation: the attributed fractions must fit in
    // the elapsed cycles, each lie in [0, 1], and the four sum to ~1.
    if m.total_cycles > 0.0 {
        match CycleBreakdown::try_from_stats(&m.core, m.issue_width, m.machine_cycles()) {
            Err(e) => check(&mut v, "cycle-breakdown", false, e.to_string()),
            Ok(b) => {
                let fractions = [
                    ("retiring", b.retiring),
                    ("frontend", b.frontend),
                    ("bad_speculation", b.bad_speculation),
                    ("backend", b.backend),
                ];
                for (name, f) in fractions {
                    check(
                        &mut v,
                        "cycle-breakdown",
                        (0.0..=1.0 + BREAKDOWN_SUM_TOLERANCE).contains(&f),
                        format!("{name} fraction {f} outside [0, 1]"),
                    );
                }
                check(
                    &mut v,
                    "cycle-breakdown",
                    (b.sum() - 1.0).abs() <= BREAKDOWN_SUM_TOLERANCE,
                    format!("breakdown fractions sum to {} != 1", b.sum()),
                );
            }
        }
    }

    // Counter coherence: the registry pulled from the live components must
    // agree, key for key, with the finalized metrics' own registry (this is
    // what guarantees trace snapshots match the figures). All counters are
    // u64s far below 2^53 or exact cycle floats, so equality is exact.
    let finalized = m.counter_registry();
    for (key, value) in finalized.iter() {
        match counters.get(key) {
            Some(live) if live.to_bits() == value.to_bits() => {}
            Some(live) => check(
                &mut v,
                "counter-coherence",
                false,
                format!("{key}: live registry has {live}, finalized metrics have {value}"),
            ),
            None => check(
                &mut v,
                "counter-coherence",
                false,
                format!("{key}: present in finalized metrics, missing from live registry"),
            ),
        }
    }

    // Vault-histogram coherence (only when per-vault telemetry was on):
    // each vault's queue-wait histogram samples every serviced request and
    // the FU-busy histogram samples every atomic, so the sample counts must
    // equal the per-vault request/atomic counters.
    for (vault, (&requests, &atomics)) in m
        .hmc
        .requests_per_vault
        .iter()
        .zip(&m.hmc.atomics_per_vault)
        .enumerate()
    {
        if let Some(sampled) = counters.get(&format!("hmc.vault{vault:02}.queue_wait.count")) {
            check(
                &mut v,
                "vault-histograms",
                sampled == requests as f64,
                format!(
                    "vault {vault}: queue_wait sampled {sampled} transactions, \
                     counters saw {requests}"
                ),
            );
        }
        if let Some(sampled) = counters.get(&format!("hmc.vault{vault:02}.fu_busy.count")) {
            check(
                &mut v,
                "vault-histograms",
                sampled == atomics as f64,
                format!("vault {vault}: fu_busy sampled {sampled} atomics, counters saw {atomics}"),
            );
        }
    }

    // Attribution closure (only when cycle attribution was on): the
    // `attrib.*` ledgers must telescope to the quantities the metrics
    // already account — every bucket named by CycleBreakdown agrees with
    // its CoreStats source, the buckets sum to the total busy time, and
    // busy + idle covers the whole machine. The cache and HMC ledgers
    // must each equal the sum of their own components.
    if let Some(busy) = counters.get("attrib.core.busy") {
        let get = |key: &str| counters.get(key).unwrap_or(0.0);
        let idle = get("attrib.core.idle");
        let machine = get("attrib.core.machine_cycles");
        check(
            &mut v,
            "attrib-closure",
            attrib_close(machine, m.machine_cycles()),
            format!(
                "attrib.core.machine_cycles ({machine}) != metrics machine_cycles ({})",
                m.machine_cycles()
            ),
        );
        check(
            &mut v,
            "attrib-closure",
            attrib_close(busy + idle, machine),
            format!("busy ({busy}) + idle ({idle}) != machine cycles ({machine})"),
        );
        let bucket_sum = get("attrib.core.issue")
            + get("attrib.core.frontend")
            + get("attrib.core.bad_speculation")
            + get("attrib.core.dep_wait")
            + get("attrib.core.rob_stall")
            + get("attrib.core.mshr_wait")
            + get("attrib.core.atomic_serialize")
            + get("attrib.core.barrier_wait")
            + get("attrib.core.drain_wait");
        check(
            &mut v,
            "attrib-closure",
            attrib_close(bucket_sum, busy),
            format!("core buckets sum to {bucket_sum} != busy ({busy})"),
        );
        // The buckets CycleBreakdown also derives must agree with it.
        for (key, expected) in [
            ("attrib.core.issue", m.core.retiring_cycles(m.issue_width)),
            ("attrib.core.frontend", m.core.frontend_cycles),
            ("attrib.core.bad_speculation", m.core.badspec_cycles),
            ("attrib.core.atomic_serialize", m.core.atomic_incore_cycles),
        ] {
            let got = get(key);
            check(
                &mut v,
                "attrib-closure",
                attrib_close(got, expected),
                format!("{key} ({got}) != CycleBreakdown source ({expected})"),
            );
        }
        for prefix in ["attrib.cache", "attrib.hmc"] {
            let total = get(&format!("{prefix}.total"));
            let components: f64 = counters
                .with_prefix(&format!("{prefix}."))
                .filter(|(key, _)| !key.ends_with(".total"))
                .map(|(_, value)| value)
                .sum();
            check(
                &mut v,
                "attrib-closure",
                attrib_close(components, total),
                format!("{prefix} components sum to {components} != total ({total})"),
            );
        }
    }

    v
}

/// Checks the laws that need the run's configuration: the FP-extension
/// gate and config/metrics field consistency.
pub fn check_run_config(m: &RunMetrics, config: &SystemConfig) -> Vec<Violation> {
    let mut v = Vec::new();
    if let Err(e) = config.validate() {
        check(&mut v, "config", false, e.to_string());
    }
    check(
        &mut v,
        "fp-extension",
        m.hmc.fp_atomics == 0 || config.fp_extension,
        format!(
            "{} FP atomics executed in the cube without the HMC FP extension",
            m.hmc.fp_atomics
        ),
    );
    check(
        &mut v,
        "config-consistency",
        m.mode == config.mode,
        format!("metrics mode {:?} != config mode {:?}", m.mode, config.mode),
    );
    check(
        &mut v,
        "config-consistency",
        m.cores == config.sim.core.cores,
        format!(
            "metrics cores ({}) != config cores ({})",
            m.cores, config.sim.core.cores
        ),
    );
    check(
        &mut v,
        "config-consistency",
        m.issue_width == config.sim.core.issue_width,
        format!(
            "metrics issue_width ({}) != config issue_width ({})",
            m.issue_width, config.sim.core.issue_width
        ),
    );
    // Backend topology: the aggregated per-vault vectors must cover
    // exactly the configured backend's bucket count (vaults, cubes ×
    // vaults, or ranks — see `BackendConfig::vault_buckets`).
    let buckets = config.sim.backend.vault_buckets(&config.sim);
    check(
        &mut v,
        "backend-topology",
        m.hmc.requests_per_vault.len() == buckets && m.hmc.atomics_per_vault.len() == buckets,
        format!(
            "per-vault vectors have {} / {} buckets; {} backend expects {buckets}",
            m.hmc.requests_per_vault.len(),
            m.hmc.atomics_per_vault.len(),
            config.sim.backend.label()
        ),
    );
    v
}

/// Panics with every violation listed if `violations` is non-empty.
/// `what` names the run for the panic message.
pub fn enforce(what: &str, violations: &[Violation]) {
    if violations.is_empty() {
        return;
    }
    let list: Vec<String> = violations.iter().map(Violation::to_string).collect();
    panic!(
        "run invariants violated for {what} ({} violation{}):\n  {}",
        violations.len(),
        if violations.len() == 1 { "" } else { "s" },
        list.join("\n  ")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphpim_sim::cpu::CoreStats;
    use graphpim_sim::hmc::HmcStats;
    use graphpim_sim::mem::hierarchy::LevelCounts;

    /// A self-consistent Baseline run: 100 memory ops all through the
    /// hierarchy, no PIM activity, balanced HMC totals.
    fn consistent() -> RunMetrics {
        RunMetrics {
            mode: PimMode::Baseline,
            cores: 2,
            issue_width: 4,
            total_cycles: 1000.0,
            core: CoreStats {
                instructions: 400,
                memory_ops: 100,
                host_atomics: 10,
                frontend_cycles: 20.0,
                badspec_cycles: 30.0,
                ..CoreStats::default()
            },
            l1: LevelCounts {
                hits: 90,
                misses: 10,
            },
            l2: LevelCounts { hits: 6, misses: 4 },
            l3: LevelCounts { hits: 1, misses: 3 },
            hmc: HmcStats {
                reads: 3,
                writes: 1,
                atomics: 0,
                dram_accesses: 4,
                dram_activations: 2,
                requests_per_vault: vec![3, 1],
                atomics_per_vault: vec![0, 0],
                ..HmcStats::default()
            },
            offload_candidates: 8,
            candidate_cache_hits: 5,
            offloaded_atomics: 0,
            host_pei_atomics: 0,
            uncached_reads: 0,
            uncached_writes: 0,
            uncached_atomics: 0,
            memory_service_cycles: 100.0,
            trace_export_failed: false,
        }
    }

    fn violations_of(m: &RunMetrics) -> Vec<Violation> {
        check_run(m, &m.counter_registry())
    }

    #[test]
    fn consistent_run_passes() {
        assert_eq!(violations_of(&consistent()), vec![]);
    }

    #[test]
    fn offload_imbalance_detected() {
        let mut m = consistent();
        m.hmc.atomics = 3; // cube saw atomics nobody offloaded
        let v = violations_of(&m);
        assert!(
            v.iter().any(|x| x.invariant == "offload-accounting"),
            "{v:?}"
        );
    }

    #[test]
    fn graphpim_must_resolve_every_candidate() {
        let mut m = consistent();
        m.mode = PimMode::GraphPim;
        // 8 candidates, only 5 offloaded, none uncached: 3 vanished.
        m.offloaded_atomics = 5;
        m.core.pim_atomics = 5;
        m.hmc.atomics = 5;
        m.hmc.atomics_per_vault = vec![5, 0];
        m.hmc.atomics_by_category = [5, 0, 0, 0, 0];
        m.hmc.dram_accesses += 5;
        m.hmc.requests_per_vault = vec![8, 1];
        // Keep memory conservation balanced for the offload bypass.
        m.core.memory_ops += 5;
        let v = violations_of(&m);
        assert!(
            v.iter()
                .any(|x| x.invariant == "candidate-accounting" && x.detail.contains("GraphPIM")),
            "{v:?}"
        );
    }

    #[test]
    fn baseline_with_pim_counters_is_insane() {
        let mut m = consistent();
        m.uncached_reads = 1;
        m.core.memory_ops += 1; // keep conservation green; isolate the mode check
        let v = violations_of(&m);
        assert!(v.iter().any(|x| x.invariant == "mode-sanity"), "{v:?}");
    }

    #[test]
    fn lost_memory_request_detected() {
        let mut m = consistent();
        m.core.memory_ops += 1; // one op never reached cache or cube
        let v = violations_of(&m);
        assert!(
            v.iter().any(|x| x.invariant == "memory-conservation"),
            "{v:?}"
        );
    }

    #[test]
    fn vault_request_split_must_sum() {
        let mut m = consistent();
        m.hmc.requests_per_vault = vec![3, 0]; // lost one request
        let v = violations_of(&m);
        assert!(
            v.iter()
                .any(|x| x.invariant == "hmc-totals" && x.detail.contains("requests_per_vault")),
            "{v:?}"
        );
    }

    #[test]
    fn vault_atomics_bounded_by_requests() {
        let mut m = consistent();
        m.hmc.atomics = 2;
        m.hmc.atomics_per_vault = vec![0, 2]; // vault 1 has 1 request but 2 atomics
        m.hmc.atomics_by_category = [2, 0, 0, 0, 0];
        m.hmc.reads = 1;
        m.offloaded_atomics = 2;
        m.core.pim_atomics = 2;
        m.mode = PimMode::UPei;
        let v = violations_of(&m);
        assert!(
            v.iter()
                .any(|x| x.invariant == "hmc-totals" && x.detail.contains("vault 1")),
            "{v:?}"
        );
    }

    #[test]
    fn breakdown_overshoot_is_reported_not_panicked() {
        let mut m = consistent();
        // Retiring alone would be 4000/4 = 1000 cycles/core over 2000
        // machine cycles... make it overshoot: 16000 instructions.
        m.core.instructions = 16000;
        let v = violations_of(&m);
        assert!(v.iter().any(|x| x.invariant == "cycle-breakdown"), "{v:?}");
    }

    #[test]
    fn counter_mismatch_detected() {
        let m = consistent();
        let mut live = m.counter_registry();
        live.record("core.instructions", 1.0); // live disagrees
        let v = check_run(&m, &live);
        assert!(
            v.iter()
                .any(|x| x.invariant == "counter-coherence"
                    && x.detail.contains("core.instructions")),
            "{v:?}"
        );
    }

    #[test]
    fn vault_histogram_count_mismatch_detected() {
        let m = consistent();
        let mut live = m.counter_registry();
        // Vault 0 serviced 3 requests but its histogram sampled 2.
        live.record("hmc.vault00.queue_wait.count", 2.0);
        let v = check_run(&m, &live);
        assert!(v.iter().any(|x| x.invariant == "vault-histograms"), "{v:?}");
    }

    #[test]
    fn coherent_attribution_passes() {
        let m = consistent();
        let mut live = m.counter_registry();
        // A ledger that telescopes: buckets sum to busy, busy + idle spans
        // the machine, and the CycleBreakdown-source buckets agree with
        // CoreStats (retiring = 400 instr / 4-wide = 100 cycles).
        live.record("attrib.core.issue", 100.0);
        live.record("attrib.core.frontend", 20.0);
        live.record("attrib.core.bad_speculation", 30.0);
        live.record("attrib.core.busy", 150.0);
        live.record("attrib.core.idle", 1850.0);
        live.record("attrib.core.machine_cycles", 2000.0);
        let v = check_run(&m, &live);
        assert!(!v.iter().any(|x| x.invariant == "attrib-closure"), "{v:?}");
    }

    #[test]
    fn attribution_that_does_not_close_is_detected() {
        let m = consistent();
        let mut live = m.counter_registry();
        live.record("attrib.core.busy", 900.0);
        live.record("attrib.core.idle", 50.0);
        live.record("attrib.core.machine_cycles", 2000.0);
        let v = check_run(&m, &live);
        assert!(v.iter().any(|x| x.invariant == "attrib-closure"), "{v:?}");
    }

    #[test]
    fn attrib_component_sum_mismatch_detected() {
        let m = consistent();
        let mut live = m.counter_registry();
        live.record("attrib.core.issue", 100.0);
        live.record("attrib.core.frontend", 20.0);
        live.record("attrib.core.bad_speculation", 30.0);
        live.record("attrib.core.busy", 150.0);
        live.record("attrib.core.idle", 1850.0);
        live.record("attrib.core.machine_cycles", 2000.0);
        // An HMC ledger whose parts do not sum to its total.
        live.record("attrib.hmc.link", 10.0);
        live.record("attrib.hmc.dram", 10.0);
        live.record("attrib.hmc.total", 50.0);
        let v = check_run(&m, &live);
        assert!(
            v.iter()
                .any(|x| x.invariant == "attrib-closure" && x.detail.contains("attrib.hmc")),
            "{v:?}"
        );
    }

    #[test]
    fn fp_atomics_require_extension() {
        let mut m = consistent();
        m.mode = PimMode::GraphPim;
        m.hmc.fp_atomics = 1;
        let config = SystemConfig::hpca(PimMode::GraphPim).without_fp_extension();
        let v = check_run_config(&m, &config);
        assert!(v.iter().any(|x| x.invariant == "fp-extension"), "{v:?}");
        let ok = check_run_config(&m, &SystemConfig::hpca(PimMode::GraphPim));
        assert!(!ok.iter().any(|x| x.invariant == "fp-extension"), "{ok:?}");
    }

    #[test]
    fn config_metrics_consistency() {
        let m = consistent();
        let config = SystemConfig::hpca(PimMode::Baseline);
        let v = check_run_config(&m, &config);
        // hpca has 16 cores, the sample has 2.
        assert!(
            v.iter().any(|x| x.invariant == "config-consistency"),
            "{v:?}"
        );
    }

    #[test]
    fn backend_topology_mismatch_detected() {
        // The sample metrics expose 2 vault buckets; hpca's single cube
        // has 32, and a default 4-cube chain expects 128.
        let m = consistent();
        let config = SystemConfig::hpca(PimMode::Baseline);
        let v = check_run_config(&m, &config);
        assert!(
            v.iter()
                .any(|x| x.invariant == "backend-topology" && x.detail.contains("expects 32")),
            "{v:?}"
        );
        let chained = SystemConfig::hpca(PimMode::Baseline).with_backend(
            graphpim_sim::backend::BackendConfig::MultiCube(
                graphpim_sim::backend::MultiCubeConfig::default(),
            ),
        );
        let v = check_run_config(&m, &chained);
        assert!(
            v.iter()
                .any(|x| x.invariant == "backend-topology" && x.detail.contains("expects 128")),
            "{v:?}"
        );
        // Matching bucket counts pass.
        let mut m32 = consistent();
        m32.hmc.requests_per_vault = vec![0; 32];
        m32.hmc.atomics_per_vault = vec![0; 32];
        m32.hmc.requests_per_vault[0] = 3;
        m32.hmc.requests_per_vault[1] = 1;
        let v = check_run_config(&m32, &config);
        assert!(
            !v.iter().any(|x| x.invariant == "backend-topology"),
            "{v:?}"
        );
    }

    #[test]
    #[should_panic(expected = "run invariants violated")]
    fn enforce_panics_with_violations() {
        enforce(
            "test run",
            &[Violation {
                invariant: "test",
                detail: "boom".into(),
            }],
        );
    }

    #[test]
    fn enforce_is_silent_when_clean() {
        enforce("test run", &[]);
    }
}
