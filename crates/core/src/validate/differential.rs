//! The sim-vs-analytic differential harness.
//!
//! Runs every evaluation kernel through both the interval simulator and
//! the Equation 1–2 analytical model (the Figure 16 comparison) and turns
//! the comparison into a pass/fail gate with documented tolerances:
//!
//! * every kernel *within the model's scope* must agree with simulation
//!   to within [`Tolerance::per_kernel`] relative error;
//! * the mean relative error over scope kernels must stay under
//!   [`Tolerance::mean`];
//! * directional agreement: whenever simulation reports a clear GraphPIM
//!   win ([`DIRECTION_MIN_SPEEDUP`]) on a scope kernel, the model must
//!   also predict a win;
//! * rank-order agreement: for any pair of scope kernels whose simulated
//!   speedups differ by more than [`RANK_MARGIN`]×, the model must order
//!   the pair the same way.
//!
//! kCore is outside the model's scope: its speedup at small scales comes
//! from cold-miss behavior rather than atomic offloading, which Equation 1
//! deliberately does not capture (same exclusion as the Figure 16
//! driver's directional test). Out-of-scope kernels still appear in the
//! report, but only inform the reader.
//!
//! `cargo run --bin diff_check` (in `graphpim-bench`) runs this harness
//! and writes the per-kernel deltas as a JSON report; CI runs it at the
//! 1k scale and uploads the report as an artifact.

use crate::experiments::{fig16, Experiments};
use std::fmt::Write as _;

/// Kernels whose GraphPIM speedup the CPI model is expected to predict
/// (atomic-offload dominated). See the module docs for why kCore is out.
pub const MODEL_SCOPE: [&str; 7] = ["BFS", "CComp", "DC", "SSSP", "TC", "BC", "PRank"];

/// A simulated speedup this clear-cut must be predicted as a win
/// (`analytical > 1.0`) by the model.
pub const DIRECTION_MIN_SPEEDUP: f64 = 1.5;

/// Pairs of scope kernels whose simulated speedups differ by more than
/// this factor must be ranked the same way by the model.
pub const RANK_MARGIN: f64 = 1.5;

/// Divergence limits of the harness. The defaults were calibrated
/// empirically against the 1k-scale LDBC inputs (see `VALIDATION.md`);
/// the paper reports a 7.72% mean model error at LDBC-1M, and errors grow
/// at smoke scales where fixed costs are less amortized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Maximum relative error `|analytical - simulated| / simulated` for
    /// any single scope kernel.
    pub per_kernel: f64,
    /// Maximum mean relative error across scope kernels.
    pub mean: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            per_kernel: 0.60,
            mean: 0.35,
        }
    }
}

/// One kernel's sim/model pair, judged.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDelta {
    /// Kernel name.
    pub workload: String,
    /// Simulated GraphPIM speedup over baseline.
    pub simulated: f64,
    /// Analytical-model speedup.
    pub analytical: f64,
    /// `|analytical - simulated| / simulated`.
    pub relative_error: f64,
    /// Whether this kernel is in [`MODEL_SCOPE`].
    pub in_scope: bool,
    /// Whether the per-kernel tolerance holds (always `true` out of
    /// scope — out-of-scope kernels are informational).
    pub within_tolerance: bool,
}

/// The harness verdict plus everything needed to understand it.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Input scale the comparison ran at (e.g. `"1k"`).
    pub scale: String,
    /// The tolerances applied.
    pub tolerance: Tolerance,
    /// Per-kernel deltas, in evaluation order.
    pub deltas: Vec<KernelDelta>,
    /// Mean relative error across scope kernels.
    pub mean_error: f64,
    /// Every check that failed, human-readable. Empty means pass.
    pub failures: Vec<String>,
}

impl Report {
    /// Whether every check held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// The report as a JSON document (hand-rolled; the vendored `serde`
    /// is a no-op stand-in).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"scale\": \"{}\",", self.scale);
        let _ = writeln!(s, "  \"passed\": {},", self.passed());
        let _ = writeln!(
            s,
            "  \"tolerance\": {{\"per_kernel\": {:?}, \"mean\": {:?}}},",
            self.tolerance.per_kernel, self.tolerance.mean
        );
        let _ = writeln!(s, "  \"mean_error\": {:?},", self.mean_error);
        s.push_str("  \"kernels\": [\n");
        for (i, d) in self.deltas.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"workload\": \"{}\", \"simulated\": {:?}, \"analytical\": {:?}, \
                 \"relative_error\": {:?}, \"in_scope\": {}, \"within_tolerance\": {}}}",
                d.workload,
                d.simulated,
                d.analytical,
                d.relative_error,
                d.in_scope,
                d.within_tolerance
            );
            s.push_str(if i + 1 < self.deltas.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n");
        s.push_str("  \"failures\": [");
        let failures: Vec<String> = self
            .failures
            .iter()
            .map(|f| format!("\"{}\"", f.replace('"', "'")))
            .collect();
        s.push_str(&failures.join(", "));
        s.push_str("]\n}\n");
        s
    }
}

/// Runs the comparison under the default tolerances.
pub fn run(ctx: &Experiments) -> Report {
    run_with(ctx, &Tolerance::default())
}

/// Runs the comparison under explicit tolerances.
pub fn run_with(ctx: &Experiments, tolerance: &Tolerance) -> Report {
    let rows = fig16::run(ctx);
    evaluate(&rows, tolerance, ctx.size().name())
}

/// Judges precomputed sim/model rows (separated from [`run`] so the
/// checks are testable without simulating).
pub fn evaluate(rows: &[fig16::Row], tolerance: &Tolerance, scale: &str) -> Report {
    let mut failures = Vec::new();
    let deltas: Vec<KernelDelta> = rows
        .iter()
        .map(|r| {
            let in_scope = MODEL_SCOPE.contains(&r.workload.as_str());
            let error = r.error();
            let within = !in_scope || error <= tolerance.per_kernel;
            if !within {
                failures.push(format!(
                    "{}: relative error {:.1}% exceeds the {:.1}% per-kernel tolerance \
                     (simulated {:.3}, analytical {:.3})",
                    r.workload,
                    error * 100.0,
                    tolerance.per_kernel * 100.0,
                    r.simulated,
                    r.analytical
                ));
            }
            KernelDelta {
                workload: r.workload.clone(),
                simulated: r.simulated,
                analytical: r.analytical,
                relative_error: error,
                in_scope,
                within_tolerance: within,
            }
        })
        .collect();

    let scope: Vec<&KernelDelta> = deltas.iter().filter(|d| d.in_scope).collect();
    let mean_error = if scope.is_empty() {
        0.0
    } else {
        scope.iter().map(|d| d.relative_error).sum::<f64>() / scope.len() as f64
    };
    if mean_error > tolerance.mean {
        failures.push(format!(
            "mean relative error {:.1}% exceeds the {:.1}% tolerance",
            mean_error * 100.0,
            tolerance.mean * 100.0
        ));
    }

    // Directional agreement on clear simulated wins.
    for d in &scope {
        if d.simulated >= DIRECTION_MIN_SPEEDUP && d.analytical <= 1.0 {
            failures.push(format!(
                "{}: simulation shows a {:.2}x win but the model predicts a loss ({:.2}x)",
                d.workload, d.simulated, d.analytical
            ));
        }
    }

    // Rank-order agreement on clear-cut pairs.
    for (i, a) in scope.iter().enumerate() {
        for b in scope.iter().skip(i + 1) {
            let (hi, lo) = if a.simulated >= b.simulated {
                (a, b)
            } else {
                (b, a)
            };
            if hi.simulated > lo.simulated * RANK_MARGIN && hi.analytical < lo.analytical {
                failures.push(format!(
                    "rank order differs: simulation puts {} ({:.2}x) well above {} ({:.2}x) \
                     but the model ranks them {:.2}x vs {:.2}x",
                    hi.workload,
                    hi.simulated,
                    lo.workload,
                    lo.simulated,
                    hi.analytical,
                    lo.analytical
                ));
            }
        }
    }

    Report {
        scale: scale.to_string(),
        tolerance: *tolerance,
        deltas,
        mean_error,
        failures,
    }
}

/// Formats the report as a table for the `diff_check` binary.
pub fn table(report: &Report) -> crate::report::Table {
    let mut t = crate::report::Table::new(format!(
        "Differential check: simulator vs analytical model (scale {})",
        report.scale
    ))
    .header(["Workload", "Simulated", "Analytical", "Error", "Verdict"]);
    for d in &report.deltas {
        t.row([
            d.workload.clone(),
            crate::report::fmt_speedup(d.simulated),
            crate::report::fmt_speedup(d.analytical),
            format!("{:.1}%", d.relative_error * 100.0),
            if !d.in_scope {
                "out of scope".to_string()
            } else if d.within_tolerance {
                "ok".to_string()
            } else {
                "FAIL".to_string()
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testctx;

    fn row(workload: &str, simulated: f64, analytical: f64) -> fig16::Row {
        fig16::Row {
            workload: workload.to_string(),
            simulated,
            analytical,
        }
    }

    #[test]
    fn agreeing_rows_pass() {
        let rows = vec![
            row("BFS", 2.0, 2.1),
            row("DC", 3.0, 2.8),
            row("kCore", 4.0, 1.0), // out of scope: ignored
        ];
        let report = evaluate(&rows, &Tolerance::default(), "1k");
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report.deltas.iter().any(|d| !d.in_scope));
    }

    #[test]
    fn per_kernel_divergence_fails() {
        let rows = vec![row("BFS", 2.0, 8.0)];
        let report = evaluate(&rows, &Tolerance::default(), "1k");
        assert!(!report.passed());
        assert!(report.failures[0].contains("BFS"), "{:?}", report.failures);
    }

    #[test]
    fn mean_error_gate() {
        // Each kernel just under the per-kernel gate, but the mean is high.
        let tol = Tolerance {
            per_kernel: 0.60,
            mean: 0.10,
        };
        let rows = vec![row("BFS", 2.0, 3.0), row("DC", 2.0, 3.0)];
        let report = evaluate(&rows, &tol, "1k");
        assert!(!report.passed());
        assert!(
            report.failures.iter().any(|f| f.contains("mean")),
            "{:?}",
            report.failures
        );
    }

    #[test]
    fn directional_disagreement_fails() {
        let tol = Tolerance {
            per_kernel: 10.0,
            mean: 10.0,
        };
        let rows = vec![row("DC", 3.0, 0.9)];
        let report = evaluate(&rows, &tol, "1k");
        assert!(!report.passed());
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("predicts a loss")),
            "{:?}",
            report.failures
        );
    }

    #[test]
    fn rank_inversion_fails() {
        let tol = Tolerance {
            per_kernel: 10.0,
            mean: 10.0,
        };
        // DC is 2x BFS in simulation but the model inverts them.
        let rows = vec![row("BFS", 1.6, 3.0), row("DC", 3.2, 1.2)];
        let report = evaluate(&rows, &tol, "1k");
        assert!(!report.passed());
        assert!(
            report.failures.iter().any(|f| f.contains("rank order")),
            "{:?}",
            report.failures
        );
    }

    #[test]
    fn close_speedups_do_not_gate_rank() {
        let tol = Tolerance {
            per_kernel: 10.0,
            mean: 10.0,
        };
        // Within the 1.5x margin: order may differ freely.
        let rows = vec![row("BFS", 2.0, 2.4), row("DC", 2.2, 2.1)];
        let report = evaluate(&rows, &tol, "1k");
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn json_report_shape() {
        let rows = vec![row("BFS", 2.0, 2.1)];
        let report = evaluate(&rows, &Tolerance::default(), "1k");
        let json = report.to_json();
        // Round-trips through the same minimal parser the run cache uses.
        let value = crate::experiments::cache::json::parse(&json).expect("valid json");
        let top = value.as_object().unwrap();
        assert_eq!(top.get("passed").unwrap().as_bool(), Some(true));
        assert_eq!(top.get("scale").unwrap().as_str(), Some("1k"));
        assert_eq!(top.get("kernels").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn harness_passes_at_smoke_scale() {
        let report = run(testctx::k1());
        assert!(
            report.passed(),
            "differential harness failed: {:?}",
            report.failures
        );
        assert_eq!(report.deltas.len(), 8);
    }
}
