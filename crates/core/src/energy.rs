//! Uncore energy model (Figure 15).
//!
//! Event-count model in the spirit of the paper's CACTI 6.5 + HMC power
//! references (Jeddeloh & Keeth; Pugsley et al.): per-access dynamic
//! energies plus static power integrated over the run. Constants are
//! representative 32 nm-class values chosen so that, at the baseline, the
//! SerDes links account for roughly the 43% of HMC power the paper quotes.
//! Figure 15 is a *relative* comparison, so the component ratios — not the
//! absolute joules — are what matters.

use crate::metrics::RunMetrics;
use serde::{Deserialize, Serialize};

/// Dynamic energy per L1 access, joules.
pub const E_L1_ACCESS: f64 = 0.10e-9;
/// Dynamic energy per L2 access, joules.
pub const E_L2_ACCESS: f64 = 0.25e-9;
/// Dynamic energy per L3 access, joules.
pub const E_L3_ACCESS: f64 = 0.80e-9;
/// Cache static power (whole hierarchy), watts.
pub const P_CACHE_STATIC: f64 = 1.5;
/// SerDes energy per transferred bit, joules (≈ 2 pJ/bit).
pub const E_LINK_PER_BIT: f64 = 2.0e-12;
/// SerDes static power (4 links, both directions), watts.
pub const P_LINK_STATIC: f64 = 5.2;
/// HMC logic-layer (vault controllers, crossbar) energy per request.
pub const E_LOGIC_PER_REQ: f64 = 1.2e-9;
/// HMC logic-layer static power, watts.
pub const P_LOGIC_STATIC: f64 = 2.6;
/// DRAM energy per activation (row open + precharge), joules.
pub const E_DRAM_ACTIVATE: f64 = 2.5e-9;
/// DRAM energy per column access (row-buffer read/write), joules.
pub const E_DRAM_COLUMN: f64 = 0.5e-9;
/// DRAM static (refresh + background) power, watts.
pub const P_DRAM_STATIC: f64 = 1.9;
/// Integer atomic FU energy per operation, joules.
pub const E_FU_INT_OP: f64 = 15.0e-12;
/// Floating-point FU energy per operation (low-power design, one FP FU per
/// vault — Section IV-B4), joules.
pub const E_FU_FP_OP: f64 = 180.0e-12;
/// Static power of the FU pool per vault-FU, watts.
pub const P_FU_STATIC_PER_FU: f64 = 0.001;

/// Uncore energy split by component (the Figure 15 stack).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Host cache hierarchy.
    pub caches: f64,
    /// HMC SerDes links and data transfer.
    pub hmc_link: f64,
    /// HMC atomic functional units.
    pub hmc_fu: f64,
    /// HMC logic layer.
    pub hmc_logic: f64,
    /// HMC DRAM dies.
    pub hmc_dram: f64,
}

impl EnergyBreakdown {
    /// Total uncore energy, joules.
    pub fn total(&self) -> f64 {
        self.caches + self.hmc_link + self.hmc_fu + self.hmc_logic + self.hmc_dram
    }

    /// HMC-only energy (excludes host caches).
    pub fn hmc_total(&self) -> f64 {
        self.hmc_link + self.hmc_fu + self.hmc_logic + self.hmc_dram
    }

    /// Fraction of HMC energy spent in the SerDes links.
    pub fn link_share_of_hmc(&self) -> f64 {
        self.hmc_link / self.hmc_total().max(1e-30)
    }
}

/// Computes the uncore energy of a run at the given core clock and FU
/// provisioning (`fp_fus_per_vault` matters only for FP-extension runs).
pub fn uncore_energy(
    metrics: &RunMetrics,
    clock_ghz: f64,
    vaults: usize,
    fus_per_vault: usize,
) -> EnergyBreakdown {
    let seconds = metrics.seconds(clock_ghz);

    let l1 = (metrics.l1.hits + metrics.l1.misses) as f64;
    let l2 = (metrics.l2.hits + metrics.l2.misses) as f64;
    let l3 = (metrics.l3.hits + metrics.l3.misses) as f64;
    let caches = l1 * E_L1_ACCESS + l2 * E_L2_ACCESS + l3 * E_L3_ACCESS + P_CACHE_STATIC * seconds;

    let bits = metrics.hmc.total_flits() as f64 * 128.0;
    let hmc_link = bits * E_LINK_PER_BIT + P_LINK_STATIC * seconds;

    let requests = (metrics.hmc.reads + metrics.hmc.writes + metrics.hmc.atomics) as f64;
    let hmc_logic = requests * E_LOGIC_PER_REQ + P_LOGIC_STATIC * seconds;

    let hmc_dram = metrics.hmc.dram_activations as f64 * E_DRAM_ACTIVATE
        + metrics.hmc.dram_accesses as f64 * E_DRAM_COLUMN
        + P_DRAM_STATIC * seconds;

    // FP ops are the posted FpAdd atomics; everything else is integer.
    let fp_ops = metrics.offloaded_fp_estimate();
    let int_ops = (metrics.hmc.atomics as f64 - fp_ops).max(0.0);
    let hmc_fu = int_ops * E_FU_INT_OP
        + fp_ops * E_FU_FP_OP
        + (vaults * fus_per_vault) as f64 * P_FU_STATIC_PER_FU * seconds;

    EnergyBreakdown {
        caches,
        hmc_link,
        hmc_fu,
        hmc_logic,
        hmc_dram,
    }
}

impl RunMetrics {
    /// Offloaded floating-point atomics (tracked exactly by the cube).
    pub fn offloaded_fp_estimate(&self) -> f64 {
        self.hmc.fp_atomics as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PimMode, SystemConfig};
    use crate::system::SystemSim;
    use graphpim_graph::generate::GraphSpec;
    use graphpim_workloads::kernels::{DCentr, PRank};

    fn run(mode: PimMode) -> RunMetrics {
        let config = SystemConfig::tiny(mode);
        // Larger than the tiny L3 so property atomics miss (the paper's
        // regime).
        let graph = GraphSpec::uniform(20_000, 60_000).seed(4).build();
        SystemSim::run_kernel(&mut DCentr::new(), &graph, &config)
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn breakdown_components_positive() {
        let e = uncore_energy(&run(PimMode::Baseline), 2.0, 32, 16);
        assert!(e.caches > 0.0);
        assert!(e.hmc_link > 0.0);
        assert!(e.hmc_logic > 0.0);
        assert!(e.hmc_dram > 0.0);
        assert!(e.total() > 0.0);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn links_dominate_hmc_power_at_baseline() {
        // The paper cites ~43% of HMC power in the SerDes links.
        let e = uncore_energy(&run(PimMode::Baseline), 2.0, 32, 16);
        let share = e.link_share_of_hmc();
        assert!(
            (0.25..0.65).contains(&share),
            "link share of HMC energy: {share}"
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn graphpim_reduces_uncore_energy_on_dc() {
        let base = uncore_energy(&run(PimMode::Baseline), 2.0, 32, 16);
        let pim = uncore_energy(&run(PimMode::GraphPim), 2.0, 32, 16);
        assert!(
            pim.total() < base.total(),
            "GraphPIM {} vs baseline {}",
            pim.total(),
            base.total()
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn fu_energy_appears_under_graphpim() {
        let base_metrics = run(PimMode::Baseline);
        let pim_metrics = run(PimMode::GraphPim);
        let pim = uncore_energy(&pim_metrics, 2.0, 32, 16);
        // Baseline never exercises the FUs; GraphPIM's FU energy exceeds
        // the static floor by the dynamic per-op contribution.
        assert_eq!(base_metrics.hmc.atomics, 0);
        let static_floor = 32.0 * 16.0 * P_FU_STATIC_PER_FU * pim_metrics.seconds(2.0);
        assert!(
            pim.hmc_fu > static_floor,
            "FU energy {} vs static floor {static_floor}",
            pim.hmc_fu
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn fp_ops_estimated_for_prank() {
        let config = SystemConfig::tiny(PimMode::GraphPim);
        let graph = GraphSpec::uniform(200, 1500).seed(4).build();
        let m = SystemSim::run_kernel(&mut PRank::new(2), &graph, &config);
        assert!(m.offloaded_fp_estimate() > 0.0);
    }
}
