//! Shared fingerprint plumbing for the persistent stores.
//!
//! Both on-disk stores — the [run cache](crate::experiments::cache) and
//! the [trace store](crate::tracestore) — invalidate entries by hashing
//! everything that can change their contents: configuration, input-graph
//! recipe, schema/codec versions, and the result-affecting environment
//! knobs. This module is the single home of that plumbing, so a knob like
//! `GRAPHPIM_SCALE` can never end up covered by one store's fingerprint
//! but forgotten by the other's.

/// Environment knobs that change simulation *results* (not just where or
/// how fast they are computed). Their values are snapshotted into every
/// store fingerprint at context creation, so flipping one forces a miss
/// instead of silently replaying stale results.
pub const RESULT_ENV_KNOBS: &[&str] = &["GRAPHPIM_SCALE"];

/// Snapshot of [`RESULT_ENV_KNOBS`] for store fingerprints.
pub fn result_env_fingerprint() -> String {
    let mut s = String::new();
    for knob in RESULT_ENV_KNOBS {
        use std::fmt::Write as _;
        let _ = write!(s, "{knob}={:?};", std::env::var(knob).ok());
    }
    s
}

/// FNV-1a hash over the given parts (with separators, so part boundaries
/// matter). Used as the config fingerprint of every store entry.
pub fn fingerprint(parts: &[&str]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for part in parts {
        for b in part.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^= 0x1f;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_depends_on_part_boundaries() {
        assert_ne!(fingerprint(&["ab", "c"]), fingerprint(&["a", "bc"]));
        assert_ne!(fingerprint(&["x"]), fingerprint(&["x", ""]));
        assert_eq!(fingerprint(&["x", "y"]), fingerprint(&["x", "y"]));
    }

    #[test]
    fn env_snapshot_names_every_knob() {
        let snap = result_env_fingerprint();
        for knob in RESULT_ENV_KNOBS {
            assert!(snap.contains(knob), "snapshot must mention {knob}");
        }
    }
}
