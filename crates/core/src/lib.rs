#![warn(missing_docs)]

//! GraphPIM: instruction-level PIM offloading for graph frameworks.
//!
//! This crate assembles the full stack the paper proposes (Nai et al.,
//! HPCA 2017): the PIM memory region + `pmr_malloc` convention (provided by
//! the framework layer in `graphpim-workloads`), the per-core **PIM
//! offloading unit** ([`pou`]) that turns host atomics on PMR addresses into
//! HMC atomic commands, and the three evaluated system configurations
//! (Section IV-A):
//!
//! * **Baseline** — conventional host atomics, HMC as plain main memory;
//! * **U-PEI** — idealized PEI-style locality-aware offloading (cache hits
//!   execute host-side at cache latency, misses offload, coherence free);
//! * **GraphPIM** — PMR accesses bypass the cache hierarchy; atomics
//!   offload to the per-vault functional units.
//!
//! [`system::SystemSim`] drives kernel traces through the
//! `graphpim-sim` substrate and produces [`metrics::RunMetrics`];
//! [`analytic`] implements the paper's CPI model (Equations 1–2);
//! [`energy`] the uncore energy breakdown (Figure 15);
//! [`experiments`] one driver per paper table/figure;
//! [`telemetry`] the JSONL event-trace exporter behind
//! `GRAPHPIM_TRACE_DIR`; and [`validate`] the validation layer —
//! config checking, per-run conservation invariants (default-on in
//! tests via `GRAPHPIM_VALIDATE`), and the sim-vs-analytic differential
//! harness.
//!
//! # Example
//!
//! ```
//! use graphpim::config::{PimMode, SystemConfig};
//! use graphpim::system::SystemSim;
//! use graphpim_graph::generate::GraphSpec;
//! use graphpim_workloads::kernels::Bfs;
//!
//! let graph = GraphSpec::uniform(200, 1000).seed(1).build();
//! let base = SystemSim::run_kernel(
//!     &mut Bfs::new(0), &graph, &SystemConfig::hpca(PimMode::Baseline));
//! let pim = SystemSim::run_kernel(
//!     &mut Bfs::new(0), &graph, &SystemConfig::hpca(PimMode::GraphPim));
//! assert!(pim.total_cycles > 0.0 && base.total_cycles > 0.0);
//! ```

pub mod analytic;
pub mod config;
pub mod energy;
pub mod experiments;
pub mod fingerprint;
pub mod metrics;
pub mod obs;
pub mod perfetto;
pub mod pou;
pub mod report;
pub mod stream;
pub mod system;
pub mod telemetry;
pub mod tracestore;
pub mod validate;
