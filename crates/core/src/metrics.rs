//! Metrics produced by a full-system run.

use crate::config::PimMode;
use graphpim_sim::cpu::CoreStats;
use graphpim_sim::hmc::HmcStats;
use graphpim_sim::mem::hierarchy::LevelCounts;
use graphpim_sim::stats::{mpki, CycleBreakdown};
use graphpim_sim::telemetry::{CounterRegistry, Telemetry};

/// Everything measured during one kernel/application run.
///
/// `PartialEq` compares every counter and cycle value exactly; the
/// experiment engine relies on it to assert that parallel and cached
/// replays are bit-identical to a serial simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// The policy the run used.
    pub mode: PimMode,
    /// Core count of the simulated system.
    pub cores: usize,
    /// Issue width (for the retiring component of breakdowns).
    pub issue_width: u32,
    /// End-to-end cycles (all cores synchronized at the end).
    pub total_cycles: f64,
    /// Aggregated core statistics (summed over cores).
    pub core: CoreStats,
    /// L1 hit/miss aggregate.
    pub l1: LevelCounts,
    /// L2 hit/miss aggregate.
    pub l2: LevelCounts,
    /// L3 hit/miss aggregate.
    pub l3: LevelCounts,
    /// HMC traffic statistics.
    pub hmc: HmcStats,
    /// Atomics targeting the property region (offloading candidates).
    pub offload_candidates: u64,
    /// Candidates that hit somewhere in the cache hierarchy (meaningful for
    /// Baseline and U-PEI runs, where candidates actually probe the caches).
    pub candidate_cache_hits: u64,
    /// Atomics actually sent to the HMC atomic units.
    pub offloaded_atomics: u64,
    /// PEI-style host-side executions of offload candidates (U-PEI hits).
    pub host_pei_atomics: u64,
    /// Uncacheable PMR loads (GraphPIM bypass path).
    pub uncached_reads: u64,
    /// Uncacheable PMR stores.
    pub uncached_writes: u64,
    /// Atomics on uncacheable PMR memory the cube could not execute
    /// (unsupported op, e.g. FP without the extension): the host RMW
    /// degrades to bus locking (Section III-B).
    pub uncached_atomics: u64,
    /// Total cycles of main-memory service experienced by demand requests
    /// (the "uncore time" proxy of Table VIII).
    pub memory_service_cycles: f64,
    /// Whether an attached JSONL trace export failed to write completely.
    /// The metrics themselves are still valid (telemetry is
    /// observation-only), but the trace file on disk must not be trusted.
    pub trace_export_failed: bool,
}

impl RunMetrics {
    /// Per-core average IPC (the Figure 1 metric).
    ///
    /// # Panics
    ///
    /// Panics if `total_cycles` is not positive — a zero-cycle run is a
    /// broken run, and masking it as IPC 0.0 would silently corrupt
    /// figures (consistent with the hard assert in the engine's
    /// `speedup()`).
    pub fn ipc(&self) -> f64 {
        assert!(
            self.total_cycles > 0.0,
            "zero-cycle run in ipc(): mode {:?}, {} instructions",
            self.mode,
            self.core.instructions
        );
        self.core.instructions as f64 / (self.total_cycles * self.cores as f64)
    }

    /// L1 misses per kilo-instruction.
    pub fn l1_mpki(&self) -> f64 {
        mpki(self.l1.misses, self.core.instructions)
    }

    /// L2 misses per kilo-instruction.
    pub fn l2_mpki(&self) -> f64 {
        mpki(self.l2.misses, self.core.instructions)
    }

    /// L3 (LLC) misses per kilo-instruction.
    pub fn l3_mpki(&self) -> f64 {
        mpki(self.l3.misses, self.core.instructions)
    }

    /// LLC hit rate (Table VIII).
    pub fn llc_hit_rate(&self) -> f64 {
        1.0 - self.l3.miss_rate()
    }

    /// Top-down cycle breakdown (Figure 2), averaged over cores.
    pub fn breakdown(&self) -> CycleBreakdown {
        // Stats are summed across cores, so scale total cycles accordingly.
        CycleBreakdown::from_stats(
            &self.core,
            self.issue_width,
            (self.total_cycles * self.cores as f64).max(1e-9),
        )
    }

    /// Fraction of machine cycles spent on host-atomic pipeline freezing
    /// and write-buffer draining (`Atomic-inCore`, Figure 9).
    pub fn atomic_incore_fraction(&self) -> f64 {
        self.core.atomic_incore_cycles / self.machine_cycles()
    }

    /// Fraction spent on atomic cache checking / coherence / memory
    /// service (`Atomic-inCache`, Figure 9).
    pub fn atomic_incache_fraction(&self) -> f64 {
        self.core.atomic_incache_cycles / self.machine_cycles()
    }

    /// Cache miss rate of offloading candidates (Figure 10). Only
    /// meaningful for runs whose candidates probed the caches
    /// (Baseline / U-PEI).
    pub fn candidate_miss_rate(&self) -> f64 {
        if self.offload_candidates == 0 {
            0.0
        } else {
            1.0 - self.candidate_cache_hits as f64 / self.offload_candidates as f64
        }
    }

    /// Total FLITs moved on the links, request + response.
    pub fn total_flits(&self) -> u64 {
        self.hmc.total_flits()
    }

    /// Percentage of instructions that are PIM-offloadable atomics
    /// (`%PIM-Atomic`, Table VIII).
    pub fn pim_atomic_pct(&self) -> f64 {
        if self.core.instructions == 0 {
            0.0
        } else {
            100.0 * self.offload_candidates as f64 / self.core.instructions as f64
        }
    }

    /// Fraction of machine time spent waiting on main-memory service
    /// (the "uncore time" row of Table VIII).
    pub fn uncore_time_fraction(&self) -> f64 {
        (self.memory_service_cycles / self.machine_cycles()).min(1.0)
    }

    /// Total machine cycles (cycles × cores).
    pub fn machine_cycles(&self) -> f64 {
        (self.total_cycles * self.cores as f64).max(1e-9)
    }

    /// Wall-clock seconds at the given core clock.
    pub fn seconds(&self, clock_ghz: f64) -> f64 {
        self.total_cycles / (clock_ghz * 1e9)
    }

    /// Reports every counter of this run into `sink` under the same
    /// namespaces the live system uses (`core.*`, `mem.*`, `hmc.*`,
    /// `system.*`), so finalized metrics and trace snapshots agree.
    pub fn report_telemetry(&self, sink: &mut dyn Telemetry) {
        self.core.report_telemetry("core", sink);
        self.l1.report_telemetry("mem.l1", sink);
        self.l2.report_telemetry("mem.l2", sink);
        self.l3.report_telemetry("mem.l3", sink);
        self.hmc.report_telemetry(sink);
        sink.record("system.cores", self.cores as f64);
        sink.record("system.issue_width", self.issue_width as f64);
        sink.record("system.offload_candidates", self.offload_candidates as f64);
        sink.record(
            "system.candidate_cache_hits",
            self.candidate_cache_hits as f64,
        );
        sink.record("system.offloaded_atomics", self.offloaded_atomics as f64);
        sink.record("system.host_pei_atomics", self.host_pei_atomics as f64);
        sink.record("system.uncached_reads", self.uncached_reads as f64);
        sink.record("system.uncached_writes", self.uncached_writes as f64);
        sink.record("system.uncached_atomics", self.uncached_atomics as f64);
        sink.record("system.memory_service_cycles", self.memory_service_cycles);
        sink.record("system.total_cycles", self.total_cycles);
        sink.record(
            "telemetry.export_failures",
            if self.trace_export_failed { 1.0 } else { 0.0 },
        );
    }

    /// All counters of this run as a registry (convenience over
    /// [`RunMetrics::report_telemetry`]).
    pub fn counter_registry(&self) -> CounterRegistry {
        let mut reg = CounterRegistry::default();
        self.report_telemetry(&mut reg);
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunMetrics {
        RunMetrics {
            mode: PimMode::Baseline,
            cores: 2,
            issue_width: 4,
            total_cycles: 1000.0,
            core: CoreStats {
                instructions: 4000,
                atomic_incore_cycles: 200.0,
                atomic_incache_cycles: 100.0,
                ..CoreStats::default()
            },
            l1: LevelCounts {
                hits: 900,
                misses: 100,
            },
            l2: LevelCounts {
                hits: 60,
                misses: 40,
            },
            l3: LevelCounts {
                hits: 10,
                misses: 30,
            },
            hmc: HmcStats::default(),
            offload_candidates: 50,
            candidate_cache_hits: 10,
            offloaded_atomics: 0,
            host_pei_atomics: 0,
            uncached_reads: 0,
            uncached_writes: 0,
            uncached_atomics: 0,
            memory_service_cycles: 400.0,
            trace_export_failed: false,
        }
    }

    #[test]
    fn ipc_is_per_core() {
        let m = sample();
        assert!((m.ipc() - 2.0).abs() < 1e-9); // 4000 / (1000 * 2)
    }

    #[test]
    fn mpki_values() {
        let m = sample();
        assert!((m.l1_mpki() - 25.0).abs() < 1e-9);
        assert!((m.l3_mpki() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn llc_hit_rate_complementary() {
        let m = sample();
        assert!((m.llc_hit_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn candidate_miss_rate() {
        let m = sample();
        assert!((m.candidate_miss_rate() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn atomic_fractions() {
        let m = sample();
        assert!((m.atomic_incore_fraction() - 0.1).abs() < 1e-9);
        assert!((m.atomic_incache_fraction() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn uncore_fraction() {
        let m = sample();
        assert!((m.uncore_time_fraction() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn seconds_at_clock() {
        let m = sample();
        assert!((m.seconds(2.0) - 5e-7).abs() < 1e-15);
    }

    #[test]
    fn zero_candidates_miss_rate_is_zero() {
        let mut m = sample();
        m.offload_candidates = 0;
        assert_eq!(m.candidate_miss_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero-cycle run in ipc()")]
    fn ipc_panics_on_zero_cycles() {
        let mut m = sample();
        m.total_cycles = 0.0;
        m.ipc();
    }

    #[test]
    fn counter_registry_covers_all_namespaces() {
        let m = sample();
        let reg = m.counter_registry();
        assert_eq!(reg.get("core.instructions"), Some(4000.0));
        assert_eq!(reg.get("mem.l1.misses"), Some(100.0));
        assert_eq!(reg.get("mem.l3.hits"), Some(10.0));
        assert_eq!(reg.get("hmc.atomics"), Some(0.0));
        assert_eq!(reg.get("system.offload_candidates"), Some(50.0));
        assert_eq!(reg.get("system.total_cycles"), Some(1000.0));
    }
}
