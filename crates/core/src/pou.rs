//! The PIM offloading unit (POU).
//!
//! One POU sits in each host core (Figure 6). It inspects every atomic
//! memory instruction: if the target address falls inside the PIM memory
//! region and the operation maps onto an HMC command the cube implements,
//! the instruction is sent to memory as a PIM-Atomic request instead of
//! executing host-side. No ISA change is involved — plain `lock`-prefixed
//! instructions are recognized by *address*.
//!
//! The module also implements the instruction-block translation the paper
//! sketches for `CAS if greater / less`: compilers emit these idioms as a
//! small loop of `load; cmp; lock cmpxchg`; [`translate_idiom`] recognizes
//! the pattern so the whole block can offload as a single HMC command.

use crate::config::{PimMode, SystemConfig};
use graphpim_sim::hmc::HmcAtomicOp;
use graphpim_sim::mem::addr::{Addr, Region};

/// Where an atomic instruction executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicPath {
    /// Execute in the host core (conventional RMW with cache/coherence).
    Host,
    /// Offload to the HMC atomic units unconditionally (GraphPIM).
    Offload,
    /// U-PEI path: probe the caches; execute host-side on a hit, offload on
    /// a miss.
    LocalityDependent,
}

/// Quantization denominator for the hybrid HMC/DRAM property split: the
/// placement hash is compared per-100k, so configured fractions resolve
/// at 0.00001 granularity.
pub const HYBRID_SPLIT_QUANTUM: u64 = 100_000;

/// The per-100k threshold a configured hybrid fraction quantizes to.
///
/// Quantization uses `floor`, so the HMC share never silently rounds
/// *up* — in particular no fraction below 1.0 becomes a full-HMC
/// deployment (`0.999996` stays at 99999/100000, where the old per-mille
/// `round` turned `0.9996` into 100%), and no positive fraction above
/// the quantum is truncated to zero.
pub fn quantize_hybrid_fraction(fraction: f64) -> u64 {
    (fraction * HYBRID_SPLIT_QUANTUM as f64).floor() as u64
}

/// How far quantization moved a configured hybrid fraction, as an
/// absolute fraction difference. [`SystemConfig::validate`] warns when
/// this exceeds `5e-4` (with the per-100k quantum the error is bounded
/// by `1e-5`, so the warning is a safety net for future quantum
/// changes).
pub fn hybrid_quantization_error(fraction: f64) -> f64 {
    let quantized = quantize_hybrid_fraction(fraction) as f64 / HYBRID_SPLIT_QUANTUM as f64;
    (fraction - quantized).abs()
}

/// The per-core PIM offloading unit.
#[derive(Debug, Clone)]
pub struct Pou {
    mode: PimMode,
    fp_extension: bool,
    /// Per-100k threshold for the hybrid HMC/DRAM property split (see
    /// [`quantize_hybrid_fraction`]).
    hmc_share_per100k: u64,
}

impl Pou {
    /// Builds the POU for a system configuration.
    pub fn new(config: &SystemConfig) -> Self {
        Pou {
            mode: config.mode,
            fp_extension: config.fp_extension,
            hmc_share_per100k: quantize_hybrid_fraction(config.hmc_property_fraction),
        }
    }

    /// Whether `addr` lies in the PIM memory region: the property region,
    /// restricted to the HMC-resident share in hybrid deployments
    /// (Section III-B: property data allocated in conventional DRAM is
    /// processed the conventional way).
    pub fn in_pmr(&self, addr: Addr) -> bool {
        if Region::of(addr) != Region::Property {
            return false;
        }
        // Floor quantization means only an exact fraction of 1.0 reaches
        // the full-coverage threshold.
        if self.hmc_share_per100k >= HYBRID_SPLIT_QUANTUM {
            return true;
        }
        // Deterministic per-line placement hash.
        let line = addr >> 6;
        let h = line
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(31)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        (h % HYBRID_SPLIT_QUANTUM) < self.hmc_share_per100k
    }

    /// Whether the cube implements `op` under this configuration.
    pub fn op_supported(&self, op: HmcAtomicOp) -> bool {
        op.in_hmc20() || self.fp_extension
    }

    /// Whether plain loads/stores to `addr` bypass the cache hierarchy
    /// (uncacheable PMR semantics — GraphPIM only).
    #[inline]
    pub fn bypass_cache(&self, addr: Addr) -> bool {
        self.mode == PimMode::GraphPim && self.in_pmr(addr)
    }

    /// Routes an atomic instruction.
    #[inline]
    pub fn route_atomic(&self, addr: Addr, op: HmcAtomicOp) -> AtomicPath {
        match self.mode {
            PimMode::Baseline => AtomicPath::Host,
            PimMode::UPei => {
                if self.in_pmr(addr) && self.op_supported(op) {
                    AtomicPath::LocalityDependent
                } else {
                    AtomicPath::Host
                }
            }
            PimMode::GraphPim => {
                if self.in_pmr(addr) && self.op_supported(op) {
                    AtomicPath::Offload
                } else {
                    AtomicPath::Host
                }
            }
        }
    }

    /// Whether an atomic to `addr` counts as an *offloading candidate*
    /// (atomic on the graph property — the denominator of Figure 10).
    #[inline]
    pub fn is_candidate(&self, addr: Addr) -> bool {
        self.in_pmr(addr)
    }
}

/// A host instruction inside a candidate translation block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostInstr {
    /// Plain load of the target location.
    Load,
    /// Compare the loaded value with a register (greater / less).
    CmpGreater,
    /// Compare (less-than direction).
    CmpLess,
    /// Conditional backward branch closing the retry loop.
    LoopBranch,
    /// `lock cmpxchg` on the target location.
    LockCmpxchg,
}

/// Recognizes the compiler idiom for conditional-swap loops and returns the
/// single HMC command the block translates to (Section III-B, "Offloading
/// Target" discussion). Returns `None` when the block is not one of the
/// known idioms.
pub fn translate_idiom(block: &[HostInstr]) -> Option<HmcAtomicOp> {
    use HostInstr::*;
    match block {
        [Load, CmpGreater, LockCmpxchg, LoopBranch] => Some(HmcAtomicOp::CasIfGreater16),
        [Load, CmpLess, LockCmpxchg, LoopBranch] => Some(HmcAtomicOp::CasIfLess16),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pou(mode: PimMode) -> Pou {
        Pou::new(&SystemConfig::hpca(mode))
    }

    fn prop_addr() -> Addr {
        Region::Property.addr(0x100)
    }

    fn meta_addr() -> Addr {
        Region::Meta.addr(0x100)
    }

    #[test]
    fn baseline_never_offloads() {
        let p = pou(PimMode::Baseline);
        assert_eq!(
            p.route_atomic(prop_addr(), HmcAtomicOp::CasIfEqual8),
            AtomicPath::Host
        );
        assert!(!p.bypass_cache(prop_addr()));
    }

    #[test]
    fn graphpim_offloads_pmr_atomics_only() {
        let p = pou(PimMode::GraphPim);
        assert_eq!(
            p.route_atomic(prop_addr(), HmcAtomicOp::CasIfEqual8),
            AtomicPath::Offload
        );
        assert_eq!(
            p.route_atomic(meta_addr(), HmcAtomicOp::CasIfEqual8),
            AtomicPath::Host
        );
    }

    #[test]
    fn graphpim_bypasses_cache_for_pmr() {
        let p = pou(PimMode::GraphPim);
        assert!(p.bypass_cache(prop_addr()));
        assert!(!p.bypass_cache(meta_addr()));
    }

    #[test]
    fn upei_is_locality_dependent() {
        let p = pou(PimMode::UPei);
        assert_eq!(
            p.route_atomic(prop_addr(), HmcAtomicOp::Add16),
            AtomicPath::LocalityDependent
        );
        assert!(!p.bypass_cache(prop_addr()), "PEI keeps data cacheable");
    }

    #[test]
    fn fp_atomics_need_extension() {
        let with = pou(PimMode::GraphPim);
        assert_eq!(
            with.route_atomic(prop_addr(), HmcAtomicOp::FpAdd64),
            AtomicPath::Offload
        );
        let without = Pou::new(&SystemConfig::hpca(PimMode::GraphPim).without_fp_extension());
        assert_eq!(
            without.route_atomic(prop_addr(), HmcAtomicOp::FpAdd64),
            AtomicPath::Host
        );
        // Integer atomics still offload without the extension.
        assert_eq!(
            without.route_atomic(prop_addr(), HmcAtomicOp::Add16),
            AtomicPath::Offload
        );
    }

    #[test]
    fn idiom_translation() {
        use HostInstr::*;
        assert_eq!(
            translate_idiom(&[Load, CmpGreater, LockCmpxchg, LoopBranch]),
            Some(HmcAtomicOp::CasIfGreater16)
        );
        assert_eq!(
            translate_idiom(&[Load, CmpLess, LockCmpxchg, LoopBranch]),
            Some(HmcAtomicOp::CasIfLess16)
        );
        assert_eq!(translate_idiom(&[Load, LockCmpxchg]), None);
        assert_eq!(translate_idiom(&[]), None);
    }

    #[test]
    fn hybrid_split_is_deterministic_and_proportional() {
        let config = SystemConfig::hpca(PimMode::GraphPim).with_hmc_property_fraction(0.5);
        let p = Pou::new(&config);
        let mut in_hmc = 0usize;
        const LINES: usize = 4000;
        for i in 0..LINES {
            let addr = Region::Property.addr(i as u64 * 64);
            if p.in_pmr(addr) {
                in_hmc += 1;
            }
            // Deterministic: same answer twice.
            assert_eq!(p.in_pmr(addr), p.in_pmr(addr));
        }
        let share = in_hmc as f64 / LINES as f64;
        assert!(
            (share - 0.5).abs() < 0.05,
            "placement share {share:.3} should track the fraction"
        );
    }

    #[test]
    fn hybrid_fraction_never_rounds_up_to_full_hmc() {
        // The old per-mille `.round()` turned 0.9996 into a 100% HMC
        // deployment; per-100k floor keeps it a genuine hybrid.
        let config = SystemConfig::hpca(PimMode::GraphPim).with_hmc_property_fraction(0.9996);
        let p = Pou::new(&config);
        let mut out_of_hmc = 0usize;
        const LINES: usize = 100_000;
        for i in 0..LINES {
            if !p.in_pmr(Region::Property.addr(i as u64 * 64)) {
                out_of_hmc += 1;
            }
        }
        assert!(
            out_of_hmc > 0,
            "0.9996 must leave some property lines in conventional DRAM"
        );
        let share = 1.0 - out_of_hmc as f64 / LINES as f64;
        assert!((share - 0.9996).abs() < 0.002, "share {share:.5}");
        // Exactly 1.0 still covers everything.
        let full = Pou::new(&SystemConfig::hpca(PimMode::GraphPim).with_hmc_property_fraction(1.0));
        assert!((0..LINES).all(|i| full.in_pmr(Region::Property.addr(i as u64 * 64))));
    }

    #[test]
    fn hybrid_sub_permille_fractions_survive() {
        // Sub-0.001 fractions were truncated to zero at per-mille
        // granularity; per-100k resolves them.
        assert_eq!(quantize_hybrid_fraction(0.0004), 40);
        let config = SystemConfig::hpca(PimMode::GraphPim).with_hmc_property_fraction(0.0004);
        let p = Pou::new(&config);
        let hits = (0..200_000u64)
            .filter(|&i| p.in_pmr(Region::Property.addr(i * 64)))
            .count();
        assert!(hits > 0, "0.0004 must place some lines in the HMC");
        assert!(hits < 400, "0.0004 must stay a tiny share, got {hits}");
    }

    #[test]
    fn quantization_error_is_bounded_by_quantum() {
        for f in [0.0, 0.0004, 0.1234567, 0.5, 0.9996, 0.999996, 1.0] {
            assert!(
                hybrid_quantization_error(f) < 1.0 / HYBRID_SPLIT_QUANTUM as f64,
                "fraction {f}"
            );
        }
        assert_eq!(quantize_hybrid_fraction(1.0), HYBRID_SPLIT_QUANTUM);
        assert_eq!(quantize_hybrid_fraction(0.0), 0);
    }

    #[test]
    fn hybrid_zero_fraction_disables_offloading() {
        let config = SystemConfig::hpca(PimMode::GraphPim).with_hmc_property_fraction(0.0);
        let p = Pou::new(&config);
        assert_eq!(
            p.route_atomic(prop_addr(), HmcAtomicOp::Add16),
            AtomicPath::Host
        );
        assert!(!p.bypass_cache(prop_addr()));
    }

    #[test]
    fn candidates_are_property_atomics() {
        let p = pou(PimMode::Baseline);
        assert!(p.is_candidate(prop_addr()));
        assert!(!p.is_candidate(meta_addr()));
    }
}
