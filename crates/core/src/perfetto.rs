//! Chrome trace-event export for ui.perfetto.dev.
//!
//! A [`PerfettoTrace`] accumulates spans during a run and writes one
//! `trace.json` in the Chrome trace-event format (the JSON array flavor
//! Perfetto ingests directly). The simulator emits three row groups:
//!
//! * **pid 0 — supersteps**: one span per superstep barrier interval;
//! * **pid 1 — cores**: per-core busy / barrier-stall spans;
//! * **pid 2 — requests**: sampled memory-request lifecycles with their
//!   queue/FU waits as span arguments;
//! * **pid 3 — job** (only when a request-correlated trace ID is
//!   attached via [`PerfettoTrace::set_job_context`]): one span named
//!   after the trace ID covering the whole run, with the job's HTTP
//!   queue wait as a span argument — so one served job's queue wait,
//!   engine run, and supersteps all land in a single trace.
//!
//! Timestamps are simulated CPU cycles reported in the format's
//! microsecond field (1 cycle = 1 "µs"), which keeps the UI's zoom and
//! duration arithmetic exact — absolute wall time is meaningless for a
//! simulator anyway.
//!
//! Like the JSONL [`crate::telemetry::TraceExporter`], the writer buffers
//! everything in memory and touches the filesystem only in
//! [`PerfettoTrace::write`], so export cannot perturb timing.

use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Accumulates trace events and writes them as Chrome trace-event JSON.
#[derive(Debug)]
pub struct PerfettoTrace {
    path: PathBuf,
    events: Vec<String>,
    /// `(trace id, queue wait in µs)` of the serving job, if any.
    job: Option<(String, Option<f64>)>,
    /// Largest span end seen, so the job span covers the whole run.
    max_end: f64,
}

impl PerfettoTrace {
    /// Creates an exporter targeting `path`. No I/O happens until
    /// [`PerfettoTrace::write`].
    pub fn create(path: impl Into<PathBuf>) -> PerfettoTrace {
        PerfettoTrace {
            path: path.into(),
            events: Vec::new(),
            job: None,
            max_end: 0.0,
        }
    }

    /// Attaches the serving job's request-correlated trace ID (and its
    /// queue wait, in microseconds, when known). At [`write`] time the
    /// exporter adds a pid-3 "job" row holding one `trace:<id>` span
    /// that covers the whole run, so the job is findable in the
    /// Perfetto UI by the same ID the service returned in its
    /// `X-Trace-Id` header and `/jobs/{id}` events.
    ///
    /// [`write`]: PerfettoTrace::write
    pub fn set_job_context(&mut self, trace_id: &str, queue_wait_us: Option<f64>) {
        self.job = Some((trace_id.to_string(), queue_wait_us));
    }

    /// Creates an exporter when `GRAPHPIM_PERFETTO_DIR` is set, writing to
    /// `<dir>/<label>.trace.json` with the label sanitized to
    /// filesystem-safe characters.
    pub fn from_env(label: &str) -> Option<PerfettoTrace> {
        let dir = std::env::var_os("GRAPHPIM_PERFETTO_DIR")?;
        let safe: String = label
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        Some(PerfettoTrace::create(
            PathBuf::from(dir).join(format!("{safe}.trace.json")),
        ))
    }

    /// The output path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names the process row `pid` (a `process_name` metadata event).
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":{}}}}}",
            json_string(name)
        ));
    }

    /// Names the thread row `(pid, tid)` (a `thread_name` metadata event).
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":{}}}}}",
            json_string(name)
        ));
    }

    /// Records a complete span (`ph: "X"`) from `start` to `end` cycles on
    /// row `(pid, tid)`, with numeric `args` attached. Negative durations
    /// are clamped to zero.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        name: &str,
        cat: &str,
        pid: u32,
        tid: u32,
        start: f64,
        end: f64,
        args: &[(&str, f64)],
    ) {
        let dur = (end - start).max(0.0);
        if end > self.max_end {
            self.max_end = end;
        }
        let mut event = format!(
            "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{start:?},\"dur\":{dur:?},\
             \"pid\":{pid},\"tid\":{tid}",
            json_string(name),
            json_string(cat),
        );
        if !args.is_empty() {
            event.push_str(",\"args\":{");
            for (i, (key, value)) in args.iter().enumerate() {
                if i > 0 {
                    event.push(',');
                }
                event.push_str(&format!("{}:{value:?}", json_string(key)));
            }
            event.push('}');
        }
        event.push('}');
        self.events.push(event);
    }

    /// Writes the accumulated events as one `{"traceEvents": [...]}`
    /// document and returns the path.
    pub fn write(mut self) -> std::io::Result<PathBuf> {
        if let Some((trace_id, queue_wait)) = self.job.take() {
            let end = self.max_end;
            self.process_name(3, "job");
            self.thread_name(3, 0, &format!("trace {trace_id}"));
            let mut args: Vec<(&str, f64)> = Vec::new();
            if let Some(wait) = queue_wait {
                args.push(("queue_wait_us", wait));
            }
            self.span(&format!("trace:{trace_id}"), "job", 3, 0, 0.0, end, &args);
        }
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::create(&self.path)?;
        let mut w = std::io::BufWriter::new(file);
        w.write_all(b"{\"traceEvents\":[\n")?;
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                w.write_all(b",\n")?;
            }
            w.write_all(event.as_bytes())?;
        }
        w.write_all(b"\n],\"displayTimeUnit\":\"ns\",")?;
        w.write_all(b"\"otherData\":{\"clock\":\"simulated CPU cycles (1 cycle = 1 us)\"}}\n")?;
        w.flush()?;
        Ok(self.path)
    }
}

/// Escapes `s` as a JSON string literal (quotes, backslashes, control
/// characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::cache::json;

    #[test]
    fn span_and_metadata_round_trip_through_parser() {
        let dir = std::env::temp_dir().join(format!("graphpim-perfetto-{}", std::process::id()));
        let mut trace = PerfettoTrace::create(dir.join("unit.trace.json"));
        trace.process_name(0, "supersteps");
        trace.thread_name(1, 3, "core 3");
        trace.span("superstep 1", "superstep", 0, 0, 0.0, 1500.5, &[]);
        trace.span(
            "load.miss",
            "request",
            2,
            3,
            10.0,
            96.25,
            &[("bank_wait", 4.0), ("fu_wait", 0.0)],
        );
        assert_eq!(trace.len(), 4);
        let path = trace.write().expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        let value = json::parse(&text).expect("valid JSON");
        let doc = value.as_object().expect("object");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), 4);
        let span = events[3].as_object().expect("event object");
        assert_eq!(span.get("name").and_then(|v| v.as_str()), Some("load.miss"));
        assert_eq!(span.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(span.get("ts").and_then(|v| v.as_f64()), Some(10.0));
        assert_eq!(span.get("dur").and_then(|v| v.as_f64()), Some(86.25));
        let args = span.get("args").and_then(|v| v.as_object()).expect("args");
        assert_eq!(args.get("bank_wait").and_then(|v| v.as_f64()), Some(4.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn negative_duration_clamped_and_strings_escaped() {
        let mut trace = PerfettoTrace::create("unused.json");
        trace.span("we\"ird\\name", "cat", 0, 0, 10.0, 5.0, &[]);
        let event = &trace.events[0];
        assert!(event.contains("\"dur\":0.0"));
        assert!(event.contains("we\\\"ird\\\\name"));
        assert!(json::parse(&format!("[{event}]")).is_some());
    }

    #[test]
    fn from_env_requires_variable() {
        // Serialized via the env-lock-free convention: the variable is not
        // set by any test in this crate except transiently elsewhere.
        if std::env::var_os("GRAPHPIM_PERFETTO_DIR").is_none() {
            assert!(PerfettoTrace::from_env("BFS baseline").is_none());
        }
    }
}
