//! Structured event-trace export: JSONL counter snapshots.
//!
//! When tracing is enabled (`GRAPHPIM_TRACE_DIR`, or
//! `Experiments::with_trace_dir`), the system simulator snapshots every
//! registered counter at each superstep barrier and once more at run end,
//! and a [`TraceExporter`] appends each snapshot as one JSON line:
//!
//! ```json
//! {"superstep":3,"cycle":51234.5,"counters":{"core.instructions":812993.0,...}}
//! ```
//!
//! Values use Rust's shortest round-trip float formatting, and
//! [`TraceSnapshot::parse_line`] reads them back exactly, so a trace's
//! final snapshot is bit-identical to the run's `RunMetrics` counters.
//! Tracing is observation-only: the simulator produces byte-identical
//! metrics with it on or off (asserted by the engine tests).

use crate::experiments::cache::json;
use graphpim_sim::telemetry::CounterRegistry;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Formats one snapshot as a single JSON line (no trailing newline).
pub fn format_snapshot(superstep: u64, cycle: f64, counters: &CounterRegistry) -> String {
    let mut s = String::with_capacity(64 + 32 * counters.len());
    let _ = write!(
        s,
        "{{\"superstep\":{superstep},\"cycle\":{cycle:?},\"counters\":{{"
    );
    for (i, (key, value)) in counters.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{key}\":{value:?}");
    }
    s.push_str("}}");
    s
}

/// One parsed trace snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSnapshot {
    /// Superstep index (1-based for barrier snapshots; the final snapshot
    /// is one past the last barrier).
    pub superstep: u64,
    /// Simulated cycle the snapshot was taken at.
    pub cycle: f64,
    /// Every registered counter at that point.
    pub counters: CounterRegistry,
}

impl TraceSnapshot {
    /// Parses one JSONL line; `None` on malformed input.
    pub fn parse_line(line: &str) -> Option<TraceSnapshot> {
        let doc = json::parse(line.trim())?;
        let top = doc.as_object()?;
        let superstep = top.get("superstep")?.as_u64()?;
        let cycle = top.get("cycle")?.as_f64()?;
        let mut counters = CounterRegistry::default();
        let json::Value::Object(fields) = top.get("counters")? else {
            return None;
        };
        for (key, value) in fields {
            counters.record(key, value.as_f64()?);
        }
        Some(TraceSnapshot {
            superstep,
            cycle,
            counters,
        })
    }

    /// Serializes back to the JSONL format [`parse_line`](Self::parse_line)
    /// reads.
    pub fn to_json_line(&self) -> String {
        format_snapshot(self.superstep, self.cycle, &self.counters)
    }
}

/// Appends counter snapshots to one JSONL trace file.
pub struct TraceExporter {
    writer: BufWriter<File>,
    path: PathBuf,
    lines: u64,
}

impl TraceExporter {
    /// Creates (truncating) the trace file at `path`, creating parent
    /// directories as needed.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<TraceExporter> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        Ok(TraceExporter {
            writer: BufWriter::new(File::create(&path)?),
            path,
            lines: 0,
        })
    }

    /// The exporter selected by `GRAPHPIM_TRACE_DIR`, writing to
    /// `<dir>/<label>.jsonl`, or `None` when tracing is off. `label` is
    /// sanitized to filesystem-safe characters. Creation errors are
    /// reported to stderr and degrade to no tracing.
    pub fn from_env(label: &str) -> Option<TraceExporter> {
        let dir = std::env::var_os("GRAPHPIM_TRACE_DIR")?;
        let safe: String = label
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let path = PathBuf::from(dir).join(format!("{safe}.jsonl"));
        match TraceExporter::create(&path) {
            Ok(exporter) => Some(exporter),
            Err(e) => {
                crate::obs::warn(
                    "trace",
                    "cannot create trace exporter",
                    &[("path", &path.display()), ("error", &e)],
                );
                None
            }
        }
    }

    /// Where the trace is being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of snapshots written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Appends one snapshot line. Write errors are deferred to
    /// [`finish`](Self::finish).
    pub fn snapshot(&mut self, superstep: u64, cycle: f64, counters: &CounterRegistry) {
        let line = format_snapshot(superstep, cycle, counters);
        let _ = self.writer.write_all(line.as_bytes());
        let _ = self.writer.write_all(b"\n");
        self.lines += 1;
    }

    /// Flushes and closes the trace, returning its path.
    pub fn finish(mut self) -> std::io::Result<PathBuf> {
        self.writer.flush()?;
        Ok(self.path)
    }
}

impl std::fmt::Debug for TraceExporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceExporter")
            .field("path", &self.path)
            .field("lines", &self.lines)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nasty_registry() -> CounterRegistry {
        let mut reg = CounterRegistry::default();
        reg.record("core.instructions", 812_993.0);
        reg.record("system.total_cycles", 123_456.789_012_345_6);
        reg.record("core.tiny", 1.5e-9);
        reg.record("core.sum", 0.1 + 0.2); // 0.30000000000000004
        reg.record("hmc.huge", 1e300);
        reg.record("mem.l1.hits", 0.0);
        reg
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let reg = nasty_registry();
        let line = format_snapshot(7, 42.5, &reg);
        let snap = TraceSnapshot::parse_line(&line).expect("parses");
        assert_eq!(snap.superstep, 7);
        assert_eq!(snap.cycle.to_bits(), 42.5f64.to_bits());
        assert_eq!(snap.counters.len(), reg.len());
        for (key, value) in reg.iter() {
            let got = snap.counters.get(key).unwrap();
            assert_eq!(got.to_bits(), value.to_bits(), "counter {key}");
        }
        // And serializing the parse gives back the identical line.
        assert_eq!(snap.to_json_line(), line);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(TraceSnapshot::parse_line("").is_none());
        assert!(TraceSnapshot::parse_line("{\"superstep\":1}").is_none());
        assert!(
            TraceSnapshot::parse_line("{\"superstep\":1,\"cycle\":2.0,\"counters\":3}").is_none()
        );
        assert!(TraceSnapshot::parse_line("not json at all").is_none());
    }

    #[test]
    fn exporter_writes_parseable_jsonl() {
        let dir = std::env::temp_dir().join(format!("graphpim-trace-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("run.jsonl");
        let mut exporter = TraceExporter::create(&path).expect("create");
        let reg = nasty_registry();
        exporter.snapshot(1, 10.0, &reg);
        exporter.snapshot(2, 20.25, &reg);
        assert_eq!(exporter.lines(), 2);
        let written = exporter.finish().expect("flush");
        assert_eq!(written, path);
        let text = std::fs::read_to_string(&path).unwrap();
        let snaps: Vec<TraceSnapshot> = text
            .lines()
            .map(|l| TraceSnapshot::parse_line(l).expect("each line parses"))
            .collect();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].superstep, 1);
        assert_eq!(snaps[1].cycle, 20.25);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_env_sanitizes_label() {
        let dir = std::env::temp_dir().join(format!("graphpim-trace-env-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Scoped: set, use, remove. Runs in its own test binary section;
        // no other test in this binary touches GRAPHPIM_TRACE_DIR.
        std::env::set_var("GRAPHPIM_TRACE_DIR", &dir);
        let exporter = TraceExporter::from_env("BFS U-PEI/ideal").expect("enabled");
        let path = exporter.path().to_path_buf();
        std::env::remove_var("GRAPHPIM_TRACE_DIR");
        assert!(path.ends_with("BFS_U-PEI_ideal.jsonl"), "{path:?}");
        assert!(TraceExporter::from_env("x").is_none(), "env removed");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
