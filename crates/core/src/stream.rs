//! Pipelined live runs and streaming trace replay.
//!
//! Both paths here split one simulated run across two OS threads joined by
//! a bounded channel:
//!
//! * **producer** — executes the kernel (emitting trace chunks through the
//!   framework) or decodes a captured trace frame by frame;
//! * **consumer** — the calling thread, which drives the timing models
//!   ([`SystemSim`]'s [`TraceConsumer`] methods) exactly as a sequential
//!   run would.
//!
//! The op interleaving the scheduler sees is a *timing contract* (see
//! `SystemSim::run_chunk`): reordering ops across threads changes when
//! cores issue and therefore every figure metric. So the parallelism here
//! is deliberately pipeline-shaped — trace production overlaps trace
//! consumption, but the consumer observes the identical event sequence a
//! sequential run produces, making the result bit-identical by
//! construction ([`RunMetrics`]'s exact `PartialEq` pins this in tests).
//!
//! The channel is a [`std::sync::mpsc::sync_channel`] holding at most
//! [`PIPELINE_DEPTH`] supersteps; with the framework's per-thread chunk
//! flush limit this bounds the pipeline's memory footprint regardless of
//! trace length — the property that makes LDBC-1M runs viable.

use std::sync::mpsc::{sync_channel, SyncSender};

use graphpim_graph::CsrGraph;
use graphpim_sim::trace::codec::{CodecError, TraceReader};
use graphpim_sim::trace::{Superstep, TraceEvent};
use graphpim_workloads::framework::{Framework, TraceConsumer};
use graphpim_workloads::kernels::Kernel;

use crate::config::SystemConfig;
use crate::metrics::RunMetrics;
use crate::system::{Instrumentation, SystemSim};

/// In-flight supersteps buffered between producer and consumer. Each slot
/// holds at most one chunk (bounded by the framework's per-thread flush
/// limit), so this is the whole pipeline's trace-memory budget.
const PIPELINE_DEPTH: usize = 2;

/// A [`TraceConsumer`] that forwards every event into a bounded channel.
///
/// Send errors are ignored: the receiver only disappears when the
/// consuming side bailed out early (e.g. a decode error on the replay
/// path), and the producer then stops at its next emission naturally.
struct ChannelConsumer {
    tx: SyncSender<TraceEvent>,
}

impl TraceConsumer for ChannelConsumer {
    fn chunk(&mut self, step: Superstep) {
        let _ = self.tx.send(TraceEvent::Chunk(step));
    }

    fn barrier(&mut self) {
        let _ = self.tx.send(TraceEvent::Barrier);
    }
}

impl SystemSim {
    /// Runs a kernel with trace production pipelined against trace
    /// consumption: the kernel executes on a producer thread while this
    /// thread clocks the timing models. Bit-identical to
    /// [`run_kernel`](Self::run_kernel) on the same inputs.
    pub fn run_kernel_pipelined(
        kernel: &mut dyn Kernel,
        graph: &CsrGraph,
        config: &SystemConfig,
    ) -> RunMetrics {
        Self::run_kernel_pipelined_instrumented(kernel, graph, config, Instrumentation::default())
    }

    /// [`run_kernel_pipelined`](Self::run_kernel_pipelined) with the full
    /// observer set.
    pub fn run_kernel_pipelined_instrumented(
        kernel: &mut dyn Kernel,
        graph: &CsrGraph,
        config: &SystemConfig,
        instrumentation: Instrumentation,
    ) -> RunMetrics {
        let threads = config.sim.core.cores;
        let mut sys = SystemSim::new(config.clone());
        sys.instrument(instrumentation);
        std::thread::scope(|s| {
            let (tx, rx) = sync_channel(PIPELINE_DEPTH);
            let producer = s.spawn(move || {
                let mut consumer = ChannelConsumer { tx };
                let mut fw = Framework::new(threads, &mut consumer);
                kernel.run(graph, &mut fw);
                fw.finish();
            });
            for event in rx {
                match event {
                    TraceEvent::Chunk(step) => sys.chunk(step),
                    TraceEvent::Barrier => sys.barrier(),
                }
            }
            producer.join().expect("kernel producer thread panicked");
        });
        sys.into_metrics()
    }

    /// Replays a captured binary trace with frame decoding pipelined
    /// against the timing models, never materializing the decoded trace:
    /// peak trace memory is [`PIPELINE_DEPTH`] supersteps plus the mapped
    /// bytes, instead of [`DecodedTrace`]'s flat op buffer. Bit-identical
    /// to [`run_replayed`](Self::run_replayed) on the same bytes.
    ///
    /// # Errors
    ///
    /// Header and checksum problems surface before any simulation happens
    /// (the whole file is validated up front); a mid-stream decode error —
    /// which the checksum makes an encoder-bug indicator rather than a
    /// corruption one — aborts the run and is returned.
    ///
    /// [`DecodedTrace`]: graphpim_sim::trace::codec::DecodedTrace
    pub fn run_replayed_streaming(
        bytes: &[u8],
        config: &SystemConfig,
    ) -> Result<RunMetrics, CodecError> {
        Self::run_replayed_streaming_instrumented(bytes, config, Instrumentation::default())
    }

    /// [`run_replayed_streaming`](Self::run_replayed_streaming) with the
    /// full observer set.
    pub fn run_replayed_streaming_instrumented(
        bytes: &[u8],
        config: &SystemConfig,
        instrumentation: Instrumentation,
    ) -> Result<RunMetrics, CodecError> {
        let mut reader = TraceReader::new(bytes)?;
        let mut sys = SystemSim::new(config.clone());
        sys.instrument(instrumentation);
        let failure = std::thread::scope(|s| {
            let (tx, rx) = sync_channel::<Result<TraceEvent, CodecError>>(PIPELINE_DEPTH);
            let producer = s.spawn(move || loop {
                match reader.next_event() {
                    Ok(Some(event)) => {
                        if tx.send(Ok(event)).is_err() {
                            break;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        break;
                    }
                }
            });
            let mut failure = None;
            for item in rx {
                match item {
                    Ok(TraceEvent::Chunk(step)) => sys.chunk(step),
                    Ok(TraceEvent::Barrier) => sys.barrier(),
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            producer.join().expect("trace decode thread panicked");
            failure
        });
        match failure {
            Some(e) => Err(e),
            None => Ok(sys.into_metrics()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PimMode;
    use graphpim_graph::generate::GraphSpec;
    use graphpim_workloads::framework::EncodeTrace;
    use graphpim_workloads::kernels::{Bfs, PRank};

    fn graph() -> CsrGraph {
        GraphSpec::uniform(300, 1_500).seed(9).build()
    }

    #[test]
    fn pipelined_matches_sequential_all_modes() {
        let g = graph();
        for mode in [PimMode::Baseline, PimMode::UPei, PimMode::GraphPim] {
            let config = SystemConfig::hpca(mode);
            let sequential = SystemSim::run_kernel(&mut Bfs::new(0), &g, &config);
            let pipelined = SystemSim::run_kernel_pipelined(&mut Bfs::new(0), &g, &config);
            assert_eq!(sequential, pipelined, "mode {mode:?}");
        }
    }

    #[test]
    fn streaming_replay_matches_decoded_all_modes() {
        let g = graph();
        let threads = SystemConfig::hpca(PimMode::Baseline).sim.core.cores;
        let mut enc = EncodeTrace::new(threads);
        {
            let mut fw = Framework::new(threads, &mut enc);
            PRank::new(2).run(&g, &mut fw);
            fw.finish();
        }
        let bytes = enc.finish();
        for mode in [PimMode::Baseline, PimMode::UPei, PimMode::GraphPim] {
            let config = SystemConfig::hpca(mode);
            let decoded = SystemSim::run_replayed(&bytes, &config).expect("valid trace");
            let streamed = SystemSim::run_replayed_streaming(&bytes, &config).expect("valid trace");
            assert_eq!(decoded, streamed, "mode {mode:?}");
        }
    }

    #[test]
    fn streaming_replay_rejects_garbage_before_simulating() {
        let config = SystemConfig::hpca(PimMode::Baseline);
        assert!(SystemSim::run_replayed_streaming(b"not a trace", &config).is_err());
        assert!(SystemSim::run_replayed_streaming(&[], &config).is_err());
    }

    #[test]
    fn pipelined_run_matches_replay_of_its_own_capture() {
        // Capture once, then check live-pipelined == streamed replay: the
        // full loop the engine uses at the 1M scale.
        let g = graph();
        let config = SystemConfig::hpca(PimMode::GraphPim);
        let threads = config.sim.core.cores;
        let mut enc = EncodeTrace::new(threads);
        {
            let mut fw = Framework::new(threads, &mut enc);
            Bfs::new(0).run(&g, &mut fw);
            fw.finish();
        }
        let bytes = enc.finish();
        let live = SystemSim::run_kernel_pipelined(&mut Bfs::new(0), &g, &config);
        let replay = SystemSim::run_replayed_streaming(&bytes, &config).expect("valid trace");
        assert_eq!(live, replay);
    }
}
