//! Plain-text table formatting for the experiment drivers.
//!
//! Every figure/table binary prints through these helpers so the harness
//! output is uniform and easy to diff against EXPERIMENTS.md.

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Table {
            title: title.into(),
            header: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the column headers.
    pub fn header<I, S>(mut self, columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.header = columns.into_iter().map(Into::into).collect();
        self
    }

    /// Appends one row.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        if !self.header.is_empty() {
            out.push_str(&render_row(&self.header, &widths));
            out.push('\n');
            out.push_str(
                &widths
                    .iter()
                    .map(|w| "-".repeat(*w))
                    .collect::<Vec<_>>()
                    .join("-+-"),
            );
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

fn render_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .enumerate()
        .map(|(i, c)| {
            format!(
                "{:>width$}",
                c,
                width = widths.get(i).copied().unwrap_or(c.len())
            )
        })
        .collect::<Vec<_>>()
        .join(" | ")
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a ratio as `"1.83x"`.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as `"37.2%"`.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_header_rows() {
        let mut t = Table::new("Demo").header(["a", "bb"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("a"));
        assert!(s.contains("333"));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn columns_align() {
        let mut t = Table::new("x").header(["col", "v"]);
        t.row(["aa", "1"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().skip(1).collect();
        // Header and data rows have the same width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_speedup(1.8349), "1.83x");
        assert_eq!(fmt_pct(0.372), "37.2%");
    }
}
