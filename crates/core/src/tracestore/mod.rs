//! Content-addressed on-disk store of captured instruction traces.
//!
//! The `TraceOp` stream of a run is invariant across timing
//! configurations — only `(kernel, graph, threads)` determines it (plus
//! the environment knobs that pick the graph, i.e. `GRAPHPIM_SCALE`).
//! The experiment engine therefore **captures** each distinct workload
//! once — a purely functional kernel execution streamed through the
//! binary codec, no timing simulation — and **replays** the stored bytes
//! through [`SystemSim::run_replayed`](crate::system::SystemSim::run_replayed)
//! for every sweep point. This mirrors the paper's methodology split:
//! MacSim generates the instruction trace once, SST's memory timing
//! models consume it per configuration.
//!
//! Entries are one `.trace` file per (workload, fingerprint) pair, where
//! the fingerprint (see [`crate::fingerprint`]) covers the codec version,
//! crate version, graph recipe, thread count, and the result-affecting
//! env knobs. Writes go through a unique temp file plus rename, so
//! concurrent writers never expose a torn entry; reads validate the
//! codec checksum and degrade corrupt entries to regeneration, never to
//! wrong replays.
//!
//! Environment knobs:
//!
//! * `GRAPHPIM_TRACE_STORE=<dir>` — store directory (default
//!   `<tmpdir>/graphpim-trace-store`).
//! * `GRAPHPIM_NO_TRACE_STORE=1` — disable capture/replay entirely
//!   (every run executes its kernel live, as before this subsystem).

use graphpim_graph::CsrGraph;
use graphpim_sim::trace::codec::TraceReader;
use graphpim_workloads::framework::{EncodeTrace, Framework, StreamTrace};
use graphpim_workloads::kernels::Kernel;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Warns once per (failure site, store dir) about a store I/O failure,
/// then goes quiet for that pair: an unwritable store dir silently
/// turning every sweep cold is the kind of slowdown nobody notices for
/// weeks, but repeating the warning per entry would bury real output.
/// Keying on the directory means a second store rooted elsewhere still
/// gets its own warning.
fn warn_once(dir: &Path, what: &str, e: &std::io::Error) {
    crate::obs::warn_once(
        &format!("tracestore.{what}:{}", dir.display()),
        "tracestore",
        &format!("cannot {what}; traces will not persist (further store errors suppressed)"),
        &[("path", &dir.display()), ("error", &e)],
    );
}

/// Identity of one functional workload: everything that determines the
/// instruction trace (timing configuration explicitly excluded).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WorkloadKey {
    /// Kernel name as accepted by `graphpim_workloads::kernels::by_name`.
    pub kernel: String,
    /// Short filesystem-safe input label (e.g. `ldbc-1k`). The full graph
    /// recipe goes into the fingerprint; this only names the file.
    pub graph: String,
    /// Simulated thread count the trace was captured with (must match the
    /// core count of any config it is replayed under).
    pub threads: usize,
}

impl WorkloadKey {
    /// Filesystem-safe stem for store entries.
    pub fn file_stem(&self) -> String {
        format!(
            "{}-{}-t{}",
            self.kernel.replace('/', "_"),
            self.graph.replace('/', "_"),
            self.threads
        )
    }
}

/// Result of a [`TraceStore::lookup`].
#[derive(Debug)]
pub enum TraceLookup {
    /// A checksum-valid entry for this (key, fingerprint) pair.
    Hit(Vec<u8>),
    /// The entry exists but fails codec validation (torn write, bit rot,
    /// or written by an incompatible codec without a fingerprint bump).
    /// The caller should recapture; the bad file has been evicted
    /// (best-effort, and without clobbering any concurrent
    /// re-publication — see [`TraceStore::lookup`]).
    Corrupt,
    /// Never captured.
    Miss,
}

/// A directory of captured traces, one binary file per
/// (workload, fingerprint) pair. All operations are best-effort: I/O
/// errors degrade to misses / skipped writes, never to wrong results.
#[derive(Debug, Clone)]
pub struct TraceStore {
    dir: PathBuf,
}

impl TraceStore {
    /// The store selected by the environment, or `None` when
    /// `GRAPHPIM_NO_TRACE_STORE` is set.
    pub fn from_env() -> Option<TraceStore> {
        if std::env::var_os("GRAPHPIM_NO_TRACE_STORE").is_some() {
            return None;
        }
        let dir = std::env::var_os("GRAPHPIM_TRACE_STORE")
            .map(PathBuf::from)
            .unwrap_or_else(|| std::env::temp_dir().join("graphpim-trace-store"));
        Some(TraceStore::at(dir))
    }

    /// A store rooted at `dir` (created lazily on first store).
    pub fn at(dir: impl Into<PathBuf>) -> TraceStore {
        TraceStore { dir: dir.into() }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Loads and validates the trace captured for `key` under
    /// `fingerprint`. A corrupt entry is evicted (best-effort) so the
    /// recapture that follows can land cleanly.
    ///
    /// # Concurrency
    ///
    /// Writers publish via temp file + atomic rename, so a read never
    /// observes a torn entry mid-write; the only destructive act a
    /// reader performs is evicting a corrupt file, and a plain
    /// `remove_file` there would race a concurrent re-publication: the
    /// writer can rename a fresh, valid entry over the corrupt one
    /// between this reader's failed validation and its delete, and the
    /// delete would then destroy the *good* entry. Eviction therefore
    /// goes through [`evict_corrupt`](Self::evict_corrupt): atomically
    /// rename the suspect file aside, re-validate what was actually
    /// grabbed, and restore it if it turned out to be a fresh valid
    /// publication.
    pub fn lookup(&self, key: &WorkloadKey, fingerprint: u64) -> TraceLookup {
        let path = self.path(key, fingerprint);
        match std::fs::read(&path) {
            Ok(bytes) => match TraceReader::new(&bytes) {
                Ok(_) => TraceLookup::Hit(bytes),
                Err(_) => self.evict_corrupt(&path),
            },
            Err(_) => TraceLookup::Miss,
        }
    }

    /// Evicts the entry at `path` after a failed validation, without
    /// destroying a concurrently re-published good entry.
    ///
    /// The suspect file is renamed (atomically) to a unique quarantine
    /// name and re-validated *after* the rename — the rename, not the
    /// earlier read, decides which bytes we actually took off the
    /// shelf. Three outcomes:
    ///
    /// * Quarantined bytes are invalid: the corrupt file is gone from
    ///   the store; delete the quarantine file and report `Corrupt`.
    /// * Quarantined bytes are **valid**: a writer re-published between
    ///   our read and our rename, and we grabbed the good entry. Rename
    ///   it back and serve it as a `Hit`. (Captures are deterministic
    ///   per fingerprint, so if yet another publication landed
    ///   meanwhile, clobbering it restores identical bytes.)
    /// * The rename itself fails: another reader evicted first, or the
    ///   entry vanished; nothing to clean up, report `Corrupt` and let
    ///   the caller recapture.
    fn evict_corrupt(&self, path: &Path) -> TraceLookup {
        let quarantine = self.tmp_path();
        if std::fs::rename(path, &quarantine).is_err() {
            return TraceLookup::Corrupt;
        }
        match std::fs::read(&quarantine) {
            Ok(bytes) if TraceReader::new(&bytes).is_ok() => {
                let _ = std::fs::rename(&quarantine, path);
                TraceLookup::Hit(bytes)
            }
            _ => {
                let _ = std::fs::remove_file(&quarantine);
                TraceLookup::Corrupt
            }
        }
    }

    /// Persists `bytes` for `key` under `fingerprint`. Atomic: written to
    /// a unique temp file, then renamed, so concurrent writers (threads
    /// or processes) never expose a torn entry.
    ///
    /// A store failure degrades (the run proceeds, it just re-captures
    /// next time) but warns once per process — an unwritable store dir
    /// silently turning every sweep cold is the kind of slowdown nobody
    /// notices for weeks.
    pub fn store(&self, key: &WorkloadKey, fingerprint: u64, bytes: &[u8]) {
        if let Err(e) = std::fs::create_dir_all(&self.dir) {
            warn_once(&self.dir, "create the store directory", &e);
            return;
        }
        let tmp = self.tmp_path();
        match std::fs::write(&tmp, bytes) {
            Err(e) => warn_once(&self.dir, "write a trace entry", &e),
            Ok(()) => {
                if let Err(e) = std::fs::rename(&tmp, self.path(key, fingerprint)) {
                    warn_once(&self.dir, "publish a trace entry", &e);
                    let _ = std::fs::remove_file(&tmp);
                }
            }
        }
    }

    /// Captures `key`'s workload **streaming straight into the store
    /// entry** and returns the published bytes (read back from disk).
    ///
    /// This is the memory-lean capture path for large inputs: trace bytes
    /// leave the process through a `BufWriter<File>` as the framework
    /// produces them, so the capture's trace footprint is one chunk
    /// instead of the whole encoded stream. Same temp-file + rename
    /// discipline as [`store`](Self::store) — a torn entry is never
    /// published.
    ///
    /// `make_kernel` must return a *fresh* kernel instance each call: on
    /// an I/O failure mid-capture, the partially run kernel is discarded
    /// and the capture restarts in memory (with a best-effort buffered
    /// store), so the caller always gets valid trace bytes back.
    pub fn capture_streaming(
        &self,
        key: &WorkloadKey,
        fingerprint: u64,
        graph: &CsrGraph,
        threads: usize,
        make_kernel: &mut dyn FnMut() -> Box<dyn Kernel>,
    ) -> Vec<u8> {
        match self.capture_streaming_inner(key, fingerprint, graph, threads, make_kernel) {
            Ok(bytes) => bytes,
            Err(e) => {
                warn_once(&self.dir, "stream a capture to disk", &e);
                let mut kernel = make_kernel();
                let bytes = capture_kernel(kernel.as_mut(), graph, threads);
                self.store(key, fingerprint, &bytes);
                bytes
            }
        }
    }

    fn capture_streaming_inner(
        &self,
        key: &WorkloadKey,
        fingerprint: u64,
        graph: &CsrGraph,
        threads: usize,
        make_kernel: &mut dyn FnMut() -> Box<dyn Kernel>,
    ) -> std::io::Result<Vec<u8>> {
        std::fs::create_dir_all(&self.dir)?;
        let tmp = self.tmp_path();
        let write = (|| -> std::io::Result<()> {
            let file = std::fs::File::create(&tmp)?;
            let mut stream = StreamTrace::new(threads, std::io::BufWriter::new(file))?;
            {
                let mut fw = Framework::new(threads, &mut stream);
                make_kernel().run(graph, &mut fw);
                fw.finish();
            }
            let writer = stream.finish()?;
            let mut file = writer.into_inner().map_err(|e| e.into_error())?;
            file.flush()
        })();
        if let Err(e) = write {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        let path = self.path(key, fingerprint);
        if let Err(e) = std::fs::rename(&tmp, &path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        std::fs::read(&path)
    }

    fn tmp_path(&self) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn path(&self, key: &WorkloadKey, fingerprint: u64) -> PathBuf {
        self.dir
            .join(format!("{}-{fingerprint:016x}.trace", key.file_stem()))
    }
}

/// Captures the full instruction trace of one kernel run: a purely
/// functional execution over `threads` simulated threads, streamed
/// straight into the binary codec. No timing model is involved; the
/// result replays bit-identically under any `SystemConfig` whose core
/// count equals `threads`.
pub fn capture_kernel(kernel: &mut dyn Kernel, graph: &CsrGraph, threads: usize) -> Vec<u8> {
    let mut encoder = EncodeTrace::new(threads);
    {
        let mut fw = Framework::new(threads, &mut encoder);
        kernel.run(graph, &mut fw);
        fw.finish();
    }
    encoder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphpim_graph::generate::GraphSpec;
    use graphpim_sim::trace::codec;
    use graphpim_workloads::kernels::Bfs;

    fn tmp_store(name: &str) -> TraceStore {
        let dir = std::env::temp_dir().join(format!(
            "graphpim-tracestore-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TraceStore::at(dir)
    }

    fn key() -> WorkloadKey {
        WorkloadKey {
            kernel: "BFS".into(),
            graph: "uniform-200".into(),
            threads: 2,
        }
    }

    fn sample_trace() -> Vec<u8> {
        let graph = GraphSpec::uniform(200, 800).seed(3).build();
        capture_kernel(&mut Bfs::new(0), &graph, 2)
    }

    #[test]
    fn capture_produces_a_valid_trace() {
        let bytes = sample_trace();
        let (threads, events) = codec::decode(&bytes).expect("capture must be decodable");
        assert_eq!(threads, 2);
        assert!(!events.is_empty(), "BFS must emit work");
    }

    #[test]
    fn round_trips_through_disk() {
        let store = tmp_store("roundtrip");
        let bytes = sample_trace();
        store.store(&key(), 0xFEED, &bytes);
        match store.lookup(&key(), 0xFEED) {
            TraceLookup::Hit(loaded) => assert_eq!(loaded, bytes),
            other => panic!("expected hit, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn streaming_capture_matches_buffered_and_publishes() {
        let store = tmp_store("streamcap");
        let graph = GraphSpec::uniform(200, 800).seed(3).build();
        let buffered = capture_kernel(&mut Bfs::new(0), &graph, 2);
        let streamed =
            store.capture_streaming(&key(), 0xBEEF, &graph, 2, &mut || Box::new(Bfs::new(0)));
        assert_eq!(streamed, buffered, "stream and buffer paths must agree");
        match store.lookup(&key(), 0xBEEF) {
            TraceLookup::Hit(loaded) => assert_eq!(loaded, buffered),
            other => panic!("expected hit, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn changed_fingerprint_misses() {
        let store = tmp_store("fingerprint");
        store.store(&key(), 1, &sample_trace());
        assert!(matches!(store.lookup(&key(), 2), TraceLookup::Miss));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_entry_is_reported_and_removed() {
        let store = tmp_store("corrupt");
        let bytes = sample_trace();
        store.store(&key(), 7, &bytes);
        // Flip one payload byte: the codec checksum must catch it.
        let path = store.path(&key(), 7);
        let mut bad = std::fs::read(&path).unwrap();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(store.lookup(&key(), 7), TraceLookup::Corrupt));
        // The bad file is gone, so the next lookup is a clean miss.
        assert!(matches!(store.lookup(&key(), 7), TraceLookup::Miss));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn eviction_rescues_a_concurrently_republished_entry() {
        // Simulates the writer-vs-evicting-reader race: by the time the
        // reader gets around to evicting, the path holds a *valid*
        // entry again. Eviction must serve it, not destroy it.
        let store = tmp_store("rescue");
        let bytes = sample_trace();
        store.store(&key(), 11, &bytes);
        let path = store.path(&key(), 11);
        match store.evict_corrupt(&path) {
            TraceLookup::Hit(rescued) => assert_eq!(rescued, bytes),
            other => panic!("valid entry must be rescued, got {other:?}"),
        }
        // ... and restored: the store still serves it.
        assert!(matches!(store.lookup(&key(), 11), TraceLookup::Hit(_)));
        // A genuinely corrupt file is evicted for good.
        std::fs::write(&path, b"garbage").unwrap();
        assert!(matches!(store.evict_corrupt(&path), TraceLookup::Corrupt));
        assert!(matches!(store.lookup(&key(), 11), TraceLookup::Miss));
        // No quarantine debris left behind.
        let leftovers: Vec<_> = std::fs::read_dir(store.dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "quarantine files must be cleaned up");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn file_stems_are_filesystem_safe_and_distinct() {
        let a = key();
        let mut b = key();
        b.threads = 16;
        assert_ne!(a.file_stem(), b.file_stem());
        assert!(!a.file_stem().contains('/'));
    }
}
