//! The full-system simulator.
//!
//! [`SystemSim`] consumes the instruction streams emitted by the framework
//! layer (it implements `TraceConsumer`) and drives them through the
//! substrate: one interval-model core per simulated thread, the shared
//! MESI cache hierarchy, and the HMC cube. The [`crate::pou::Pou`] decides,
//! per atomic and per PMR access, which data path applies for the
//! configured [`crate::config::PimMode`].
//!
//! Barriers synchronize the per-core clocks and wait for in-flight posted
//! PIM atomics — the consistency argument of Section II-D.
//!
//! With a [`TraceExporter`] attached ([`SystemSim::run_kernel_traced`]),
//! the simulator additionally snapshots every telemetry counter at each
//! superstep barrier and once more at run end. Collection is pull-based
//! (components are read, never notified), so a traced run produces
//! bit-identical [`RunMetrics`].

use crate::config::{PimMode, SystemConfig};
use crate::metrics::RunMetrics;
use crate::perfetto::PerfettoTrace;
use crate::pou::{AtomicPath, Pou};
use crate::telemetry::TraceExporter;
use graphpim_graph::generate::SplitMix64;
use graphpim_graph::CsrGraph;
use graphpim_sim::attrib::CoreAttrib;
use graphpim_sim::cpu::{CoreModel, CoreStats};
use graphpim_sim::hmc::{HmcAtomicOp, HmcCube, HmcServed, PacketKind};
use graphpim_sim::mem::hierarchy::{CacheHierarchy, ServiceLevel};
use graphpim_sim::mem::Addr;
use graphpim_sim::telemetry::CounterRegistry;
use graphpim_sim::trace::codec::{CodecError, TraceReader};
use graphpim_sim::trace::{Superstep, TraceEvent, TraceOp};
use graphpim_sim::Cycle;
use graphpim_workloads::framework::{Framework, TraceConsumer};
use graphpim_workloads::kernels::Kernel;

/// Extra penalty for a host atomic forced onto uncacheable memory (the
/// cache-line lock degrades to bus locking; Section III-B discussion).
const BUS_LOCK_PENALTY: f64 = 100.0;

/// One in this many memory-request lifecycles is exported as a Perfetto
/// span (full export would dwarf the run it describes).
const PERFETTO_REQUEST_SAMPLE: u64 = 64;

/// Optional observers attached to a run. All of them are pull-based or
/// record already-computed deltas, so any combination leaves the
/// simulated timing bit-identical.
#[derive(Debug, Default)]
pub struct Instrumentation {
    /// Superstep counter snapshots (JSONL; see [`TraceExporter`]).
    pub trace: Option<TraceExporter>,
    /// Chrome trace-event span export (see [`PerfettoTrace`]).
    pub perfetto: Option<PerfettoTrace>,
    /// Cycle-attribution ledgers, reported under `attrib.*` keys.
    pub attribution: bool,
}

impl Instrumentation {
    /// Builds the instrumentation the environment asks for:
    /// `GRAPHPIM_TRACE_DIR`, `GRAPHPIM_PERFETTO_DIR`, and `GRAPHPIM_ATTRIB`
    /// (presence-checked). `label` names the output files.
    pub fn from_env(label: &str) -> Instrumentation {
        Instrumentation {
            trace: TraceExporter::from_env(label),
            perfetto: PerfettoTrace::from_env(label),
            attribution: std::env::var_os("GRAPHPIM_ATTRIB").is_some(),
        }
    }
}

/// The assembled system.
pub struct SystemSim {
    config: SystemConfig,
    pou: Pou,
    cores: Vec<CoreModel>,
    hierarchy: CacheHierarchy,
    cube: HmcCube,
    rng: SplitMix64,
    max_pim_done: Cycle,
    offload_candidates: u64,
    candidate_cache_hits: u64,
    offloaded_atomics: u64,
    host_pei_atomics: u64,
    uncached_reads: u64,
    uncached_writes: u64,
    uncached_atomics: u64,
    memory_service_cycles: f64,
    trace: Option<TraceExporter>,
    perfetto: Option<PerfettoTrace>,
    attribution: bool,
    trace_export_failed: bool,
    superstep: u64,
    /// Release time of the previous barrier (start of the current
    /// superstep) — the left edge of the Perfetto spans being built.
    step_start: Cycle,
    request_samples: u64,
}

impl SystemSim {
    /// Builds a system for `config`.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (see
    /// [`SystemConfig::validate`]) — a bad geometry must fail here, not
    /// produce a wrong simulation.
    pub fn new(config: SystemConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid SystemConfig: {e}");
        }
        let cores = (0..config.sim.core.cores)
            .map(|_| CoreModel::new(&config.sim.core))
            .collect();
        let hierarchy = CacheHierarchy::new(&config.sim.cache, config.sim.core.cores);
        let cube = HmcCube::new(&config.sim.hmc, config.sim.core.clock_ghz);
        let pou = Pou::new(&config);
        let rng = SplitMix64::new(config.seed);
        SystemSim {
            config,
            pou,
            cores,
            hierarchy,
            cube,
            rng,
            max_pim_done: 0.0,
            offload_candidates: 0,
            candidate_cache_hits: 0,
            offloaded_atomics: 0,
            host_pei_atomics: 0,
            uncached_reads: 0,
            uncached_writes: 0,
            uncached_atomics: 0,
            memory_service_cycles: 0.0,
            trace: None,
            perfetto: None,
            attribution: false,
            trace_export_failed: false,
            superstep: 0,
            step_start: 0.0,
            request_samples: 0,
        }
    }

    /// Attaches a trace exporter: counters are snapshotted at every
    /// superstep barrier and at run end. Also enables the cube's per-vault
    /// histograms. Observation-only — metrics stay bit-identical.
    pub fn enable_trace(&mut self, trace: TraceExporter) {
        self.cube.enable_vault_telemetry();
        self.trace = Some(trace);
    }

    /// Attaches a Perfetto span exporter: supersteps, per-core busy/stall
    /// spans, and sampled request lifecycles are recorded and written as
    /// Chrome trace-event JSON when the run finalizes. Observation-only.
    pub fn enable_perfetto(&mut self, mut perfetto: PerfettoTrace) {
        perfetto.process_name(0, "supersteps");
        perfetto.process_name(1, "cores");
        perfetto.process_name(2, "requests (sampled)");
        perfetto.thread_name(0, 0, "superstep");
        for c in 0..self.cores.len() {
            perfetto.thread_name(1, c as u32, &format!("core {c}"));
            perfetto.thread_name(2, c as u32, &format!("core {c} requests"));
        }
        self.perfetto = Some(perfetto);
    }

    /// Turns on cycle attribution in every component (cores, cache
    /// hierarchy, HMC cube). The ledgers surface as `attrib.*` telemetry
    /// keys; timing stays bit-identical (the ledgers record deltas the
    /// timing path already computed).
    pub fn enable_attribution(&mut self) {
        self.attribution = true;
        for core in &mut self.cores {
            core.enable_attribution();
        }
        self.hierarchy.enable_attribution();
        self.cube.enable_attribution();
    }

    /// Attaches any combination of observers.
    pub fn instrument(&mut self, instrumentation: Instrumentation) {
        if let Some(trace) = instrumentation.trace {
            self.enable_trace(trace);
        }
        if let Some(perfetto) = instrumentation.perfetto {
            self.enable_perfetto(perfetto);
        }
        if instrumentation.attribution {
            self.enable_attribution();
        }
    }

    /// Runs a kernel end to end under `config` and returns the metrics.
    pub fn run_kernel(
        kernel: &mut dyn Kernel,
        graph: &CsrGraph,
        config: &SystemConfig,
    ) -> RunMetrics {
        Self::run_kernel_traced(kernel, graph, config, None)
    }

    /// [`run_kernel`](Self::run_kernel) with an optional trace exporter.
    pub fn run_kernel_traced(
        kernel: &mut dyn Kernel,
        graph: &CsrGraph,
        config: &SystemConfig,
        trace: Option<TraceExporter>,
    ) -> RunMetrics {
        Self::run_with_traced(config, trace, |fw| kernel.run(graph, fw))
    }

    /// [`run_kernel`](Self::run_kernel) with the full observer set.
    pub fn run_kernel_instrumented(
        kernel: &mut dyn Kernel,
        graph: &CsrGraph,
        config: &SystemConfig,
        instrumentation: Instrumentation,
    ) -> RunMetrics {
        Self::run_with_instrumented(config, instrumentation, |fw| kernel.run(graph, fw))
    }

    /// Runs an arbitrary framework workload (used by the real-world
    /// applications) and returns the metrics.
    pub fn run_with<F>(config: &SystemConfig, workload: F) -> RunMetrics
    where
        F: FnOnce(&mut Framework<'_>),
    {
        Self::run_with_traced(config, None, workload)
    }

    /// [`run_with`](Self::run_with) with an optional trace exporter.
    pub fn run_with_traced<F>(
        config: &SystemConfig,
        trace: Option<TraceExporter>,
        workload: F,
    ) -> RunMetrics
    where
        F: FnOnce(&mut Framework<'_>),
    {
        Self::run_with_instrumented(
            config,
            Instrumentation {
                trace,
                ..Instrumentation::default()
            },
            workload,
        )
    }

    /// [`run_with`](Self::run_with) with the full observer set.
    pub fn run_with_instrumented<F>(
        config: &SystemConfig,
        instrumentation: Instrumentation,
        workload: F,
    ) -> RunMetrics
    where
        F: FnOnce(&mut Framework<'_>),
    {
        let threads = config.sim.core.cores;
        let mut sys = SystemSim::new(config.clone());
        sys.instrument(instrumentation);
        {
            let mut fw = Framework::new(threads, &mut sys);
            workload(&mut fw);
            fw.finish();
        }
        sys.into_metrics()
    }

    /// Replays a captured binary trace (see
    /// [`graphpim_sim::trace::codec`]) through the timing models under
    /// `config`, without executing any kernel code.
    ///
    /// The trace must have been captured with a thread count equal to
    /// `config.sim.core.cores`; the result is then bit-identical to
    /// [`run_kernel`](Self::run_kernel) of the same workload under the
    /// same config — replay drives the exact chunk/barrier event sequence
    /// a live run produces.
    pub fn run_replayed(bytes: &[u8], config: &SystemConfig) -> Result<RunMetrics, CodecError> {
        Self::run_replayed_traced(bytes, config, None)
    }

    /// [`run_replayed`](Self::run_replayed) with an optional trace
    /// exporter.
    pub fn run_replayed_traced(
        bytes: &[u8],
        config: &SystemConfig,
        trace: Option<TraceExporter>,
    ) -> Result<RunMetrics, CodecError> {
        Self::run_replayed_instrumented(
            bytes,
            config,
            Instrumentation {
                trace,
                ..Instrumentation::default()
            },
        )
    }

    /// [`run_replayed`](Self::run_replayed) with the full observer set.
    pub fn run_replayed_instrumented(
        bytes: &[u8],
        config: &SystemConfig,
        instrumentation: Instrumentation,
    ) -> Result<RunMetrics, CodecError> {
        let mut reader = TraceReader::new(bytes)?;
        let mut sys = SystemSim::new(config.clone());
        sys.instrument(instrumentation);
        while let Some(event) = reader.next_event()? {
            match event {
                TraceEvent::Chunk(step) => sys.chunk(step),
                TraceEvent::Barrier => sys.barrier(),
            }
        }
        Ok(sys.into_metrics())
    }

    /// Sums statistics over all cores.
    fn aggregated_core_stats(&self) -> CoreStats {
        let mut agg = CoreStats::default();
        for core in &self.cores {
            agg.accumulate(core.stats());
        }
        agg
    }

    /// Every telemetry counter of the live system, pulled into one
    /// registry. The same namespaces as
    /// [`RunMetrics::report_telemetry`], so the trace's final snapshot
    /// agrees with the finalized metrics.
    fn collect_counters(&self, total_cycles: Cycle) -> CounterRegistry {
        let mut reg = CounterRegistry::default();
        self.aggregated_core_stats()
            .report_telemetry("core", &mut reg);
        self.hierarchy.report_telemetry(&mut reg);
        self.cube.report_telemetry(&mut reg);
        reg.record("system.cores", self.cores.len() as f64);
        reg.record(
            "system.issue_width",
            self.config.sim.core.issue_width as f64,
        );
        reg.record("system.offload_candidates", self.offload_candidates as f64);
        reg.record(
            "system.candidate_cache_hits",
            self.candidate_cache_hits as f64,
        );
        reg.record("system.offloaded_atomics", self.offloaded_atomics as f64);
        reg.record("system.host_pei_atomics", self.host_pei_atomics as f64);
        reg.record("system.uncached_reads", self.uncached_reads as f64);
        reg.record("system.uncached_writes", self.uncached_writes as f64);
        reg.record("system.uncached_atomics", self.uncached_atomics as f64);
        reg.record("system.memory_service_cycles", self.memory_service_cycles);
        reg.record("system.total_cycles", total_cycles);
        reg.record(
            "telemetry.export_failures",
            if self.trace_export_failed { 1.0 } else { 0.0 },
        );
        if self.attribution {
            let mut core_attrib = CoreAttrib::default();
            for core in &self.cores {
                core_attrib.accumulate(core.attrib().expect("attribution enabled"));
            }
            core_attrib.report_telemetry("attrib.core", &mut reg);
            // Per-core clocks telescope into the buckets, so `busy` is the
            // sum of all core-local time; `idle` is each core's gap to the
            // machine-wide end. busy + idle = machine cycles (checked by
            // the validation layer).
            reg.record("attrib.core.busy", core_attrib.total());
            let idle: f64 = self
                .cores
                .iter()
                .map(|c| (total_cycles - c.now()).max(0.0))
                .sum();
            reg.record("attrib.core.idle", idle);
            reg.record(
                "attrib.core.machine_cycles",
                total_cycles * self.cores.len() as f64,
            );
            if let Some(a) = self.hierarchy.attrib() {
                a.report_telemetry("attrib.cache", &mut reg);
            }
            if let Some(a) = self.cube.attrib() {
                a.report_telemetry("attrib.hmc", &mut reg);
            }
        }
        reg
    }

    /// Finalizes the run: waits for all in-flight work and aggregates.
    pub fn into_metrics(mut self) -> RunMetrics {
        let mut end: Cycle = self.max_pim_done;
        for core in &mut self.cores {
            end = end.max(core.finish());
        }
        let total_cycles = end.max(1e-9);
        if let Some(mut perfetto) = self.perfetto.take() {
            // Close out the last (possibly barrier-less) superstep: cores
            // are drained at `now()`, then idle until the machine-wide end.
            for (c, core) in self.cores.iter().enumerate() {
                let busy_end = core.now().min(total_cycles);
                perfetto.span("busy", "core", 1, c as u32, self.step_start, busy_end, &[]);
                perfetto.span("drain", "core", 1, c as u32, busy_end, total_cycles, &[]);
            }
            perfetto.span(
                &format!("superstep {}", self.superstep + 1),
                "superstep",
                0,
                0,
                self.step_start,
                total_cycles,
                &[],
            );
            let path = perfetto.path().to_path_buf();
            if let Err(e) = perfetto.write() {
                eprintln!("[perfetto] cannot write {}: {e}", path.display());
                self.trace_export_failed = true;
            }
        }
        if self.trace.is_some() {
            // Final snapshot: the only one where `system.total_cycles`
            // reflects the finished run.
            let counters = self.collect_counters(total_cycles);
            if let Some(trace) = self.trace.take() {
                let mut trace = trace;
                let path = trace.path().to_path_buf();
                trace.snapshot(self.superstep + 1, total_cycles, &counters);
                if let Err(e) = trace.finish() {
                    eprintln!("[trace] cannot write {}: {e}", path.display());
                    self.trace_export_failed = true;
                }
            }
        }
        let agg = self.aggregated_core_stats();
        let (l1, l2, l3) = self.hierarchy.level_counts();
        let metrics = RunMetrics {
            mode: self.config.mode,
            cores: self.cores.len(),
            issue_width: self.config.sim.core.issue_width,
            total_cycles,
            core: agg,
            l1,
            l2,
            l3,
            hmc: self.cube.stats().clone(),
            offload_candidates: self.offload_candidates,
            candidate_cache_hits: self.candidate_cache_hits,
            offloaded_atomics: self.offloaded_atomics,
            host_pei_atomics: self.host_pei_atomics,
            uncached_reads: self.uncached_reads,
            uncached_writes: self.uncached_writes,
            uncached_atomics: self.uncached_atomics,
            memory_service_cycles: self.memory_service_cycles,
            trace_export_failed: self.trace_export_failed,
        };
        if crate::validate::validation_enabled() {
            // Conservation pass (see `crate::validate`): the finalized
            // metrics must satisfy every invariant, and must agree with
            // the counters pulled live from the components.
            let counters = self.collect_counters(total_cycles);
            let mut violations = crate::validate::check_run(&metrics, &counters);
            violations.extend(crate::validate::check_run_config(&metrics, &self.config));
            crate::validate::enforce(&format!("{:?} run", self.config.mode), &violations);
        }
        metrics
    }

    fn process(&mut self, t: usize, op: TraceOp) {
        match op {
            TraceOp::Compute(n) => self.cores[t].compute(n),
            TraceOp::Branch { predictable, dep } => {
                let mispredicted =
                    !predictable && self.rng.next_f64() < self.config.mispredict_rate;
                self.cores[t].branch(mispredicted, dep);
            }
            TraceOp::Load { addr, dep } => self.load(t, addr, dep),
            TraceOp::Store { addr } => self.store(t, addr),
            TraceOp::Atomic { addr, op, dep } => self.atomic(t, addr, op, dep),
        }
    }

    fn load(&mut self, t: usize, addr: Addr, dep: bool) {
        if self.pou.bypass_cache(addr) {
            // Uncacheable PMR load: straight to the cube as a 16-byte read.
            let t0 = self.cores[t].begin_mem(dep, true);
            let served = self.cube.service(PacketKind::Read16, addr, t0);
            self.memory_service_cycles += served.response_at - t0;
            self.perfetto_request(t, "load.pmr", t0, &served);
            self.cores[t].complete_load(served.response_at, true);
            self.uncached_reads += 1;
            return;
        }
        let t0 = self.cores[t].begin_mem(dep, false);
        let out = self.hierarchy.access(t, addr, false);
        self.flush_writebacks(&out.writebacks, t0);
        if out.level == ServiceLevel::Memory {
            let t1 = self.cores[t].acquire_mshr();
            let served = self
                .cube
                .service(PacketKind::Read64, addr, t1 + out.latency as f64);
            self.memory_service_cycles += served.response_at - t1;
            self.perfetto_request(t, "load.miss", t1, &served);
            self.cores[t].complete_load(served.response_at, true);
        } else {
            self.cores[t].complete_load(t0 + out.latency as f64, false);
        }
    }

    fn store(&mut self, t: usize, addr: Addr) {
        if self.pou.bypass_cache(addr) {
            // Posted uncacheable store: write-combining path, no MSHR.
            let t0 = self.cores[t].begin_mem(false, false);
            let served = self.cube.service(PacketKind::Write16, addr, t0);
            self.max_pim_done = self.max_pim_done.max(served.memory_done);
            self.cores[t].complete_store();
            self.uncached_writes += 1;
            return;
        }
        let t0 = self.cores[t].begin_mem(false, false);
        let out = self.hierarchy.access(t, addr, true);
        self.flush_writebacks(&out.writebacks, t0);
        if out.level == ServiceLevel::Memory {
            // Read-for-ownership line fill; the store itself is posted.
            let served = self
                .cube
                .service(PacketKind::Read64, addr, t0 + out.latency as f64);
            self.max_pim_done = self.max_pim_done.max(served.memory_done);
        }
        self.cores[t].complete_store();
    }

    fn atomic(&mut self, t: usize, addr: Addr, op: HmcAtomicOp, dep: bool) {
        if self.config.atomics_as_plain {
            // Figure 4 micro-benchmark: the same data access without any
            // synchronization semantics.
            self.load(t, addr, dep);
            self.store(t, addr);
            return;
        }
        if self.pou.is_candidate(addr) {
            self.offload_candidates += 1;
        }
        match self.pou.route_atomic(addr, op) {
            AtomicPath::Host => self.host_atomic(t, addr),
            AtomicPath::LocalityDependent => self.upei_atomic(t, addr, op, dep),
            AtomicPath::Offload => self.pim_atomic(t, addr, op, dep),
        }
    }

    /// Conventional host-side atomic (Baseline; any non-PMR atomic; FP
    /// atomics without the extension).
    fn host_atomic(&mut self, t: usize, addr: Addr) {
        let start = self.cores[t].host_atomic_begin();
        if self.pou.bypass_cache(addr) {
            // Atomic on uncacheable memory without PIM support: the
            // cache-line lock degrades to bus locking (Section III-B).
            let read = self.cube.service(PacketKind::Read16, addr, start);
            let write = self
                .cube
                .service(PacketKind::Write16, addr, read.response_at);
            let service = (write.memory_done - start) + BUS_LOCK_PENALTY;
            self.memory_service_cycles += service;
            self.perfetto_request(t, "atomic.host-buslock", start, &write);
            self.cores[t].host_atomic_finish(service, 0.0);
            self.uncached_atomics += 1;
            return;
        }
        let out = self.hierarchy.access(t, addr, true);
        self.flush_writebacks(&out.writebacks, start);
        if self.pou.is_candidate(addr) && out.level != ServiceLevel::Memory {
            self.candidate_cache_hits += 1;
        }
        let cache_part = out.latency as f64;
        let mut service = cache_part;
        if out.level == ServiceLevel::Memory {
            let served = self
                .cube
                .service(PacketKind::Read64, addr, start + cache_part);
            service += served.response_at - (start + cache_part);
            self.perfetto_request(t, "atomic.host-fill", start, &served);
        }
        self.memory_service_cycles += service;
        self.cores[t].host_atomic_finish(service, cache_part);
    }

    /// U-PEI: the idealized PEI of Section IV-B. PEI operations are
    /// cacheable and locality aware: the data stays in the cache hierarchy
    /// (the access fills, with ideal zero-cost coherence against the
    /// memory-side copy), operations that hit execute host-side at cache
    /// latency with no locked-RMW penalty, and operations that miss are
    /// offloaded after paying the cache-checking latency. Every PEI
    /// operation traverses the host cache/LSQ path, so offloaded ones
    /// (posted or not) occupy an MSHR until the memory side completes —
    /// the cache-involvement cost GraphPIM's bypass avoids.
    fn upei_atomic(&mut self, t: usize, addr: Addr, op: HmcAtomicOp, dep: bool) {
        let t0 = self.cores[t].begin_mem(dep, false);
        let out = self.hierarchy.access(t, addr, true);
        self.flush_writebacks(&out.writebacks, t0);
        if out.level != ServiceLevel::Memory {
            self.candidate_cache_hits += 1;
            self.host_pei_atomics += 1;
            self.cores[t].complete_pim_atomic(t0 + out.latency as f64, op.has_return());
            return;
        }
        let t1 = self.cores[t].acquire_mshr();
        let served = self
            .cube
            .service(PacketKind::Atomic(op), addr, t1 + out.latency as f64);
        self.perfetto_request(t, "atomic.upei", t1, &served);
        if op.has_return() {
            self.finish_pim(t, op, t1, served.response_at, served.memory_done);
        } else {
            self.offloaded_atomics += 1;
            self.cores[t].complete_posted_tracked(served.response_at);
            self.max_pim_done = self.max_pim_done.max(served.memory_done);
        }
    }

    /// GraphPIM: offload directly, no cache involvement. Posted atomics
    /// behave like stores (no MSHR); returning atomics occupy an MSHR
    /// like loads.
    fn pim_atomic(&mut self, t: usize, addr: Addr, op: HmcAtomicOp, dep: bool) {
        let t0 = self.cores[t].begin_mem(dep, false);
        let t1 = if op.has_return() {
            self.cores[t].acquire_mshr()
        } else {
            t0
        };
        let served = self.cube.service(PacketKind::Atomic(op), addr, t1);
        self.perfetto_request(t, "atomic.pim", t1, &served);
        self.finish_pim(t, op, t1, served.response_at, served.memory_done);
    }

    fn finish_pim(
        &mut self,
        t: usize,
        op: HmcAtomicOp,
        issued: Cycle,
        response_at: Cycle,
        memory_done: Cycle,
    ) {
        self.offloaded_atomics += 1;
        let returns = op.has_return();
        if returns {
            self.memory_service_cycles += response_at - issued;
        }
        self.cores[t].complete_pim_atomic(response_at, returns);
        self.max_pim_done = self.max_pim_done.max(memory_done);
    }

    /// Exports every [`PERFETTO_REQUEST_SAMPLE`]-th request lifecycle as a
    /// span on the requests row (pid 2). Posted stores and writebacks are
    /// skipped — they never stall the core.
    fn perfetto_request(&mut self, t: usize, name: &str, issued: Cycle, served: &HmcServed) {
        if self.perfetto.is_none() {
            return;
        }
        self.request_samples += 1;
        if !(self.request_samples - 1).is_multiple_of(PERFETTO_REQUEST_SAMPLE) {
            return;
        }
        if let Some(perfetto) = &mut self.perfetto {
            perfetto.span(
                name,
                "request",
                2,
                t as u32,
                issued,
                served.response_at,
                &[("bank_wait", served.bank_wait), ("fu_wait", served.fu_wait)],
            );
        }
    }

    fn flush_writebacks(&mut self, writebacks: &[Addr], now: Cycle) {
        for &wb in writebacks {
            // Posted dirty-line writeback; consumes link/bank resources but
            // never stalls the core.
            self.cube.service(PacketKind::Write64, wb, now);
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> PimMode {
        self.config.mode
    }
}

impl TraceConsumer for SystemSim {
    fn chunk(&mut self, step: Superstep) {
        // Interleave threads by core-local time: always advance the
        // earliest core. Shared busy-until resources (links, banks, FUs)
        // then see requests in roughly monotone time order, which keeps
        // the contention model honest across cores.
        let cores = self.cores.len();
        let mut index = vec![0usize; step.threads.len()];
        const BATCH: usize = 1;
        loop {
            let mut best: Option<usize> = None;
            for (t, ops) in step.threads.iter().enumerate() {
                if index[t] < ops.len() {
                    let better = match best {
                        None => true,
                        Some(b) => self.cores[t % cores].now() < self.cores[b % cores].now(),
                    };
                    if better {
                        best = Some(t);
                    }
                }
            }
            let Some(t) = best else { break };
            let ops = &step.threads[t];
            let end = (index[t] + BATCH).min(ops.len());
            for &op in &ops[index[t]..end] {
                self.process(t % cores, op);
            }
            index[t] = end;
        }
    }

    fn barrier(&mut self) {
        let mut release: Cycle = self.max_pim_done;
        for core in &self.cores {
            release = release.max(core.drain_time());
        }
        if let Some(perfetto) = &mut self.perfetto {
            // Spans for the superstep that just ended: each core is busy
            // until its own drain point, then stalled at the barrier.
            for (c, core) in self.cores.iter().enumerate() {
                let busy_end = core.drain_time().min(release);
                let start = self.step_start;
                perfetto.span("busy", "core", 1, c as u32, start, busy_end, &[]);
                perfetto.span("barrier", "core", 1, c as u32, busy_end, release, &[]);
            }
            perfetto.span(
                &format!("superstep {}", self.superstep + 1),
                "superstep",
                0,
                0,
                self.step_start,
                release,
                &[],
            );
        }
        for core in &mut self.cores {
            core.barrier(release);
        }
        self.max_pim_done = release;
        self.superstep += 1;
        self.step_start = release;
        if self.trace.is_some() {
            let counters = self.collect_counters(release);
            if let Some(trace) = &mut self.trace {
                trace.snapshot(self.superstep, release, &counters);
            }
        }
    }
}

impl std::fmt::Debug for SystemSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemSim")
            .field("mode", &self.config.mode)
            .field("cores", &self.cores.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphpim_graph::generate::GraphSpec;
    use graphpim_workloads::kernels::{Bfs, DCentr, PRank};

    fn graph() -> CsrGraph {
        // Property array (8 B/vertex) far exceeds the tiny config's 16 KB
        // L3, so property accesses are genuinely irregular-missing — the
        // regime the paper evaluates (Fig. 14 covers the cache-resident
        // counter-case).
        GraphSpec::uniform(20_000, 60_000).seed(2).build()
    }

    fn run(mode: PimMode) -> RunMetrics {
        let config = SystemConfig::tiny(mode);
        SystemSim::run_kernel(&mut DCentr::new(), &graph(), &config)
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn graphpim_beats_baseline_on_atomic_heavy_kernel() {
        let base = run(PimMode::Baseline);
        let pim = run(PimMode::GraphPim);
        assert!(
            pim.total_cycles < base.total_cycles,
            "GraphPIM {} vs baseline {}",
            pim.total_cycles,
            base.total_cycles
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn offload_counters_by_mode() {
        let base = run(PimMode::Baseline);
        assert_eq!(base.offloaded_atomics, 0);
        assert!(base.offload_candidates > 0);
        assert!(base.core.host_atomics > 0);

        let pim = run(PimMode::GraphPim);
        assert_eq!(pim.offloaded_atomics, pim.offload_candidates);
        assert_eq!(pim.core.host_atomics, 0);

        let upei = run(PimMode::UPei);
        assert_eq!(
            upei.offloaded_atomics + upei.host_pei_atomics,
            upei.offload_candidates
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn graphpim_bypasses_caches_for_property() {
        let pim = run(PimMode::GraphPim);
        assert!(pim.uncached_reads > 0 || pim.uncached_writes > 0);
        let base = run(PimMode::Baseline);
        assert_eq!(base.uncached_reads, 0);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn atomic_overhead_only_in_baseline() {
        let base = run(PimMode::Baseline);
        let pim = run(PimMode::GraphPim);
        assert!(base.core.atomic_incore_cycles > 0.0);
        assert_eq!(pim.core.atomic_incore_cycles, 0.0);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn bandwidth_lower_under_graphpim_for_dc() {
        let base = run(PimMode::Baseline);
        let pim = run(PimMode::GraphPim);
        assert!(
            pim.total_flits() < base.total_flits(),
            "GraphPIM flits {} vs baseline {}",
            pim.total_flits(),
            base.total_flits()
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn bfs_results_identical_across_modes() {
        let g = graph();
        let mut depths = Vec::new();
        for mode in PimMode::ALL {
            let mut bfs = Bfs::new(0);
            SystemSim::run_kernel(&mut bfs, &g, &SystemConfig::tiny(mode));
            depths.push(bfs.depths().to_vec());
        }
        assert_eq!(depths[0], depths[1]);
        assert_eq!(depths[1], depths[2]);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn deterministic_metrics() {
        let a = run(PimMode::GraphPim);
        let b = run(PimMode::GraphPim);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.total_flits(), b.total_flits());
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn fp_extension_needed_for_prank_offload() {
        let g = graph();
        let with = SystemSim::run_kernel(
            &mut PRank::new(2),
            &g,
            &SystemConfig::tiny(PimMode::GraphPim),
        );
        let without = SystemSim::run_kernel(
            &mut PRank::new(2),
            &g,
            &SystemConfig::tiny(PimMode::GraphPim).without_fp_extension(),
        );
        assert!(with.offloaded_atomics > 0);
        assert_eq!(without.offloaded_atomics, 0);
        assert_eq!(with.uncached_atomics, 0);
        // Unsupported FP atomics on uncacheable PMR degrade to bus-locked
        // host RMWs — and are counted, not silently dropped.
        assert_eq!(without.uncached_atomics, without.offload_candidates);
        assert!(
            with.total_cycles < without.total_cycles,
            "FP extension should help PRank"
        );
    }

    #[test]
    #[should_panic(expected = "invalid SystemConfig")]
    fn invalid_config_rejected_at_construction() {
        let mut config = SystemConfig::tiny(PimMode::Baseline);
        config.sim.cache.l1.ways = 0;
        let _ = SystemSim::new(config);
    }

    #[test]
    fn run_with_closure_api() {
        let g = graph();
        let metrics = SystemSim::run_with(&SystemConfig::tiny(PimMode::Baseline), |fw| {
            let mut bfs = Bfs::new(0);
            bfs.run(&g, fw);
        });
        assert!(metrics.total_cycles > 0.0);
        assert!(metrics.core.instructions > 0);
    }
}
