//! The full-system simulator.
//!
//! [`SystemSim`] consumes the instruction streams emitted by the framework
//! layer (it implements `TraceConsumer`) and drives them through the
//! substrate: one interval-model core per simulated thread, the shared
//! MESI cache hierarchy, and the configured memory backend (the paper's
//! HMC cube by default; see [`graphpim_sim::backend`]). The
//! [`crate::pou::Pou`] decides, per atomic and per PMR access, which data
//! path applies for the configured [`crate::config::PimMode`].
//!
//! Barriers synchronize the per-core clocks and wait for in-flight posted
//! PIM atomics — the consistency argument of Section II-D.
//!
//! With a [`TraceExporter`] attached ([`SystemSim::run_kernel_traced`]),
//! the simulator additionally snapshots every telemetry counter at each
//! superstep barrier and once more at run end. Collection is pull-based
//! (components are read, never notified), so a traced run produces
//! bit-identical [`RunMetrics`].

use crate::config::{PimMode, SystemConfig};
use crate::metrics::RunMetrics;
use crate::perfetto::PerfettoTrace;
use crate::pou::{AtomicPath, Pou};
use crate::telemetry::TraceExporter;
use graphpim_graph::generate::SplitMix64;
use graphpim_graph::CsrGraph;
use graphpim_sim::attrib::CoreAttrib;
use graphpim_sim::backend::MemoryBackend;
use graphpim_sim::cpu::{CoreModel, CoreStats};
use graphpim_sim::hmc::{HmcAtomicOp, HmcServed, PacketKind};
use graphpim_sim::mem::hierarchy::{AccessResult, CacheHierarchy, ServiceLevel};
use graphpim_sim::mem::Addr;
use graphpim_sim::telemetry::CounterRegistry;
use graphpim_sim::trace::codec::{CodecError, DecodedEvent, DecodedTrace, ThreadSpan};
use graphpim_sim::trace::{Superstep, TraceOp};
use graphpim_sim::Cycle;
use graphpim_workloads::framework::{Framework, TraceConsumer};
use graphpim_workloads::kernels::Kernel;

/// Extra penalty for a host atomic forced onto uncacheable memory (the
/// cache-line lock degrades to bus locking; Section III-B discussion).
const BUS_LOCK_PENALTY: f64 = 100.0;

/// One in this many memory-request lifecycles is exported as a Perfetto
/// span (full export would dwarf the run it describes).
const PERFETTO_REQUEST_SAMPLE: u64 = 64;

/// Optional observers attached to a run. All of them are pull-based or
/// record already-computed deltas, so any combination leaves the
/// simulated timing bit-identical.
#[derive(Debug, Default)]
pub struct Instrumentation {
    /// Superstep counter snapshots (JSONL; see [`TraceExporter`]).
    pub trace: Option<TraceExporter>,
    /// Chrome trace-event span export (see [`PerfettoTrace`]).
    pub perfetto: Option<PerfettoTrace>,
    /// Cycle-attribution ledgers, reported under `attrib.*` keys.
    pub attribution: bool,
}

impl Instrumentation {
    /// Builds the instrumentation the environment asks for:
    /// `GRAPHPIM_TRACE_DIR`, `GRAPHPIM_PERFETTO_DIR`, and `GRAPHPIM_ATTRIB`
    /// (presence-checked). `label` names the output files.
    pub fn from_env(label: &str) -> Instrumentation {
        Instrumentation {
            trace: TraceExporter::from_env(label),
            perfetto: PerfettoTrace::from_env(label),
            attribution: std::env::var_os("GRAPHPIM_ATTRIB").is_some(),
        }
    }
}

/// The assembled system.
pub struct SystemSim {
    config: SystemConfig,
    pou: Pou,
    cores: Vec<CoreModel>,
    hierarchy: CacheHierarchy,
    backend: Box<dyn MemoryBackend>,
    rng: SplitMix64,
    max_pim_done: Cycle,
    offload_candidates: u64,
    candidate_cache_hits: u64,
    offloaded_atomics: u64,
    host_pei_atomics: u64,
    uncached_reads: u64,
    uncached_writes: u64,
    uncached_atomics: u64,
    memory_service_cycles: f64,
    trace: Option<TraceExporter>,
    perfetto: Option<PerfettoTrace>,
    attribution: bool,
    trace_export_failed: bool,
    superstep: u64,
    /// Release time of the previous barrier (start of the current
    /// superstep) — the left edge of the Perfetto spans being built.
    step_start: Cycle,
    request_samples: u64,
    /// Scheduler scratch (see [`Self::run_chunk`]): the ready min-heap and
    /// per-thread cursors. Kept on the struct so the per-chunk hot path
    /// allocates nothing once capacities have grown to the thread count.
    sched_heap: Vec<SchedEntry>,
    sched_cursor: Vec<usize>,
    /// Per-thread op ranges of the decoded chunk being scheduled
    /// (see [`Self::chunk_decoded`]).
    sched_spans: Vec<(usize, usize)>,
    /// Reused dirty-writeback buffer for cache accesses
    /// (see [`Self::access_cached`]).
    wb_scratch: Vec<Addr>,
}

/// One ready thread in the scheduler heap: `(key, thread, core)` where
/// `key` is the thread's core clock as sign-preserving bits. Clocks are
/// non-negative finite `f64`s, so `f64::to_bits` is order-preserving and
/// the derived lexicographic `Ord` compares `(now, thread)` exactly like
/// the ordering contract demands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct SchedEntry {
    key: u64,
    thread: u32,
    core: u32,
}

/// Restores min-heap order for `heap[i]` against its parents.
fn heap_sift_up(heap: &mut [SchedEntry], mut i: usize) {
    while i > 0 {
        let parent = (i - 1) / 2;
        if heap[i] < heap[parent] {
            heap.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

/// Restores min-heap order for `heap[i]` against its descendants.
fn heap_sift_down(heap: &mut [SchedEntry], mut i: usize) {
    let len = heap.len();
    loop {
        let left = 2 * i + 1;
        if left >= len {
            break;
        }
        let right = left + 1;
        let child = if right < len && heap[right] < heap[left] {
            right
        } else {
            left
        };
        if heap[child] < heap[i] {
            heap.swap(i, child);
            i = child;
        } else {
            break;
        }
    }
}

impl SystemSim {
    /// Builds a system for `config`.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (see
    /// [`SystemConfig::validate`]) — a bad geometry must fail here, not
    /// produce a wrong simulation.
    pub fn new(config: SystemConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid SystemConfig: {e}");
        }
        for warning in config.validation_warnings() {
            crate::obs::warn("config", "config warning", &[("warning", &warning)]);
        }
        let cores = (0..config.sim.core.cores)
            .map(|_| CoreModel::new(&config.sim.core))
            .collect();
        let hierarchy = CacheHierarchy::new(&config.sim.cache, config.sim.core.cores);
        let backend = config.sim.backend.build(&config.sim);
        let pou = Pou::new(&config);
        let rng = SplitMix64::new(config.seed);
        SystemSim {
            config,
            pou,
            cores,
            hierarchy,
            backend,
            rng,
            max_pim_done: 0.0,
            offload_candidates: 0,
            candidate_cache_hits: 0,
            offloaded_atomics: 0,
            host_pei_atomics: 0,
            uncached_reads: 0,
            uncached_writes: 0,
            uncached_atomics: 0,
            memory_service_cycles: 0.0,
            trace: None,
            perfetto: None,
            attribution: false,
            trace_export_failed: false,
            superstep: 0,
            step_start: 0.0,
            request_samples: 0,
            sched_heap: Vec::new(),
            sched_cursor: Vec::new(),
            sched_spans: Vec::new(),
            wb_scratch: Vec::with_capacity(64),
        }
    }

    /// Attaches a trace exporter: counters are snapshotted at every
    /// superstep barrier and at run end. Also enables the cube's per-vault
    /// histograms. Observation-only — metrics stay bit-identical.
    pub fn enable_trace(&mut self, trace: TraceExporter) {
        self.backend.enable_vault_telemetry();
        self.trace = Some(trace);
    }

    /// Attaches a Perfetto span exporter: supersteps, per-core busy/stall
    /// spans, and sampled request lifecycles are recorded and written as
    /// Chrome trace-event JSON when the run finalizes. Observation-only.
    pub fn enable_perfetto(&mut self, mut perfetto: PerfettoTrace) {
        perfetto.process_name(0, "supersteps");
        perfetto.process_name(1, "cores");
        perfetto.process_name(2, "requests (sampled)");
        perfetto.thread_name(0, 0, "superstep");
        for c in 0..self.cores.len() {
            perfetto.thread_name(1, c as u32, &format!("core {c}"));
            perfetto.thread_name(2, c as u32, &format!("core {c} requests"));
        }
        self.perfetto = Some(perfetto);
    }

    /// Turns on cycle attribution in every component (cores, cache
    /// hierarchy, HMC cube). The ledgers surface as `attrib.*` telemetry
    /// keys; timing stays bit-identical (the ledgers record deltas the
    /// timing path already computed).
    pub fn enable_attribution(&mut self) {
        self.attribution = true;
        for core in &mut self.cores {
            core.enable_attribution();
        }
        self.hierarchy.enable_attribution();
        self.backend.enable_attribution();
    }

    /// Attaches any combination of observers.
    pub fn instrument(&mut self, instrumentation: Instrumentation) {
        if let Some(trace) = instrumentation.trace {
            self.enable_trace(trace);
        }
        if let Some(perfetto) = instrumentation.perfetto {
            self.enable_perfetto(perfetto);
        }
        if instrumentation.attribution {
            self.enable_attribution();
        }
    }

    /// Runs a kernel end to end under `config` and returns the metrics.
    pub fn run_kernel(
        kernel: &mut dyn Kernel,
        graph: &CsrGraph,
        config: &SystemConfig,
    ) -> RunMetrics {
        Self::run_kernel_traced(kernel, graph, config, None)
    }

    /// [`run_kernel`](Self::run_kernel) with an optional trace exporter.
    pub fn run_kernel_traced(
        kernel: &mut dyn Kernel,
        graph: &CsrGraph,
        config: &SystemConfig,
        trace: Option<TraceExporter>,
    ) -> RunMetrics {
        Self::run_with_traced(config, trace, |fw| kernel.run(graph, fw))
    }

    /// [`run_kernel`](Self::run_kernel) with the full observer set.
    pub fn run_kernel_instrumented(
        kernel: &mut dyn Kernel,
        graph: &CsrGraph,
        config: &SystemConfig,
        instrumentation: Instrumentation,
    ) -> RunMetrics {
        Self::run_with_instrumented(config, instrumentation, |fw| kernel.run(graph, fw))
    }

    /// Runs an arbitrary framework workload (used by the real-world
    /// applications) and returns the metrics.
    pub fn run_with<F>(config: &SystemConfig, workload: F) -> RunMetrics
    where
        F: FnOnce(&mut Framework<'_>),
    {
        Self::run_with_traced(config, None, workload)
    }

    /// [`run_with`](Self::run_with) with an optional trace exporter.
    pub fn run_with_traced<F>(
        config: &SystemConfig,
        trace: Option<TraceExporter>,
        workload: F,
    ) -> RunMetrics
    where
        F: FnOnce(&mut Framework<'_>),
    {
        Self::run_with_instrumented(
            config,
            Instrumentation {
                trace,
                ..Instrumentation::default()
            },
            workload,
        )
    }

    /// [`run_with`](Self::run_with) with the full observer set.
    pub fn run_with_instrumented<F>(
        config: &SystemConfig,
        instrumentation: Instrumentation,
        workload: F,
    ) -> RunMetrics
    where
        F: FnOnce(&mut Framework<'_>),
    {
        let threads = config.sim.core.cores;
        let mut sys = SystemSim::new(config.clone());
        sys.instrument(instrumentation);
        {
            let mut fw = Framework::new(threads, &mut sys);
            workload(&mut fw);
            fw.finish();
        }
        sys.into_metrics()
    }

    /// Replays a captured binary trace (see
    /// [`graphpim_sim::trace::codec`]) through the timing models under
    /// `config`, without executing any kernel code.
    ///
    /// The trace must have been captured with a thread count equal to
    /// `config.sim.core.cores`; the result is then bit-identical to
    /// [`run_kernel`](Self::run_kernel) of the same workload under the
    /// same config — replay drives the exact chunk/barrier event sequence
    /// a live run produces.
    pub fn run_replayed(bytes: &[u8], config: &SystemConfig) -> Result<RunMetrics, CodecError> {
        Self::run_replayed_traced(bytes, config, None)
    }

    /// [`run_replayed`](Self::run_replayed) with an optional trace
    /// exporter.
    pub fn run_replayed_traced(
        bytes: &[u8],
        config: &SystemConfig,
        trace: Option<TraceExporter>,
    ) -> Result<RunMetrics, CodecError> {
        Self::run_replayed_instrumented(
            bytes,
            config,
            Instrumentation {
                trace,
                ..Instrumentation::default()
            },
        )
    }

    /// [`run_replayed`](Self::run_replayed) with the full observer set.
    ///
    /// Decodes the whole trace up front (so codec errors surface before
    /// any simulation happens), then drives the flat op buffer through the
    /// timing models — the same fast path as
    /// [`run_decoded`](Self::run_decoded).
    pub fn run_replayed_instrumented(
        bytes: &[u8],
        config: &SystemConfig,
        instrumentation: Instrumentation,
    ) -> Result<RunMetrics, CodecError> {
        let decoded = DecodedTrace::decode(bytes)?;
        Ok(Self::run_decoded_instrumented(
            &decoded,
            config,
            instrumentation,
        ))
    }

    /// Replays a pre-decoded trace. Decoding once and replaying the flat
    /// [`TraceOp`] buffer many times is the engine's steady state: every
    /// timing-config sweep point reuses the same [`DecodedTrace`] without
    /// touching the varint codec again. Bit-identical to
    /// [`run_replayed`](Self::run_replayed) on the same bytes.
    pub fn run_decoded(trace: &DecodedTrace, config: &SystemConfig) -> RunMetrics {
        Self::run_decoded_instrumented(trace, config, Instrumentation::default())
    }

    /// [`run_decoded`](Self::run_decoded) with the full observer set.
    pub fn run_decoded_instrumented(
        trace: &DecodedTrace,
        config: &SystemConfig,
        instrumentation: Instrumentation,
    ) -> RunMetrics {
        let mut sys = SystemSim::new(config.clone());
        sys.instrument(instrumentation);
        for event in trace.events() {
            sys.replay_decoded_event(trace, event);
        }
        sys.into_metrics()
    }

    /// Feeds one decoded event through the consumer. Public so harnesses
    /// (benches, the allocation-guard test) can drive a replay
    /// incrementally; [`run_decoded`](Self::run_decoded) is this in a
    /// loop.
    pub fn replay_decoded_event(&mut self, trace: &DecodedTrace, event: DecodedEvent<'_>) {
        match event {
            DecodedEvent::Chunk(spans) => self.chunk_decoded(trace, spans),
            DecodedEvent::Barrier => self.barrier(),
        }
    }

    /// Schedules one decoded chunk frame: each span is a thread's op range
    /// in the trace's flat buffer. Same ordering contract as
    /// [`TraceConsumer::chunk`], without materializing per-thread `Vec`s.
    fn chunk_decoded(&mut self, trace: &DecodedTrace, spans: &[ThreadSpan]) {
        let mut ranges = std::mem::take(&mut self.sched_spans);
        ranges.clear();
        ranges.resize(trace.threads(), (0, 0));
        for span in spans {
            ranges[span.thread as usize] = (span.start, span.end);
        }
        let ops = trace.ops();
        self.run_chunk(ranges.len(), |t| &ops[ranges[t].0..ranges[t].1]);
        self.sched_spans = ranges;
    }

    /// Sums statistics over all cores.
    fn aggregated_core_stats(&self) -> CoreStats {
        let mut agg = CoreStats::default();
        for core in &self.cores {
            agg.accumulate(core.stats());
        }
        agg
    }

    /// Every telemetry counter of the live system, pulled into one
    /// registry. The same namespaces as
    /// [`RunMetrics::report_telemetry`], so the trace's final snapshot
    /// agrees with the finalized metrics.
    fn collect_counters(&self, total_cycles: Cycle) -> CounterRegistry {
        let mut reg = CounterRegistry::default();
        self.aggregated_core_stats()
            .report_telemetry("core", &mut reg);
        self.hierarchy.report_telemetry(&mut reg);
        self.backend.report_telemetry(&mut reg);
        reg.record("system.cores", self.cores.len() as f64);
        reg.record(
            "system.issue_width",
            self.config.sim.core.issue_width as f64,
        );
        reg.record("system.offload_candidates", self.offload_candidates as f64);
        reg.record(
            "system.candidate_cache_hits",
            self.candidate_cache_hits as f64,
        );
        reg.record("system.offloaded_atomics", self.offloaded_atomics as f64);
        reg.record("system.host_pei_atomics", self.host_pei_atomics as f64);
        reg.record("system.uncached_reads", self.uncached_reads as f64);
        reg.record("system.uncached_writes", self.uncached_writes as f64);
        reg.record("system.uncached_atomics", self.uncached_atomics as f64);
        reg.record("system.memory_service_cycles", self.memory_service_cycles);
        reg.record("system.total_cycles", total_cycles);
        reg.record(
            "telemetry.export_failures",
            if self.trace_export_failed { 1.0 } else { 0.0 },
        );
        if self.attribution {
            let mut core_attrib = CoreAttrib::default();
            for core in &self.cores {
                core_attrib.accumulate(core.attrib().expect("attribution enabled"));
            }
            core_attrib.report_telemetry("attrib.core", &mut reg);
            // Per-core clocks telescope into the buckets, so `busy` is the
            // sum of all core-local time; `idle` is each core's gap to the
            // machine-wide end. busy + idle = machine cycles (checked by
            // the validation layer).
            reg.record("attrib.core.busy", core_attrib.total());
            let idle: f64 = self
                .cores
                .iter()
                .map(|c| (total_cycles - c.now()).max(0.0))
                .sum();
            reg.record("attrib.core.idle", idle);
            reg.record(
                "attrib.core.machine_cycles",
                total_cycles * self.cores.len() as f64,
            );
            if let Some(a) = self.hierarchy.attrib() {
                a.report_telemetry("attrib.cache", &mut reg);
            }
            if let Some(a) = self.backend.attrib() {
                a.report_telemetry("attrib.hmc", &mut reg);
            }
        }
        reg
    }

    /// Finalizes the run: waits for all in-flight work and aggregates.
    pub fn into_metrics(mut self) -> RunMetrics {
        let mut end: Cycle = self.max_pim_done;
        for core in &mut self.cores {
            end = end.max(core.finish());
        }
        let total_cycles = end.max(1e-9);
        if let Some(mut perfetto) = self.perfetto.take() {
            // Close out the last (possibly barrier-less) superstep: cores
            // are drained at `now()`, then idle until the machine-wide end.
            for (c, core) in self.cores.iter().enumerate() {
                let busy_end = core.now().min(total_cycles);
                perfetto.span("busy", "core", 1, c as u32, self.step_start, busy_end, &[]);
                perfetto.span("drain", "core", 1, c as u32, busy_end, total_cycles, &[]);
            }
            perfetto.span(
                &format!("superstep {}", self.superstep + 1),
                "superstep",
                0,
                0,
                self.step_start,
                total_cycles,
                &[],
            );
            let path = perfetto.path().to_path_buf();
            if let Err(e) = perfetto.write() {
                crate::obs::warn(
                    "perfetto",
                    "cannot write span trace",
                    &[("path", &path.display()), ("error", &e)],
                );
                self.trace_export_failed = true;
            }
        }
        if self.trace.is_some() {
            // Final snapshot: the only one where `system.total_cycles`
            // reflects the finished run.
            let counters = self.collect_counters(total_cycles);
            if let Some(trace) = self.trace.take() {
                let mut trace = trace;
                let path = trace.path().to_path_buf();
                trace.snapshot(self.superstep + 1, total_cycles, &counters);
                if let Err(e) = trace.finish() {
                    crate::obs::warn(
                        "trace",
                        "cannot write telemetry trace",
                        &[("path", &path.display()), ("error", &e)],
                    );
                    self.trace_export_failed = true;
                }
            }
        }
        let agg = self.aggregated_core_stats();
        let (l1, l2, l3) = self.hierarchy.level_counts();
        let metrics = RunMetrics {
            mode: self.config.mode,
            cores: self.cores.len(),
            issue_width: self.config.sim.core.issue_width,
            total_cycles,
            core: agg,
            l1,
            l2,
            l3,
            hmc: self.backend.stats(),
            offload_candidates: self.offload_candidates,
            candidate_cache_hits: self.candidate_cache_hits,
            offloaded_atomics: self.offloaded_atomics,
            host_pei_atomics: self.host_pei_atomics,
            uncached_reads: self.uncached_reads,
            uncached_writes: self.uncached_writes,
            uncached_atomics: self.uncached_atomics,
            memory_service_cycles: self.memory_service_cycles,
            trace_export_failed: self.trace_export_failed,
        };
        if crate::validate::validation_enabled() {
            // Conservation pass (see `crate::validate`): the finalized
            // metrics must satisfy every invariant, and must agree with
            // the counters pulled live from the components.
            let counters = self.collect_counters(total_cycles);
            let mut violations = crate::validate::check_run(&metrics, &counters);
            violations.extend(crate::validate::check_run_config(&metrics, &self.config));
            crate::validate::enforce(&format!("{:?} run", self.config.mode), &violations);
        }
        metrics
    }

    #[inline]
    fn process(&mut self, t: usize, op: TraceOp) {
        match op {
            TraceOp::Compute(n) => self.cores[t].compute(n),
            TraceOp::Branch { predictable, dep } => {
                let mispredicted =
                    !predictable && self.rng.next_f64() < self.config.mispredict_rate;
                self.cores[t].branch(mispredicted, dep);
            }
            TraceOp::Load { addr, dep } => self.load(t, addr, dep),
            TraceOp::Store { addr } => self.store(t, addr),
            TraceOp::Atomic { addr, op, dep } => self.atomic(t, addr, op, dep),
        }
    }

    #[inline]
    fn load(&mut self, t: usize, addr: Addr, dep: bool) {
        if self.pou.bypass_cache(addr) {
            // Uncacheable PMR load: straight to the cube as a 16-byte read.
            let t0 = self.cores[t].begin_mem(dep, true);
            let served = self.backend.service(PacketKind::Read16, addr, t0);
            self.memory_service_cycles += served.response_at - t0;
            self.perfetto_request(t, "load.pmr", t0, &served);
            self.cores[t].complete_load(served.response_at, true);
            self.uncached_reads += 1;
            return;
        }
        let t0 = self.cores[t].begin_mem(dep, false);
        let out = self.access_cached(t, addr, false, t0);
        if out.level == ServiceLevel::Memory {
            let t1 = self.cores[t].acquire_mshr();
            let served = self
                .backend
                .service(PacketKind::Read64, addr, t1 + out.latency as f64);
            self.memory_service_cycles += served.response_at - t1;
            self.perfetto_request(t, "load.miss", t1, &served);
            self.cores[t].complete_load(served.response_at, true);
        } else {
            self.cores[t].complete_load(t0 + out.latency as f64, false);
        }
    }

    #[inline]
    fn store(&mut self, t: usize, addr: Addr) {
        if self.pou.bypass_cache(addr) {
            // Posted uncacheable store: write-combining path, no MSHR.
            let t0 = self.cores[t].begin_mem(false, false);
            let served = self.backend.service(PacketKind::Write16, addr, t0);
            self.max_pim_done = self.max_pim_done.max(served.memory_done);
            self.cores[t].complete_store();
            self.uncached_writes += 1;
            return;
        }
        let t0 = self.cores[t].begin_mem(false, false);
        let out = self.access_cached(t, addr, true, t0);
        if out.level == ServiceLevel::Memory {
            // Read-for-ownership line fill; the store itself is posted.
            let served = self
                .backend
                .service(PacketKind::Read64, addr, t0 + out.latency as f64);
            self.max_pim_done = self.max_pim_done.max(served.memory_done);
        }
        self.cores[t].complete_store();
    }

    fn atomic(&mut self, t: usize, addr: Addr, op: HmcAtomicOp, dep: bool) {
        if self.config.atomics_as_plain {
            // Figure 4 micro-benchmark: the same data access without any
            // synchronization semantics.
            self.load(t, addr, dep);
            self.store(t, addr);
            return;
        }
        if self.pou.is_candidate(addr) {
            self.offload_candidates += 1;
        }
        match self.pou.route_atomic(addr, op) {
            AtomicPath::Host => self.host_atomic(t, addr),
            AtomicPath::LocalityDependent => self.upei_atomic(t, addr, op, dep),
            AtomicPath::Offload => self.pim_atomic(t, addr, op, dep),
        }
    }

    /// Conventional host-side atomic (Baseline; any non-PMR atomic; FP
    /// atomics without the extension).
    fn host_atomic(&mut self, t: usize, addr: Addr) {
        let start = self.cores[t].host_atomic_begin();
        if self.pou.bypass_cache(addr) {
            // Atomic on uncacheable memory without PIM support: the
            // cache-line lock degrades to bus locking (Section III-B).
            let read = self.backend.service(PacketKind::Read16, addr, start);
            let write = self
                .backend
                .service(PacketKind::Write16, addr, read.response_at);
            let service = (write.memory_done - start) + BUS_LOCK_PENALTY;
            self.memory_service_cycles += service;
            self.perfetto_request(t, "atomic.host-buslock", start, &write);
            self.cores[t].host_atomic_finish(service, 0.0);
            self.uncached_atomics += 1;
            return;
        }
        let out = self.access_cached(t, addr, true, start);
        if self.pou.is_candidate(addr) && out.level != ServiceLevel::Memory {
            self.candidate_cache_hits += 1;
        }
        let cache_part = out.latency as f64;
        let mut service = cache_part;
        if out.level == ServiceLevel::Memory {
            let served = self
                .backend
                .service(PacketKind::Read64, addr, start + cache_part);
            service += served.response_at - (start + cache_part);
            self.perfetto_request(t, "atomic.host-fill", start, &served);
        }
        self.memory_service_cycles += service;
        self.cores[t].host_atomic_finish(service, cache_part);
    }

    /// U-PEI: the idealized PEI of Section IV-B. PEI operations are
    /// cacheable and locality aware: the data stays in the cache hierarchy
    /// (the access fills, with ideal zero-cost coherence against the
    /// memory-side copy), operations that hit execute host-side at cache
    /// latency with no locked-RMW penalty, and operations that miss are
    /// offloaded after paying the cache-checking latency. Every PEI
    /// operation traverses the host cache/LSQ path, so offloaded ones
    /// (posted or not) occupy an MSHR until the memory side completes —
    /// the cache-involvement cost GraphPIM's bypass avoids.
    fn upei_atomic(&mut self, t: usize, addr: Addr, op: HmcAtomicOp, dep: bool) {
        let t0 = self.cores[t].begin_mem(dep, false);
        let out = self.access_cached(t, addr, true, t0);
        if out.level != ServiceLevel::Memory {
            self.candidate_cache_hits += 1;
            self.host_pei_atomics += 1;
            self.cores[t].complete_pim_atomic(t0 + out.latency as f64, op.has_return());
            return;
        }
        let t1 = self.cores[t].acquire_mshr();
        let served = self
            .backend
            .service(PacketKind::Atomic(op), addr, t1 + out.latency as f64);
        self.perfetto_request(t, "atomic.upei", t1, &served);
        if op.has_return() {
            self.finish_pim(t, op, t1, served.response_at, served.memory_done);
        } else {
            self.offloaded_atomics += 1;
            self.cores[t].complete_posted_tracked(served.response_at);
            self.max_pim_done = self.max_pim_done.max(served.memory_done);
        }
    }

    /// GraphPIM: offload directly, no cache involvement. Posted atomics
    /// behave like stores (no MSHR); returning atomics occupy an MSHR
    /// like loads.
    fn pim_atomic(&mut self, t: usize, addr: Addr, op: HmcAtomicOp, dep: bool) {
        let t0 = self.cores[t].begin_mem(dep, false);
        let t1 = if op.has_return() {
            self.cores[t].acquire_mshr()
        } else {
            t0
        };
        let served = self.backend.service(PacketKind::Atomic(op), addr, t1);
        self.perfetto_request(t, "atomic.pim", t1, &served);
        self.finish_pim(t, op, t1, served.response_at, served.memory_done);
    }

    fn finish_pim(
        &mut self,
        t: usize,
        op: HmcAtomicOp,
        issued: Cycle,
        response_at: Cycle,
        memory_done: Cycle,
    ) {
        self.offloaded_atomics += 1;
        let returns = op.has_return();
        if returns {
            self.memory_service_cycles += response_at - issued;
        }
        self.cores[t].complete_pim_atomic(response_at, returns);
        self.max_pim_done = self.max_pim_done.max(memory_done);
    }

    /// Exports every [`PERFETTO_REQUEST_SAMPLE`]-th request lifecycle as a
    /// span on the requests row (pid 2). Posted stores and writebacks are
    /// skipped — they never stall the core.
    fn perfetto_request(&mut self, t: usize, name: &str, issued: Cycle, served: &HmcServed) {
        if self.perfetto.is_none() {
            return;
        }
        self.request_samples += 1;
        if !(self.request_samples - 1).is_multiple_of(PERFETTO_REQUEST_SAMPLE) {
            return;
        }
        if let Some(perfetto) = &mut self.perfetto {
            perfetto.span(
                name,
                "request",
                2,
                t as u32,
                issued,
                served.response_at,
                &[("bank_wait", served.bank_wait), ("fu_wait", served.fu_wait)],
            );
        }
    }

    /// One cache-hierarchy access on the allocation-free hot path: dirty
    /// writebacks land in the reused `wb_scratch` buffer and are posted
    /// to the cube at `now` (they never stall the core).
    #[inline]
    fn access_cached(&mut self, t: usize, addr: Addr, write: bool, now: Cycle) -> AccessResult {
        self.wb_scratch.clear();
        let out = self
            .hierarchy
            .access_into(t, addr, write, &mut self.wb_scratch);
        for &wb in &self.wb_scratch {
            self.backend.service(PacketKind::Write64, wb, now);
        }
        out
    }

    /// Schedules and executes one chunk's per-thread op streams.
    ///
    /// # Ordering contract
    ///
    /// At every step, the next op comes from the unfinished thread with
    /// the lexicographically smallest `(cores[t % cores].now(), t)`: the
    /// earliest core, ties broken by the lowest thread index. Always
    /// advancing the earliest core means the shared busy-until resources
    /// (links, banks, FUs) see requests in roughly monotone time order,
    /// which keeps the contention model honest; the thread-index tie-break
    /// matters whenever `threads > cores` folds several threads onto one
    /// core (their clocks then compare equal). This is exactly the order
    /// the original O(threads)-per-op linear scan produced — it compared
    /// with a strict `<` while scanning threads in increasing index order,
    /// so ties kept the earliest-scanned thread — and it is load-bearing:
    /// interleaving decides when each request reaches the shared
    /// resources, so changing it changes timing.
    /// `scheduler_matches_reference_scan` locks the contract bit for bit.
    ///
    /// # Why a lazy min-heap reproduces the scan
    ///
    /// The heap holds one entry per unfinished thread, keyed by a
    /// captured snapshot of its core clock. Core clocks only move forward
    /// (every `CoreModel` timing mutator is monotone non-decreasing), so
    /// a stale key is always an *underestimate* of the live clock. When
    /// the root's stored key equals its live clock, every other entry's
    /// live key is ≥ its stored key ≥ the root's, and the heap's
    /// `(key, thread)` ordering keeps the lowest thread index on top
    /// among equal keys — so the root is precisely the thread the scan
    /// would pick. A root whose key went stale is re-keyed in place and
    /// sifted down instead of being processed.
    ///
    /// As a fast path, the root keeps executing ops without heap traffic
    /// while its `(now, thread)` stays ≤ the runner-up key (the smaller
    /// of the root's children — the heap's second minimum). The runner-up
    /// key may itself be stale, i.e. an underestimate, which can only end
    /// the fast path early — never reorder ops.
    fn run_chunk<'s, O>(&mut self, nthreads: usize, ops_of: O)
    where
        O: Fn(usize) -> &'s [TraceOp],
    {
        let cores = self.cores.len();
        let mut heap = std::mem::take(&mut self.sched_heap);
        let mut cursor = std::mem::take(&mut self.sched_cursor);
        heap.clear();
        cursor.clear();
        cursor.resize(nthreads, 0);
        for t in 0..nthreads {
            if !ops_of(t).is_empty() {
                heap.push(SchedEntry {
                    key: self.cores[t % cores].now().to_bits(),
                    thread: t as u32,
                    core: (t % cores) as u32,
                });
                let last = heap.len() - 1;
                heap_sift_up(&mut heap, last);
            }
        }
        while let Some(&root) = heap.first() {
            let c = root.core as usize;
            let live = self.cores[c].now().to_bits();
            if live != root.key {
                // Stale snapshot (the clock advanced while this entry sat
                // in the heap): re-key and restore heap order.
                heap[0].key = live;
                heap_sift_down(&mut heap, 0);
                continue;
            }
            let t = root.thread as usize;
            // The second minimum of a binary heap is the smaller child of
            // the root; the root may run ahead until it passes this bound.
            let runner_up = match heap.len() {
                1 => None,
                2 => Some((heap[1].key, heap[1].thread)),
                _ => Some((heap[1].key, heap[1].thread).min((heap[2].key, heap[2].thread))),
            };
            let slice = ops_of(t);
            let n = slice.len();
            let mut i = cursor[t];
            match runner_up {
                // Last runnable thread: drain it with no per-op bound
                // checks — nothing can preempt it.
                None => {
                    for &op in &slice[i..] {
                        self.process(c, op);
                    }
                    i = n;
                }
                Some(bound) => {
                    while i < n {
                        self.process(c, slice[i]);
                        i += 1;
                        if (self.cores[c].now().to_bits(), root.thread) > bound {
                            break;
                        }
                    }
                }
            }
            cursor[t] = i;
            if i >= n {
                let last = heap.len() - 1;
                heap.swap(0, last);
                heap.pop();
                if !heap.is_empty() {
                    heap_sift_down(&mut heap, 0);
                }
            } else {
                heap[0].key = self.cores[c].now().to_bits();
                heap_sift_down(&mut heap, 0);
            }
        }
        self.sched_heap = heap;
        self.sched_cursor = cursor;
    }

    /// The configured mode.
    pub fn mode(&self) -> PimMode {
        self.config.mode
    }
}

impl TraceConsumer for SystemSim {
    fn chunk(&mut self, step: Superstep) {
        // Scheduling order is a timing contract — see `run_chunk`.
        self.run_chunk(step.threads.len(), |t| step.threads[t].as_slice());
    }

    fn barrier(&mut self) {
        let mut release: Cycle = self.max_pim_done;
        for core in &self.cores {
            release = release.max(core.drain_time());
        }
        if let Some(perfetto) = &mut self.perfetto {
            // Spans for the superstep that just ended: each core is busy
            // until its own drain point, then stalled at the barrier.
            for (c, core) in self.cores.iter().enumerate() {
                let busy_end = core.drain_time().min(release);
                let start = self.step_start;
                perfetto.span("busy", "core", 1, c as u32, start, busy_end, &[]);
                perfetto.span("barrier", "core", 1, c as u32, busy_end, release, &[]);
            }
            perfetto.span(
                &format!("superstep {}", self.superstep + 1),
                "superstep",
                0,
                0,
                self.step_start,
                release,
                &[],
            );
        }
        for core in &mut self.cores {
            core.barrier(release);
        }
        self.max_pim_done = release;
        self.superstep += 1;
        self.step_start = release;
        if self.trace.is_some() {
            let counters = self.collect_counters(release);
            if let Some(trace) = &mut self.trace {
                trace.snapshot(self.superstep, release, &counters);
            }
        }
    }
}

impl std::fmt::Debug for SystemSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemSim")
            .field("mode", &self.config.mode)
            .field("cores", &self.cores.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphpim_graph::generate::GraphSpec;
    use graphpim_workloads::kernels::{Bfs, DCentr, PRank};

    fn graph() -> CsrGraph {
        // Property array (8 B/vertex) far exceeds the tiny config's 16 KB
        // L3, so property accesses are genuinely irregular-missing — the
        // regime the paper evaluates (Fig. 14 covers the cache-resident
        // counter-case).
        GraphSpec::uniform(20_000, 60_000).seed(2).build()
    }

    fn run(mode: PimMode) -> RunMetrics {
        let config = SystemConfig::tiny(mode);
        SystemSim::run_kernel(&mut DCentr::new(), &graph(), &config)
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn graphpim_beats_baseline_on_atomic_heavy_kernel() {
        let base = run(PimMode::Baseline);
        let pim = run(PimMode::GraphPim);
        assert!(
            pim.total_cycles < base.total_cycles,
            "GraphPIM {} vs baseline {}",
            pim.total_cycles,
            base.total_cycles
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn offload_counters_by_mode() {
        let base = run(PimMode::Baseline);
        assert_eq!(base.offloaded_atomics, 0);
        assert!(base.offload_candidates > 0);
        assert!(base.core.host_atomics > 0);

        let pim = run(PimMode::GraphPim);
        assert_eq!(pim.offloaded_atomics, pim.offload_candidates);
        assert_eq!(pim.core.host_atomics, 0);

        let upei = run(PimMode::UPei);
        assert_eq!(
            upei.offloaded_atomics + upei.host_pei_atomics,
            upei.offload_candidates
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn graphpim_bypasses_caches_for_property() {
        let pim = run(PimMode::GraphPim);
        assert!(pim.uncached_reads > 0 || pim.uncached_writes > 0);
        let base = run(PimMode::Baseline);
        assert_eq!(base.uncached_reads, 0);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn atomic_overhead_only_in_baseline() {
        let base = run(PimMode::Baseline);
        let pim = run(PimMode::GraphPim);
        assert!(base.core.atomic_incore_cycles > 0.0);
        assert_eq!(pim.core.atomic_incore_cycles, 0.0);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn bandwidth_lower_under_graphpim_for_dc() {
        let base = run(PimMode::Baseline);
        let pim = run(PimMode::GraphPim);
        assert!(
            pim.total_flits() < base.total_flits(),
            "GraphPIM flits {} vs baseline {}",
            pim.total_flits(),
            base.total_flits()
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn bfs_results_identical_across_modes() {
        let g = graph();
        let mut depths = Vec::new();
        for mode in PimMode::ALL {
            let mut bfs = Bfs::new(0);
            SystemSim::run_kernel(&mut bfs, &g, &SystemConfig::tiny(mode));
            depths.push(bfs.depths().to_vec());
        }
        assert_eq!(depths[0], depths[1]);
        assert_eq!(depths[1], depths[2]);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn deterministic_metrics() {
        let a = run(PimMode::GraphPim);
        let b = run(PimMode::GraphPim);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.total_flits(), b.total_flits());
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn fp_extension_needed_for_prank_offload() {
        let g = graph();
        let with = SystemSim::run_kernel(
            &mut PRank::new(2),
            &g,
            &SystemConfig::tiny(PimMode::GraphPim),
        );
        let without = SystemSim::run_kernel(
            &mut PRank::new(2),
            &g,
            &SystemConfig::tiny(PimMode::GraphPim).without_fp_extension(),
        );
        assert!(with.offloaded_atomics > 0);
        assert_eq!(without.offloaded_atomics, 0);
        assert_eq!(with.uncached_atomics, 0);
        // Unsupported FP atomics on uncacheable PMR degrade to bus-locked
        // host RMWs — and are counted, not silently dropped.
        assert_eq!(without.uncached_atomics, without.offload_candidates);
        assert!(
            with.total_cycles < without.total_cycles,
            "FP extension should help PRank"
        );
    }

    #[test]
    #[should_panic(expected = "invalid SystemConfig")]
    fn invalid_config_rejected_at_construction() {
        let mut config = SystemConfig::tiny(PimMode::Baseline);
        config.sim.cache.l1.ways = 0;
        let _ = SystemSim::new(config);
    }

    #[test]
    fn run_with_closure_api() {
        let g = graph();
        let metrics = SystemSim::run_with(&SystemConfig::tiny(PimMode::Baseline), |fw| {
            let mut bfs = Bfs::new(0);
            bfs.run(&g, fw);
        });
        assert!(metrics.total_cycles > 0.0);
        assert!(metrics.core.instructions > 0);
    }

    /// The pre-heap scheduler, verbatim: one linear scan over all threads
    /// per op, strict `<` in increasing thread order (so clock ties keep
    /// the lowest thread index). Kept as the executable definition of the
    /// ordering contract `run_chunk` must reproduce.
    fn reference_chunk(sys: &mut SystemSim, step: &Superstep) {
        let cores = sys.cores.len();
        let mut index = vec![0usize; step.threads.len()];
        loop {
            let mut best: Option<usize> = None;
            for (t, ops) in step.threads.iter().enumerate() {
                if index[t] < ops.len() {
                    let better = match best {
                        None => true,
                        Some(b) => sys.cores[t % cores].now() < sys.cores[b % cores].now(),
                    };
                    if better {
                        best = Some(t);
                    }
                }
            }
            let Some(t) = best else { break };
            sys.process(t % cores, step.threads[t][index[t]]);
            index[t] += 1;
        }
    }

    /// Synthetic multi-chunk streams exercising uneven thread lengths,
    /// empty threads, and (for `threads > cores`) clock collisions among
    /// threads folded onto one core.
    fn synthetic_steps(threads: usize) -> Vec<Superstep> {
        use graphpim_sim::mem::addr::Region;
        let mut rng = SplitMix64::new(7);
        let mut steps = Vec::new();
        for chunk in 0..4usize {
            let mut step = Superstep::new(threads);
            for t in 0..threads {
                let count = match (t + chunk) % 4 {
                    0 => 0, // empty stream: the scheduler must skip it
                    m => 40 * m,
                };
                for _ in 0..count {
                    let addr = Region::Property.addr((rng.next_u64() % 250_000) * 8);
                    let op = match rng.next_u64() % 5 {
                        0 => TraceOp::Compute((rng.next_u64() % 8) as u32 + 1),
                        1 => TraceOp::Load {
                            addr,
                            dep: rng.next_u64().is_multiple_of(2),
                        },
                        2 => TraceOp::Store { addr },
                        3 => TraceOp::Atomic {
                            addr,
                            op: HmcAtomicOp::DualAdd8,
                            dep: false,
                        },
                        _ => TraceOp::Branch {
                            predictable: rng.next_u64().is_multiple_of(2),
                            dep: false,
                        },
                    };
                    step.threads[t].push(op);
                }
            }
            steps.push(step);
        }
        steps
    }

    /// Locks the scheduler ordering contract: the heap scheduler must
    /// produce bit-identical timing to the original linear scan at every
    /// thread/core ratio, including `threads > cores` where tie-breaks
    /// decide the interleaving. Barriers only after every second chunk so
    /// some chunks start with staggered core clocks.
    #[test]
    fn scheduler_matches_reference_scan() {
        for &cores in &[2usize, 3] {
            for threads in [cores, 2 * cores, 2 * cores + 1] {
                for mode in PimMode::ALL {
                    let mut config = SystemConfig::tiny(mode);
                    config.sim.core.cores = cores;
                    let steps = synthetic_steps(threads);
                    let mut heap_sys = SystemSim::new(config.clone());
                    let mut scan_sys = SystemSim::new(config.clone());
                    for (i, step) in steps.iter().enumerate() {
                        heap_sys.chunk(step.clone());
                        reference_chunk(&mut scan_sys, step);
                        if i % 2 == 1 {
                            heap_sys.barrier();
                            scan_sys.barrier();
                        }
                    }
                    let a = heap_sys.into_metrics();
                    let b = scan_sys.into_metrics();
                    let ctx = format!("cores={cores} threads={threads} mode={mode:?}");
                    assert_eq!(a.total_cycles.to_bits(), b.total_cycles.to_bits(), "{ctx}");
                    assert_eq!(
                        a.memory_service_cycles.to_bits(),
                        b.memory_service_cycles.to_bits(),
                        "{ctx}"
                    );
                    assert_eq!(a.total_flits(), b.total_flits(), "{ctx}");
                    assert_eq!(a.core.instructions, b.core.instructions, "{ctx}");
                    assert_eq!(a.core.mispredicts, b.core.mispredicts, "{ctx}");
                }
            }
        }
    }
}
