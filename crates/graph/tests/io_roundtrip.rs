//! Property tests for edge-list I/O: `write_edge_list` → `read_edge_list`
//! must be the identity on every CSR graph, including graphs with
//! trailing isolated vertices and sparse ids (the PR-7 regression), and
//! the two-pass path loader must agree with the streaming reader.

use graphpim_graph::io::{read_edge_list, read_edge_list_path, write_edge_list};
use graphpim_graph::{CsrGraph, GraphBuilder};
use proptest::prelude::*;
use std::io::Cursor;
use std::sync::atomic::{AtomicU64, Ordering};

/// Strategy: a graph over `n` vertices with up to `max_edges` random
/// edges. Ids are sparse by construction — `n` is usually much larger
/// than the number of distinct endpoints, so isolated vertices (leading,
/// interior, and trailing) occur in most cases.
fn unweighted_graph() -> impl Strategy<Value = CsrGraph> {
    (
        1usize..60,
        prop::collection::vec((0u32..60, 0u32..60), 0..80),
    )
        .prop_map(|(extra, edges)| {
            let max_id = edges.iter().map(|&(u, v)| u.max(v)).max().unwrap_or(0);
            let n = max_id as usize + extra;
            GraphBuilder::new(n.max(1)).edges(edges).build()
        })
}

fn weighted_graph() -> impl Strategy<Value = CsrGraph> {
    (
        1usize..60,
        prop::collection::vec((0u32..60, 0u32..60, 1u32..100), 1..80),
    )
        .prop_map(|(extra, edges)| {
            let max_id = edges.iter().map(|&(u, v, _)| u.max(v)).max().unwrap_or(0);
            let n = max_id as usize + extra;
            let mut b = GraphBuilder::new(n.max(1));
            for (u, v, w) in edges {
                b = b.weighted_edge(u, v, w);
            }
            b.build()
        })
}

fn round_trip(g: &CsrGraph) -> CsrGraph {
    let mut buf = Vec::new();
    write_edge_list(g, &mut buf).expect("write to Vec cannot fail");
    read_edge_list(Cursor::new(buf)).expect("own output must parse")
}

fn round_trip_via_path(g: &CsrGraph) -> CsrGraph {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut buf = Vec::new();
    write_edge_list(g, &mut buf).expect("write to Vec cannot fail");
    let path = std::env::temp_dir().join(format!(
        "graphpim-io-proptest-{}-{}.txt",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, &buf).expect("write temp file");
    let back = read_edge_list_path(&path).expect("own output must parse");
    let _ = std::fs::remove_file(&path);
    back
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unweighted_round_trip_is_identity(g in unweighted_graph()) {
        prop_assert_eq!(round_trip(&g), g);
    }

    #[test]
    fn weighted_round_trip_is_identity(g in weighted_graph()) {
        prop_assert_eq!(round_trip(&g), g);
    }

    #[test]
    fn path_loader_agrees_with_reader_unweighted(g in unweighted_graph()) {
        prop_assert_eq!(round_trip_via_path(&g), g);
    }

    #[test]
    fn path_loader_agrees_with_reader_weighted(g in weighted_graph()) {
        prop_assert_eq!(round_trip_via_path(&g), g);
    }
}
