//! Streaming-vs-buffered CSR construction equality.
//!
//! The generators now build CSR arrays directly from their pair lists
//! (`CsrGraph::from_pairs` / `from_sorted_unique_pairs`) instead of going
//! through `GraphBuilder`'s 12 B/edge triple buffer. These tests pin the
//! bit-identity contract: for the same logical edge set, both paths must
//! produce the same graph — the committed bench baseline depends on it.

use graphpim_graph::generate::{ldbc, rmat, uniform, GraphSpec, LdbcSize};
use graphpim_graph::{CsrGraph, GraphBuilder};

/// Rebuilds `g` through the buffered `GraphBuilder` path from its own
/// edge set and checks the streaming-built original is identical.
fn assert_matches_buffered(g: &CsrGraph) {
    let buffered = GraphBuilder::new(g.vertex_count())
        .edges(g.iter_edges())
        .build();
    assert_eq!(g, &buffered);
}

#[test]
fn ldbc_10k_streaming_build_matches_buffered() {
    // Engine seed (GRAPH_SEED = 7) so this pins the exact graph the
    // experiment engine simulates at the 10k scale.
    let g = ldbc::generate(LdbcSize::K10, 7);
    assert_matches_buffered(&g);
}

#[test]
fn ldbc_1k_streaming_build_matches_buffered() {
    let g = ldbc::generate(LdbcSize::K1, 7);
    assert_matches_buffered(&g);
}

#[test]
fn rmat_streaming_build_matches_buffered() {
    let g = rmat::generate(10, 8, 7);
    assert_matches_buffered(&g);
}

#[test]
fn uniform_streaming_build_matches_buffered() {
    let g = uniform::generate(2_000, 9_000, 7);
    assert_matches_buffered(&g);
}

#[test]
fn weighted_spec_still_attaches_identical_weights() {
    // attach_weights now moves the structure arrays instead of copying;
    // the weight stream (one draw per edge, CSR order) must be unchanged.
    let g = GraphSpec::ldbc(LdbcSize::K1).seed(7).weighted().build();
    let plain = GraphSpec::ldbc(LdbcSize::K1).seed(7).build();
    assert!(g.is_weighted());
    assert_eq!(g.vertex_count(), plain.vertex_count());
    assert_eq!(g.edge_count(), plain.edge_count());
    for v in 0..plain.vertex_count() as u32 {
        assert_eq!(g.neighbors(v), plain.neighbors(v));
    }
    // Weight stream is deterministic: fingerprint a few fixed positions
    // so an accidental reseed or reorder shows up.
    let w: Vec<u32> = [0u64, 1, 1_000, 10_000]
        .iter()
        .map(|&e| g.weight_at(e))
        .collect();
    assert!(w.iter().all(|&x| (1..=100).contains(&x)));
    let again = GraphSpec::ldbc(LdbcSize::K1).seed(7).weighted().build();
    assert_eq!(g, again);
}
