//! Incremental construction of [`CsrGraph`]s from edge lists.
//!
//! Two construction paths exist:
//!
//! * [`GraphBuilder`] — convenient incremental API holding
//!   `(src, dst, weight)` triples (12 B/edge). Right for tests and small
//!   graphs.
//! * The streaming constructors [`CsrGraph::from_pairs`],
//!   [`CsrGraph::from_sorted_unique_pairs`] and
//!   [`CsrGraph::from_weighted_triples`] — consume the caller's edge
//!   vector in place and build CSR arrays directly, so peak memory is the
//!   caller's pair list plus the final graph, with no intermediate triple
//!   buffer. The generators and the edge-list loader use these; at
//!   LDBC-1M (28.8 M edges) the skipped triple buffer alone is ~350 MB.
//!
//! Both paths produce bit-identical graphs for the same logical edge set.

use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::VertexId;

impl CsrGraph {
    /// Builds an unweighted graph directly from directed `(src, dst)`
    /// pairs, consuming `pairs` in place (sorted, exact duplicates
    /// removed). Self-loops are kept; callers that do not want them must
    /// filter before building.
    ///
    /// Produces the same graph as
    /// `GraphBuilder::new(n).edges(pairs).try_build()`, without
    /// materializing the builder's intermediate `(src, dst, weight)`
    /// triple buffer.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if any endpoint is
    /// `>= vertex_count`.
    pub fn from_pairs(
        vertex_count: usize,
        mut pairs: Vec<(VertexId, VertexId)>,
    ) -> Result<CsrGraph, GraphError> {
        pairs.sort_unstable();
        pairs.dedup();
        CsrGraph::from_sorted_unique_pairs(vertex_count, pairs)
    }

    /// Builds an unweighted graph from pairs that are already sorted by
    /// `(src, dst)` with no duplicates — the cheapest construction path:
    /// one counting pass, one copy of the target column, no sort.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] on an out-of-range
    /// endpoint, and [`GraphError::InvalidSpec`] if `pairs` is not
    /// strictly sorted (a violated precondition would otherwise break the
    /// sorted-adjacency invariant every accessor relies on).
    pub fn from_sorted_unique_pairs(
        vertex_count: usize,
        pairs: Vec<(VertexId, VertexId)>,
    ) -> Result<CsrGraph, GraphError> {
        let n = vertex_count;
        let mut offsets = vec![0u64; n + 1];
        let mut prev: Option<(VertexId, VertexId)> = None;
        for &(u, v) in &pairs {
            for endpoint in [u, v] {
                if endpoint as usize >= n {
                    return Err(GraphError::VertexOutOfRange {
                        vertex: endpoint as u64,
                        vertex_count: n as u64,
                    });
                }
            }
            if prev.is_some_and(|p| p >= (u, v)) {
                return Err(GraphError::InvalidSpec(
                    "from_sorted_unique_pairs requires strictly sorted input".into(),
                ));
            }
            prev = Some((u, v));
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let neighbors: Vec<VertexId> = pairs.iter().map(|&(_, v)| v).collect();
        drop(pairs);
        Ok(CsrGraph::from_parts(offsets, neighbors, None))
    }

    /// Builds a weighted graph directly from `(src, dst, weight)`
    /// triples, consuming `triples` in place. Duplicate `(src, dst)`
    /// edges collapse to one; the smallest weight wins (deterministic
    /// regardless of input order). Self-loops are kept.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if any endpoint is
    /// `>= vertex_count`.
    pub fn from_weighted_triples(
        vertex_count: usize,
        mut triples: Vec<(VertexId, VertexId, u32)>,
    ) -> Result<CsrGraph, GraphError> {
        let n = vertex_count;
        for &(u, v, _) in &triples {
            for endpoint in [u, v] {
                if endpoint as usize >= n {
                    return Err(GraphError::VertexOutOfRange {
                        vertex: endpoint as u64,
                        vertex_count: n as u64,
                    });
                }
            }
        }
        // Full-triple sort puts the smallest weight of each (src, dst)
        // run first; dedup keeps the first of each run.
        triples.sort_unstable();
        triples.dedup_by_key(|&mut (u, v, _)| (u, v));
        let mut offsets = vec![0u64; n + 1];
        for &(u, _, _) in &triples {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let neighbors: Vec<VertexId> = triples.iter().map(|&(_, v, _)| v).collect();
        let weights: Vec<u32> = triples.iter().map(|&(_, _, w)| w).collect();
        drop(triples);
        Ok(CsrGraph::from_parts(offsets, neighbors, Some(weights)))
    }
}

/// Accumulates edges and produces a [`CsrGraph`].
///
/// Duplicate edges are removed and self-loops may optionally be dropped.
/// Adjacency lists in the produced graph are always sorted.
///
/// # Example
///
/// ```
/// use graphpim_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(4)
///     .undirected()
///     .edge(0, 1)
///     .edge(1, 2)
///     .build();
/// // Undirected: both directions exist.
/// assert!(g.has_edge(1, 0));
/// assert!(g.has_edge(2, 1));
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    vertex_count: usize,
    edges: Vec<(VertexId, VertexId, u32)>,
    undirected: bool,
    drop_self_loops: bool,
    weighted: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `vertex_count` vertices.
    pub fn new(vertex_count: usize) -> Self {
        GraphBuilder {
            vertex_count,
            edges: Vec::new(),
            undirected: false,
            drop_self_loops: false,
            weighted: false,
        }
    }

    /// Mirror every edge so the result is symmetric.
    pub fn undirected(mut self) -> Self {
        self.undirected = true;
        self
    }

    /// Silently drop `v -> v` edges.
    pub fn drop_self_loops(mut self) -> Self {
        self.drop_self_loops = true;
        self
    }

    /// Adds a directed edge with weight 1.
    pub fn edge(mut self, from: VertexId, to: VertexId) -> Self {
        self.edges.push((from, to, 1));
        self
    }

    /// Adds a directed weighted edge; the resulting graph stores weights.
    pub fn weighted_edge(mut self, from: VertexId, to: VertexId, weight: u32) -> Self {
        self.weighted = true;
        self.edges.push((from, to, weight));
        self
    }

    /// Adds many unweighted edges.
    pub fn edges<I>(mut self, iter: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        self.edges.extend(iter.into_iter().map(|(u, v)| (u, v, 1)));
        self
    }

    /// Number of edges accumulated so far (before dedup/mirroring).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Builds the CSR graph.
    ///
    /// # Panics
    ///
    /// Panics if any edge references a vertex outside the declared range.
    /// Use [`GraphBuilder::try_build`] for a fallible version.
    pub fn build(self) -> CsrGraph {
        self.try_build().expect("edge endpoints within range")
    }

    /// Builds the CSR graph, reporting out-of-range endpoints as errors.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if any edge endpoint is
    /// `>= vertex_count`.
    pub fn try_build(mut self) -> Result<CsrGraph, GraphError> {
        let n = self.vertex_count;
        for &(u, v, _) in &self.edges {
            for endpoint in [u, v] {
                if endpoint as usize >= n {
                    return Err(GraphError::VertexOutOfRange {
                        vertex: endpoint as u64,
                        vertex_count: n as u64,
                    });
                }
            }
        }
        if self.drop_self_loops {
            self.edges.retain(|&(u, v, _)| u != v);
        }
        if self.undirected {
            let mirrored: Vec<_> = self
                .edges
                .iter()
                .filter(|&&(u, v, _)| u != v)
                .map(|&(u, v, w)| (v, u, w))
                .collect();
            self.edges.extend(mirrored);
        }
        // Sort by (src, dst); dedup keeps the first weight seen.
        self.edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
        self.edges.dedup_by_key(|&mut (u, v, _)| (u, v));

        let mut offsets = vec![0u64; n + 1];
        for &(u, _, _) in &self.edges {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let neighbors: Vec<VertexId> = self.edges.iter().map(|&(_, v, _)| v).collect();
        let weights = if self.weighted {
            Some(self.edges.iter().map(|&(_, _, w)| w).collect())
        } else {
            None
        };
        Ok(CsrGraph::from_parts(offsets, neighbors, weights))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_removes_duplicates() {
        let g = GraphBuilder::new(2).edge(0, 1).edge(0, 1).build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn undirected_mirrors() {
        let g = GraphBuilder::new(3).undirected().edge(0, 2).build();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn undirected_does_not_duplicate_self_loop() {
        let g = GraphBuilder::new(2).undirected().edge(1, 1).build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn drop_self_loops_works() {
        let g = GraphBuilder::new(2)
            .drop_self_loops()
            .edge(0, 0)
            .edge(0, 1)
            .build();
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn out_of_range_is_error() {
        let err = GraphBuilder::new(2).edge(0, 5).try_build().unwrap_err();
        assert_eq!(
            err,
            GraphError::VertexOutOfRange {
                vertex: 5,
                vertex_count: 2
            }
        );
    }

    #[test]
    fn weighted_edges_preserved() {
        let g = GraphBuilder::new(2).weighted_edge(0, 1, 42).build();
        assert!(g.is_weighted());
        assert_eq!(g.weight_at(0), 42);
    }

    #[test]
    fn edges_iterator_ingestion() {
        let g = GraphBuilder::new(3)
            .edges(vec![(0, 1), (1, 2), (2, 0)])
            .build();
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn pending_edges_counts_raw_inserts() {
        let b = GraphBuilder::new(2).edge(0, 1).edge(0, 1);
        assert_eq!(b.pending_edges(), 2);
    }

    #[test]
    fn from_pairs_matches_builder() {
        let pairs = vec![(2, 0), (0, 1), (1, 2), (0, 1), (2, 2)];
        let streaming = CsrGraph::from_pairs(3, pairs.clone()).unwrap();
        let buffered = GraphBuilder::new(3).edges(pairs).build();
        assert_eq!(streaming, buffered);
    }

    #[test]
    fn from_pairs_empty_graph() {
        let g = CsrGraph::from_pairs(0, Vec::new()).unwrap();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn from_pairs_rejects_out_of_range() {
        let err = CsrGraph::from_pairs(2, vec![(0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 5, .. }
        ));
    }

    #[test]
    fn from_sorted_unique_pairs_rejects_unsorted() {
        let err = CsrGraph::from_sorted_unique_pairs(3, vec![(1, 0), (0, 1)]).unwrap_err();
        assert!(matches!(err, GraphError::InvalidSpec(_)));
        let err = CsrGraph::from_sorted_unique_pairs(3, vec![(0, 1), (0, 1)]).unwrap_err();
        assert!(matches!(err, GraphError::InvalidSpec(_)));
    }

    #[test]
    fn from_weighted_triples_matches_builder() {
        let triples = vec![(1, 2, 30), (0, 1, 10), (2, 0, 20)];
        let streaming = CsrGraph::from_weighted_triples(3, triples.clone()).unwrap();
        let mut b = GraphBuilder::new(3);
        for (u, v, w) in triples {
            b = b.weighted_edge(u, v, w);
        }
        assert_eq!(streaming, b.build());
    }

    #[test]
    fn from_weighted_triples_duplicate_keeps_smallest_weight() {
        // Deterministic regardless of input order: (0,1) appears with
        // weights 9 and 3; the smaller must win both ways round.
        let a = CsrGraph::from_weighted_triples(2, vec![(0, 1, 9), (0, 1, 3)]).unwrap();
        let b = CsrGraph::from_weighted_triples(2, vec![(0, 1, 3), (0, 1, 9)]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.weight_at(0), 3);
    }
}
