//! Vertex partitioning across simulated worker threads.
//!
//! The paper's simulated system runs 16 cores; the workloads split vertex
//! ranges across threads the way GraphBIG's OpenMP loops do. Two policies are
//! provided: contiguous blocks (default, matches `#pragma omp for` static
//! scheduling) and round-robin interleaving.

use crate::VertexId;

/// How vertices map onto threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Thread `t` owns one contiguous block of vertex ids.
    Contiguous,
    /// Vertex `v` belongs to thread `v % threads`.
    Interleaved,
}

impl Partition {
    /// Iterates the vertices owned by `thread` out of `threads` for a
    /// graph of `vertex_count` vertices, in ascending id order.
    ///
    /// This is the allocation-free form: at LDBC-1M a materialized
    /// per-thread vertex list is ~4 MB × 16 threads, all of it derivable
    /// from three integers. Use [`Partition::owned`] only where a `Vec`
    /// is genuinely needed (tests, mostly).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `thread >= threads`.
    pub fn owned_iter(self, vertex_count: usize, thread: usize, threads: usize) -> OwnedIter {
        assert!(threads > 0, "need at least one thread");
        assert!(thread < threads, "thread index out of range");
        match self {
            Partition::Contiguous => {
                let (start, end) = self.block_bounds(vertex_count, thread, threads);
                OwnedIter {
                    next: start,
                    end,
                    step: 1,
                }
            }
            Partition::Interleaved => OwnedIter {
                next: thread.min(vertex_count),
                end: vertex_count,
                step: threads,
            },
        }
    }

    /// The vertices owned by `thread`, materialized. A thin collect over
    /// [`Partition::owned_iter`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `thread >= threads`.
    pub fn owned(self, vertex_count: usize, thread: usize, threads: usize) -> Vec<VertexId> {
        self.owned_iter(vertex_count, thread, threads).collect()
    }

    /// Owner thread of vertex `v`.
    pub fn owner(self, v: VertexId, vertex_count: usize, threads: usize) -> usize {
        match self {
            Partition::Contiguous => {
                let per = vertex_count.div_ceil(threads);
                ((v as usize) / per.max(1)).min(threads - 1)
            }
            Partition::Interleaved => (v as usize) % threads,
        }
    }

    fn block_bounds(self, vertex_count: usize, thread: usize, threads: usize) -> (usize, usize) {
        let per = vertex_count.div_ceil(threads);
        let start = (thread * per).min(vertex_count);
        let end = ((thread + 1) * per).min(vertex_count);
        (start, end)
    }
}

/// Iterator over the vertices owned by one thread; see
/// [`Partition::owned_iter`]. Both policies reduce to a strided range, so
/// the iterator is three words and exact-sized.
#[derive(Debug, Clone)]
pub struct OwnedIter {
    next: usize,
    end: usize,
    step: usize,
}

impl Iterator for OwnedIter {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        if self.next >= self.end {
            return None;
        }
        let v = self.next as VertexId;
        self.next += self.step;
        Some(v)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let len = self.len();
        (len, Some(len))
    }
}

impl ExactSizeIterator for OwnedIter {
    #[inline]
    fn len(&self) -> usize {
        if self.next >= self.end {
            0
        } else {
            (self.end - self.next).div_ceil(self.step)
        }
    }
}

impl std::iter::FusedIterator for OwnedIter {}

/// Splits an arbitrary item count into `threads` contiguous ranges; used for
/// frontier and edge-list chunking.
pub fn split_range(items: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    assert!(threads > 0, "need at least one thread");
    let per = items.div_ceil(threads);
    (0..threads)
        .map(|t| {
            let start = (t * per).min(items);
            let end = ((t + 1) * per).min(items);
            start..end
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn contiguous_covers_all_exactly_once() {
        let mut seen = HashSet::new();
        for t in 0..4 {
            for v in Partition::Contiguous.owned_iter(103, t, 4) {
                assert!(seen.insert(v), "vertex {v} seen twice");
            }
        }
        assert_eq!(seen.len(), 103);
    }

    #[test]
    fn interleaved_covers_all_exactly_once() {
        let mut seen = HashSet::new();
        for t in 0..7 {
            for v in Partition::Interleaved.owned_iter(100, t, 7) {
                assert!(seen.insert(v), "vertex {v} seen twice");
            }
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn owner_agrees_with_owned() {
        for policy in [Partition::Contiguous, Partition::Interleaved] {
            for t in 0..3 {
                for v in policy.owned_iter(50, t, 3) {
                    assert_eq!(policy.owner(v, 50, 3), t, "policy {policy:?}, v {v}");
                }
            }
        }
    }

    #[test]
    fn more_threads_than_vertices() {
        let total: usize = (0..8)
            .map(|t| Partition::Contiguous.owned_iter(3, t, 8).len())
            .sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn owned_is_a_thin_collect_of_owned_iter() {
        for policy in [Partition::Contiguous, Partition::Interleaved] {
            for (n, threads) in [(0, 1), (1, 4), (103, 4), (100, 7), (16, 16)] {
                for t in 0..threads {
                    let collected = policy.owned(n, t, threads);
                    let iter = policy.owned_iter(n, t, threads);
                    assert_eq!(iter.len(), collected.len(), "{policy:?} n={n} t={t}");
                    assert!(iter.eq(collected.into_iter()), "{policy:?} n={n} t={t}");
                }
            }
        }
    }

    #[test]
    fn owned_iter_is_exact_sized_mid_iteration() {
        let mut it = Partition::Interleaved.owned_iter(10, 1, 3);
        // Owns 1, 4, 7: length shrinks by one per step.
        assert_eq!(it.len(), 3);
        it.next();
        assert_eq!(it.len(), 2);
        assert_eq!(it.size_hint(), (2, Some(2)));
        it.next();
        it.next();
        assert_eq!(it.len(), 0);
        assert_eq!(it.next(), None);
    }

    #[test]
    fn split_range_covers() {
        let ranges = split_range(10, 3);
        assert_eq!(ranges.len(), 3);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(ranges[0], 0..4);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        split_range(5, 0);
    }
}
