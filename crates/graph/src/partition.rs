//! Vertex partitioning across simulated worker threads.
//!
//! The paper's simulated system runs 16 cores; the workloads split vertex
//! ranges across threads the way GraphBIG's OpenMP loops do. Two policies are
//! provided: contiguous blocks (default, matches `#pragma omp for` static
//! scheduling) and round-robin interleaving.

use crate::VertexId;

/// How vertices map onto threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Thread `t` owns one contiguous block of vertex ids.
    Contiguous,
    /// Vertex `v` belongs to thread `v % threads`.
    Interleaved,
}

impl Partition {
    /// The vertices owned by `thread` out of `threads` for a graph of
    /// `vertex_count` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `thread >= threads`.
    pub fn owned(self, vertex_count: usize, thread: usize, threads: usize) -> Vec<VertexId> {
        assert!(threads > 0, "need at least one thread");
        assert!(thread < threads, "thread index out of range");
        match self {
            Partition::Contiguous => {
                let (start, end) = self.block_bounds(vertex_count, thread, threads);
                (start as VertexId..end as VertexId).collect()
            }
            Partition::Interleaved => (thread..vertex_count)
                .step_by(threads)
                .map(|v| v as VertexId)
                .collect(),
        }
    }

    /// Owner thread of vertex `v`.
    pub fn owner(self, v: VertexId, vertex_count: usize, threads: usize) -> usize {
        match self {
            Partition::Contiguous => {
                let per = vertex_count.div_ceil(threads);
                ((v as usize) / per.max(1)).min(threads - 1)
            }
            Partition::Interleaved => (v as usize) % threads,
        }
    }

    fn block_bounds(self, vertex_count: usize, thread: usize, threads: usize) -> (usize, usize) {
        let per = vertex_count.div_ceil(threads);
        let start = (thread * per).min(vertex_count);
        let end = ((thread + 1) * per).min(vertex_count);
        (start, end)
    }
}

/// Splits an arbitrary item count into `threads` contiguous ranges; used for
/// frontier and edge-list chunking.
pub fn split_range(items: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    assert!(threads > 0, "need at least one thread");
    let per = items.div_ceil(threads);
    (0..threads)
        .map(|t| {
            let start = (t * per).min(items);
            let end = ((t + 1) * per).min(items);
            start..end
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn contiguous_covers_all_exactly_once() {
        let mut seen = HashSet::new();
        for t in 0..4 {
            for v in Partition::Contiguous.owned(103, t, 4) {
                assert!(seen.insert(v), "vertex {v} seen twice");
            }
        }
        assert_eq!(seen.len(), 103);
    }

    #[test]
    fn interleaved_covers_all_exactly_once() {
        let mut seen = HashSet::new();
        for t in 0..7 {
            for v in Partition::Interleaved.owned(100, t, 7) {
                assert!(seen.insert(v), "vertex {v} seen twice");
            }
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn owner_agrees_with_owned() {
        for policy in [Partition::Contiguous, Partition::Interleaved] {
            for t in 0..3 {
                for v in policy.owned(50, t, 3) {
                    assert_eq!(policy.owner(v, 50, 3), t, "policy {policy:?}, v {v}");
                }
            }
        }
    }

    #[test]
    fn more_threads_than_vertices() {
        let total: usize = (0..8)
            .map(|t| Partition::Contiguous.owned(3, t, 8).len())
            .sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn split_range_covers() {
        let ranges = split_range(10, 3);
        assert_eq!(ranges.len(), 3);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(ranges[0], 0..4);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        split_range(5, 0);
    }
}
