//! Compressed-sparse-row (CSR) static graph.
//!
//! The CSR layout mirrors how GraphBIG-style frameworks store the *graph
//! structure* component (Section II-C of the paper): each vertex's neighbor
//! list is a contiguous slice of one large adjacency array, so structure
//! accesses have good spatial locality, while *property* arrays (owned by the
//! framework layer, not this crate) are indexed by vertex id and accessed
//! irregularly.

use crate::{EdgeId, VertexId};
use serde::{Deserialize, Serialize};

/// A directed graph in compressed-sparse-row form.
///
/// Immutable after construction; build one with [`crate::GraphBuilder`] or a
/// generator from [`crate::generate`].
///
/// # Example
///
/// ```
/// use graphpim_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(3)
///     .edge(0, 1)
///     .edge(0, 2)
///     .edge(1, 2)
///     .build();
/// assert_eq!(g.out_degree(0), 2);
/// assert_eq!(g.neighbors(0), &[1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<EdgeId>,
    /// Concatenated adjacency lists, each sorted ascending.
    neighbors: Vec<VertexId>,
    /// Optional per-edge weights, parallel to `neighbors`.
    weights: Option<Vec<u32>>,
}

impl CsrGraph {
    /// Builds a CSR graph from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the offsets are not monotonically increasing, do not start
    /// at 0, do not end at `neighbors.len()`, or if `weights` (when present)
    /// is not parallel to `neighbors`. These invariants are enforced here so
    /// every accessor can index without bounds surprises.
    pub fn from_parts(
        offsets: Vec<EdgeId>,
        neighbors: Vec<VertexId>,
        weights: Option<Vec<u32>>,
    ) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        assert_eq!(
            *offsets.last().expect("non-empty") as usize,
            neighbors.len(),
            "last offset must equal neighbor count"
        );
        if let Some(w) = &weights {
            assert_eq!(w.len(), neighbors.len(), "weights must parallel neighbors");
        }
        CsrGraph {
            offsets,
            neighbors,
            weights,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Neighbors of `v`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// The CSR index range of `v`'s adjacency slice.
    ///
    /// The framework layer uses this to derive the *addresses* of structure
    /// accesses.
    #[inline]
    pub fn edge_range(&self, v: VertexId) -> std::ops::Range<EdgeId> {
        let v = v as usize;
        self.offsets[v]..self.offsets[v + 1]
    }

    /// Weight of the edge at CSR index `e`, or 1 if the graph is unweighted.
    #[inline]
    pub fn weight_at(&self, e: EdgeId) -> u32 {
        match &self.weights {
            Some(w) => w[e as usize],
            None => 1,
        }
    }

    /// Whether per-edge weights are stored.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// True if an edge `u -> v` exists (binary search over sorted adjacency).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over all `(source, target)` pairs in CSR order.
    pub fn iter_edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            graph: self,
            vertex: 0,
            index: 0,
        }
    }

    /// Builds the transpose (all edges reversed), preserving weights.
    ///
    /// Used by kernels that need in-edges (e.g. PageRank pull variants).
    pub fn transpose(&self) -> CsrGraph {
        let n = self.vertex_count();
        let mut in_deg = vec![0u64; n + 1];
        for &t in &self.neighbors {
            in_deg[t as usize + 1] += 1;
        }
        for i in 0..n {
            in_deg[i + 1] += in_deg[i];
        }
        let offsets = in_deg.clone();
        let mut cursor = in_deg;
        let mut neighbors = vec![0 as VertexId; self.edge_count()];
        let mut weights = self.weights.as_ref().map(|_| vec![0u32; self.edge_count()]);
        for u in 0..n as VertexId {
            for e in self.edge_range(u) {
                let t = self.neighbors[e as usize] as usize;
                let slot = cursor[t];
                cursor[t] += 1;
                neighbors[slot as usize] = u;
                if let (Some(dst), Some(src)) = (&mut weights, &self.weights) {
                    dst[slot as usize] = src[e as usize];
                }
            }
        }
        // Per-vertex lists must be sorted; counting placement emits sources
        // in ascending order already because `u` ascends, so no sort needed.
        CsrGraph::from_parts(offsets, neighbors, weights)
    }

    /// Decomposes the graph into `(offsets, neighbors, weights)`, the
    /// inverse of [`CsrGraph::from_parts`]. Lets callers re-emit a graph
    /// with different weights (or none) without copying the structure
    /// arrays — at LDBC-1M the adjacency alone is ~115 MB.
    pub fn into_parts(self) -> (Vec<EdgeId>, Vec<VertexId>, Option<Vec<u32>>) {
        (self.offsets, self.neighbors, self.weights)
    }

    /// Approximate memory footprint of structure + one 8-byte property per
    /// vertex, in bytes. Matches the "footprint" column of Table VI in
    /// spirit: it scales linearly with vertices and edges.
    pub fn footprint_bytes(&self) -> u64 {
        let structure = (self.offsets.len() * 8 + self.neighbors.len() * 4) as u64;
        let weights = self.weights.as_ref().map_or(0, |w| (w.len() * 4) as u64);
        let property = self.vertex_count() as u64 * 8;
        structure + weights + property
    }
}

/// Iterator over all edges of a [`CsrGraph`] in CSR order.
#[derive(Debug, Clone)]
pub struct EdgeIter<'a> {
    graph: &'a CsrGraph,
    vertex: usize,
    index: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (VertexId, VertexId);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.graph.vertex_count();
        while self.vertex < n {
            let end = self.graph.offsets[self.vertex + 1] as usize;
            if self.index < end {
                let item = (self.vertex as VertexId, self.graph.neighbors[self.index]);
                self.index += 1;
                return Some(item);
            }
            self.vertex += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> CsrGraph {
        GraphBuilder::new(4)
            .edge(0, 1)
            .edge(0, 2)
            .edge(1, 3)
            .edge(2, 3)
            .build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = diamond();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
    }

    #[test]
    fn neighbors_sorted() {
        let g = GraphBuilder::new(3).edge(0, 2).edge(0, 1).build();
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn has_edge_works() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(3, 0));
    }

    #[test]
    fn iter_edges_covers_all() {
        let g = diamond();
        let edges: Vec<_> = g.iter_edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn transpose_reverses() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.edge_count(), 4);
        assert_eq!(t.neighbors(3), &[1, 2]);
        assert_eq!(t.neighbors(0), &[] as &[VertexId]);
        assert!(t.has_edge(1, 0));
    }

    #[test]
    fn transpose_twice_is_identity() {
        let g = diamond();
        assert_eq!(g.transpose().transpose(), g);
    }

    #[test]
    fn transpose_preserves_weights() {
        let g = GraphBuilder::new(3)
            .weighted_edge(0, 1, 10)
            .weighted_edge(1, 2, 20)
            .build();
        let t = g.transpose();
        assert!(t.is_weighted());
        let e = t.edge_range(1).start;
        assert_eq!(t.weight_at(e), 10);
    }

    #[test]
    fn weight_defaults_to_one() {
        let g = diamond();
        assert!(!g.is_weighted());
        assert_eq!(g.weight_at(0), 1);
    }

    #[test]
    fn footprint_scales_with_size() {
        let small = diamond();
        let big = GraphBuilder::new(1000).edge(0, 999).build();
        assert!(big.footprint_bytes() > small.footprint_bytes());
    }

    #[test]
    #[should_panic(expected = "offsets must start at 0")]
    fn from_parts_rejects_bad_start() {
        CsrGraph::from_parts(vec![1, 1], vec![], None);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_parts_rejects_decreasing() {
        CsrGraph::from_parts(vec![0, 2, 1], vec![0, 0], None);
    }

    #[test]
    #[should_panic(expected = "weights must parallel")]
    fn from_parts_rejects_mismatched_weights() {
        CsrGraph::from_parts(vec![0, 1], vec![0], Some(vec![1, 2]));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.iter_edges().count(), 0);
    }
}
