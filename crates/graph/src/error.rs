//! Error types for graph construction and I/O.

use std::error::Error;
use std::fmt;

/// Error produced while building, generating, or parsing a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge referenced a vertex id outside `0..vertex_count`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// Number of vertices in the graph.
        vertex_count: u64,
    },
    /// The requested generator parameters are inconsistent
    /// (e.g. more edges than a simple graph of that size can hold).
    InvalidSpec(String),
    /// A textual edge list could not be parsed.
    Parse {
        /// 1-based line number of the malformed line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                vertex_count,
            } => write!(
                f,
                "vertex id {vertex} out of range for graph with {vertex_count} vertices"
            ),
            GraphError::InvalidSpec(msg) => write!(f, "invalid graph specification: {msg}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_vertex_and_bound() {
        let err = GraphError::VertexOutOfRange {
            vertex: 12,
            vertex_count: 10,
        };
        let text = err.to_string();
        assert!(text.contains("12"));
        assert!(text.contains("10"));
    }

    #[test]
    fn display_parse_error_mentions_line() {
        let err = GraphError::Parse {
            line: 3,
            message: "expected two fields".into(),
        };
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
