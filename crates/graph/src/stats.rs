//! Degree and footprint statistics for generated graphs.
//!
//! Used by the experiment reports (EXPERIMENTS.md) to document the inputs,
//! mirroring the dataset tables of the paper (Table VI / Table VII).

use crate::csr::CsrGraph;
use crate::VertexId;
use serde::{Deserialize, Serialize};

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Vertex count.
    pub vertices: usize,
    /// Directed edge count.
    pub edges: usize,
    /// Mean out-degree.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Fraction of edges owned by the top 1% highest-degree vertices.
    pub top1pct_edge_share: f64,
    /// Count of isolated (degree-0, in and out) vertices.
    pub isolated: usize,
    /// Estimated footprint in bytes (structure + an 8-byte property array).
    pub footprint_bytes: u64,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn compute(g: &CsrGraph) -> GraphStats {
        let n = g.vertex_count();
        let m = g.edge_count();
        let mut degrees: Vec<usize> = (0..n).map(|v| g.out_degree(v as VertexId)).collect();
        let mut has_in = vec![false; n];
        for (_, t) in g.iter_edges() {
            has_in[t as usize] = true;
        }
        let isolated = (0..n).filter(|&v| degrees[v] == 0 && !has_in[v]).count();
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let head = (n / 100).max(1).min(n.max(1));
        let top: usize = degrees.iter().take(head).sum();
        GraphStats {
            vertices: n,
            edges: m,
            avg_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
            max_degree,
            top1pct_edge_share: if m == 0 { 0.0 } else { top as f64 / m as f64 },
            isolated,
            footprint_bytes: g.footprint_bytes(),
        }
    }

    /// Human-readable footprint, e.g. `"12.3 MB"`.
    pub fn footprint_display(&self) -> String {
        let b = self.footprint_bytes as f64;
        if b >= 1e9 {
            format!("{:.1} GB", b / 1e9)
        } else if b >= 1e6 {
            format!("{:.1} MB", b / 1e6)
        } else if b >= 1e3 {
            format!("{:.1} KB", b / 1e3)
        } else {
            format!("{b} B")
        }
    }
}

/// Degree histogram with power-of-two buckets, for skew inspection.
pub fn degree_histogram(g: &CsrGraph) -> Vec<(usize, usize)> {
    let mut buckets: Vec<usize> = Vec::new();
    for v in 0..g.vertex_count() {
        let d = g.out_degree(v as VertexId);
        let bucket = (usize::BITS - d.leading_zeros()) as usize; // 0 -> 0, 1 -> 1, 2..3 -> 2, ...
        if bucket >= buckets.len() {
            buckets.resize(bucket + 1, 0);
        }
        buckets[bucket] += 1;
    }
    buckets
        .into_iter()
        .enumerate()
        .map(|(b, count)| {
            let lo = if b == 0 { 0 } else { 1usize << (b - 1) };
            (lo, count)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{GraphSpec, LdbcSize};
    use crate::GraphBuilder;

    #[test]
    fn stats_of_small_graph() {
        let g = GraphBuilder::new(4)
            .edge(0, 1)
            .edge(0, 2)
            .edge(1, 2)
            .build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertices, 4);
        assert_eq!(s.edges, 3);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.isolated, 1); // vertex 3
        assert!((s.avg_degree - 0.75).abs() < 1e-9);
    }

    #[test]
    fn ldbc_stats_match_table6_scale() {
        let g = GraphSpec::ldbc(LdbcSize::K1).build();
        let s = GraphStats::compute(&g);
        assert!(s.avg_degree > 20.0, "avg degree {}", s.avg_degree);
        assert!(s.top1pct_edge_share > 0.03);
    }

    #[test]
    fn footprint_display_units() {
        let mut s = GraphStats::compute(&GraphBuilder::new(1).build());
        s.footprint_bytes = 500;
        assert!(s.footprint_display().ends_with('B'));
        s.footprint_bytes = 5_000;
        assert!(s.footprint_display().contains("KB"));
        s.footprint_bytes = 5_000_000;
        assert!(s.footprint_display().contains("MB"));
        s.footprint_bytes = 5_000_000_000;
        assert!(s.footprint_display().contains("GB"));
    }

    #[test]
    fn histogram_buckets_cover_all_vertices() {
        let g = GraphSpec::ldbc(LdbcSize::K1).build();
        let hist = degree_histogram(&g);
        let total: usize = hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, g.vertex_count());
    }

    #[test]
    fn histogram_bucket_bounds_ascend() {
        let g = GraphSpec::uniform(100, 300).build();
        let hist = degree_histogram(&g);
        for w in hist.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }
}
