//! Mutable adjacency-list graph for the dynamic-graph (DG) kernels.
//!
//! The paper's DG category (graph construction, graph update, topology
//! morphing) performs frequent structure *and* property mutation with
//! irregular access patterns and heavy writes; PIM-Atomic is *not*
//! applicable to it (Table III), but the kernels still need a substrate
//! to run on so Figures 1/2/4 can include them.

use crate::csr::CsrGraph;
use crate::VertexId;

/// A mutable directed graph stored as per-vertex adjacency vectors.
///
/// # Example
///
/// ```
/// use graphpim_graph::DynamicGraph;
///
/// let mut g = DynamicGraph::new();
/// let a = g.add_vertex();
/// let b = g.add_vertex();
/// g.add_edge(a, b);
/// assert_eq!(g.out_degree(a), 1);
/// g.remove_edge(a, b);
/// assert_eq!(g.out_degree(a), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DynamicGraph {
    adjacency: Vec<Vec<VertexId>>,
    edge_count: usize,
}

impl DynamicGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` isolated vertices.
    pub fn with_vertices(n: usize) -> Self {
        DynamicGraph {
            adjacency: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Creates a mutable copy of a CSR graph.
    pub fn from_csr(csr: &CsrGraph) -> Self {
        let mut g = DynamicGraph::with_vertices(csr.vertex_count());
        for (u, v) in csr.iter_edges() {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices (including ones with no edges).
    pub fn vertex_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Appends a new isolated vertex, returning its id.
    pub fn add_vertex(&mut self) -> VertexId {
        self.adjacency.push(Vec::new());
        (self.adjacency.len() - 1) as VertexId
    }

    /// Adds edge `u -> v` if not already present; returns whether it was new.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        assert!((v as usize) < self.adjacency.len(), "target out of range");
        let list = &mut self.adjacency[u as usize];
        match list.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                list.insert(pos, v);
                self.edge_count += 1;
                true
            }
        }
    }

    /// Removes edge `u -> v`; returns whether it existed.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let list = &mut self.adjacency[u as usize];
        match list.binary_search(&v) {
            Ok(pos) => {
                list.remove(pos);
                self.edge_count -= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Detaches `v` from the graph: clears its out-edges and removes every
    /// in-edge pointing at it. The vertex id remains valid (isolated), which
    /// mirrors tombstone-style deletion in streaming graph stores.
    pub fn isolate_vertex(&mut self, v: VertexId) {
        self.edge_count -= self.adjacency[v as usize].len();
        self.adjacency[v as usize].clear();
        for u in 0..self.adjacency.len() {
            let list = &mut self.adjacency[u];
            if let Ok(pos) = list.binary_search(&v) {
                list.remove(pos);
                self.edge_count -= 1;
            }
        }
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.adjacency[v as usize].len()
    }

    /// Neighbors of `v`, sorted ascending.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adjacency[v as usize]
    }

    /// True if edge `u -> v` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.adjacency[u as usize].binary_search(&v).is_ok()
    }

    /// Freezes into an immutable CSR graph.
    pub fn to_csr(&self) -> CsrGraph {
        let n = self.vertex_count();
        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + self.adjacency[v].len() as u64;
        }
        let neighbors = self.adjacency.iter().flatten().copied().collect();
        CsrGraph::from_parts(offsets, neighbors, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn add_and_remove_edges() {
        let mut g = DynamicGraph::with_vertices(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(0, 1));
        assert_eq!(g.edge_count(), 1);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn add_vertex_grows() {
        let mut g = DynamicGraph::new();
        let a = g.add_vertex();
        let b = g.add_vertex();
        assert_eq!((a, b), (0, 1));
        assert_eq!(g.vertex_count(), 2);
    }

    #[test]
    fn isolate_vertex_removes_both_directions() {
        let mut g = DynamicGraph::with_vertices(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        g.isolate_vertex(1);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.out_degree(1), 0);
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(2, 1));
    }

    #[test]
    fn csr_round_trip() {
        let csr = GraphBuilder::new(4)
            .edge(0, 1)
            .edge(1, 2)
            .edge(3, 0)
            .build();
        let dynamic = DynamicGraph::from_csr(&csr);
        assert_eq!(dynamic.to_csr(), csr);
    }

    #[test]
    #[should_panic(expected = "target out of range")]
    fn add_edge_checks_target() {
        let mut g = DynamicGraph::with_vertices(1);
        g.add_edge(0, 9);
    }

    #[test]
    fn neighbors_stay_sorted() {
        let mut g = DynamicGraph::with_vertices(4);
        g.add_edge(0, 3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
    }
}
