//! Plain-text edge-list I/O.
//!
//! Real deployments would load the bitcoin/twitter graphs from disk; this
//! module provides the loader so externally produced edge lists can be fed
//! to the framework.
//!
//! # Format contract
//!
//! * One edge per line: `src dst` (unweighted) or `src dst weight`
//!   (weighted), fields separated by ASCII whitespace; vertex ids fit in
//!   `u32` and may be sparse.
//! * Blank lines and `#`-prefixed comment lines are ignored — except that
//!   the first comment whose body starts with `vertices=N` (the header
//!   [`write_edge_list`] emits) is a size hint: the graph is sized to
//!   `max(N, max_id + 1)`, so trailing isolated vertices survive a
//!   round-trip.
//! * A file must be uniformly weighted or uniformly unweighted. The first
//!   edge line fixes the arity; any later line that disagrees is a
//!   [`GraphError::Parse`] naming that line. (Silently coercing weightless
//!   lines to weight 1 — the old behaviour — corrupts shortest-path
//!   results without a peep.)
//! * Duplicate edges collapse to one; for weighted inputs the smallest
//!   weight wins, deterministically, regardless of line order.
//!
//! Two loaders share this grammar: [`read_edge_list`] streams any
//! `BufRead` source accumulating only `(src, dst[, weight])` tuples, and
//! [`read_edge_list_path`] makes two passes over a file so even that edge
//! vector is never materialized — peak memory is the finished CSR plus one
//! `u64` per vertex of degree counts.

use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::VertexId;
use std::io::{BufRead, Write};
use std::path::Path;

/// Largest admissible vertex count: ids are `u32`, so `u32::MAX + 1`
/// vertices is the most a header may declare.
const MAX_VERTICES: u64 = u32::MAX as u64 + 1;

/// One classified line of an edge list.
enum ParsedLine {
    /// Blank line or plain comment.
    Skip,
    /// `# vertices=N ...` header comment.
    Header {
        /// Declared vertex count.
        vertices: u64,
    },
    /// An edge, with its optional weight column.
    Edge {
        src: VertexId,
        dst: VertexId,
        weight: Option<u32>,
    },
}

/// Classifies one line. `line_no` is 1-based and only used for errors.
fn parse_line(line_no: usize, line: &str) -> Result<ParsedLine, GraphError> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(ParsedLine::Skip);
    }
    if let Some(comment) = trimmed.strip_prefix('#') {
        if let Some(rest) = comment.trim_start().strip_prefix("vertices=") {
            let field = rest.split_whitespace().next().unwrap_or("");
            let vertices = field.parse::<u64>().map_err(|_| GraphError::Parse {
                line: line_no,
                message: format!("invalid vertex count in header: {field:?}"),
            })?;
            if vertices > MAX_VERTICES {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: "header vertex count exceeds u32 id space".into(),
                });
            }
            return Ok(ParsedLine::Header { vertices });
        }
        return Ok(ParsedLine::Skip);
    }
    let mut fields = trimmed.split_whitespace();
    let parse = |field: Option<&str>, what: &str| -> Result<u64, GraphError> {
        field
            .ok_or_else(|| GraphError::Parse {
                line: line_no,
                message: format!("missing {what}"),
            })?
            .parse::<u64>()
            .map_err(|_| GraphError::Parse {
                line: line_no,
                message: format!("invalid {what}"),
            })
    };
    let src = parse(fields.next(), "source")?;
    let dst = parse(fields.next(), "target")?;
    let weight = match fields.next() {
        Some(w) => Some(w.parse::<u32>().map_err(|_| GraphError::Parse {
            line: line_no,
            message: "invalid weight".into(),
        })?),
        None => None,
    };
    if let Some(extra) = fields.next() {
        return Err(GraphError::Parse {
            line: line_no,
            message: format!("unexpected extra field {extra:?}"),
        });
    }
    if src > u32::MAX as u64 || dst > u32::MAX as u64 {
        return Err(GraphError::Parse {
            line: line_no,
            message: "vertex id exceeds u32".into(),
        });
    }
    Ok(ParsedLine::Edge {
        src: src as VertexId,
        dst: dst as VertexId,
        weight,
    })
}

/// Enforces the uniform-arity rule. `weighted` is the arity fixed by the
/// first edge line (if any); returns the updated arity.
fn check_arity(
    line_no: usize,
    weighted: Option<bool>,
    has_weight: bool,
) -> Result<bool, GraphError> {
    match weighted {
        None => Ok(has_weight),
        Some(w) if w == has_weight => Ok(w),
        Some(true) => Err(GraphError::Parse {
            line: line_no,
            message: "mixed weighted/unweighted input: this line has no weight \
                      but an earlier line does"
                .into(),
        }),
        Some(false) => Err(GraphError::Parse {
            line: line_no,
            message: "mixed weighted/unweighted input: this line has a weight \
                      but an earlier line does not"
                .into(),
        }),
    }
}

/// Final vertex count: the header wins over `max_id + 1` only upward.
fn final_vertex_count(header: Option<u64>, max_id: Option<u64>) -> usize {
    let from_ids = max_id.map_or(0, |m| m + 1);
    header.unwrap_or(0).max(from_ids) as usize
}

/// Edge storage of the streaming reader: the arity of the first edge line
/// decides which variant is populated, so unweighted inputs never pay for
/// a weight column (8 B vs the old 16 B per buffered edge).
enum EdgeAcc {
    Empty,
    Unweighted(Vec<(VertexId, VertexId)>),
    Weighted(Vec<(VertexId, VertexId, u32)>),
}

/// Parses an edge list from a reader into a CSR graph.
///
/// Follows the [format contract](self); the graph is sized to
/// `max(header_n, max_id + 1)`. Edges stream into a single compact tuple
/// buffer which the CSR constructors consume in place. For loading large
/// files, prefer [`read_edge_list_path`], which skips even that buffer.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed lines, mixed
/// weighted/unweighted input, and I/O failures.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<CsrGraph, GraphError> {
    let mut header: Option<u64> = None;
    let mut max_id: Option<u64> = None;
    let mut edges = EdgeAcc::Empty;
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|e| GraphError::Parse {
            line: line_no,
            message: format!("i/o error: {e}"),
        })?;
        match parse_line(line_no, &line)? {
            ParsedLine::Skip => {}
            ParsedLine::Header { vertices } => {
                header.get_or_insert(vertices);
            }
            ParsedLine::Edge { src, dst, weight } => {
                let weighted = match &edges {
                    EdgeAcc::Empty => None,
                    EdgeAcc::Unweighted(_) => Some(false),
                    EdgeAcc::Weighted(_) => Some(true),
                };
                let weighted = check_arity(line_no, weighted, weight.is_some())?;
                if let EdgeAcc::Empty = edges {
                    edges = if weighted {
                        EdgeAcc::Weighted(Vec::new())
                    } else {
                        EdgeAcc::Unweighted(Vec::new())
                    };
                }
                max_id = Some(max_id.map_or(0, |m: u64| m).max(src as u64).max(dst as u64));
                match &mut edges {
                    EdgeAcc::Unweighted(v) => v.push((src, dst)),
                    EdgeAcc::Weighted(v) => v.push((src, dst, weight.unwrap_or(1))),
                    EdgeAcc::Empty => unreachable!("variant chosen above"),
                }
            }
        }
    }
    let n = final_vertex_count(header, max_id);
    match edges {
        EdgeAcc::Empty => CsrGraph::from_pairs(n, Vec::new()),
        EdgeAcc::Unweighted(pairs) => CsrGraph::from_pairs(n, pairs),
        EdgeAcc::Weighted(triples) => CsrGraph::from_weighted_triples(n, triples),
    }
}

/// Loads an edge-list file in two streaming passes, never materializing
/// the edge set outside the finished CSR arrays.
///
/// Pass 1 validates every line and counts per-vertex out-degrees; pass 2
/// drops each edge into its final CSR slot, then adjacency lists are
/// sorted and deduplicated in place. Peak memory is the finished graph
/// plus one `u64` per vertex — at a 28.8 M-edge LDBC-1M list this is
/// ~230 MB less than buffering the tuples first.
///
/// Semantics are identical to piping the file through
/// [`read_edge_list`]; a file that changes between the passes is detected
/// (edge counts are re-checked) and reported as a parse error.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed lines, mixed
/// weighted/unweighted input, and I/O failures; file-level I/O errors are
/// reported at line 0.
pub fn read_edge_list_path(path: impl AsRef<Path>) -> Result<CsrGraph, GraphError> {
    let path = path.as_ref();
    let open = |which: &str| -> Result<std::io::BufReader<std::fs::File>, GraphError> {
        std::fs::File::open(path)
            .map(std::io::BufReader::new)
            .map_err(|e| GraphError::Parse {
                line: 0,
                message: format!("cannot open {} ({which} pass): {e}", path.display()),
            })
    };

    // Pass 1: validate, fix the arity, count degrees.
    let mut header: Option<u64> = None;
    let mut max_id: Option<u64> = None;
    let mut weighted: Option<bool> = None;
    let mut counts: Vec<u64> = Vec::new();
    let mut edge_lines: u64 = 0;
    for (idx, line) in open("first")?.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|e| GraphError::Parse {
            line: line_no,
            message: format!("i/o error: {e}"),
        })?;
        match parse_line(line_no, &line)? {
            ParsedLine::Skip => {}
            ParsedLine::Header { vertices } => {
                header.get_or_insert(vertices);
            }
            ParsedLine::Edge { src, dst, weight } => {
                weighted = Some(check_arity(line_no, weighted, weight.is_some())?);
                max_id = Some(max_id.map_or(0, |m: u64| m).max(src as u64).max(dst as u64));
                if counts.len() <= src as usize {
                    counts.resize(src as usize + 1, 0);
                }
                counts[src as usize] += 1;
                edge_lines += 1;
            }
        }
    }
    let n = final_vertex_count(header, max_id);
    let weighted = weighted.unwrap_or(false);

    // Prefix-sum the degree counts into CSR offsets; `cursor` tracks the
    // next free slot per vertex during placement.
    let mut offsets = vec![0u64; n + 1];
    for (v, &c) in counts.iter().enumerate() {
        offsets[v + 1] = c;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    drop(counts);
    let mut cursor = offsets.clone();
    let mut neighbors = vec![0 as VertexId; edge_lines as usize];
    let mut weights = if weighted {
        vec![0u32; edge_lines as usize]
    } else {
        Vec::new()
    };

    // Pass 2: place each edge in its vertex's slice.
    let changed = || GraphError::Parse {
        line: 0,
        message: format!("{} changed between passes", path.display()),
    };
    let mut placed: u64 = 0;
    for (idx, line) in open("second")?.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|e| GraphError::Parse {
            line: line_no,
            message: format!("i/o error: {e}"),
        })?;
        if let ParsedLine::Edge { src, dst, weight } = parse_line(line_no, &line)? {
            let slot = cursor[src as usize];
            if slot >= offsets[src as usize + 1] || placed >= edge_lines {
                return Err(changed());
            }
            cursor[src as usize] += 1;
            neighbors[slot as usize] = dst;
            if weighted {
                weights[slot as usize] = weight.ok_or_else(changed)?;
            } else if weight.is_some() {
                return Err(changed());
            }
            placed += 1;
        }
    }
    if placed != edge_lines {
        return Err(changed());
    }
    drop(cursor);

    // Sort and deduplicate each adjacency list in place, compacting
    // leftward; `write <= start` always holds, so the copy is safe.
    let mut write: usize = 0;
    let mut scratch: Vec<(VertexId, u32)> = Vec::new();
    for v in 0..n {
        let (start, end) = (offsets[v] as usize, offsets[v + 1] as usize);
        offsets[v] = write as u64;
        if weighted {
            // Smallest weight per target wins: sort by (target, weight),
            // keep the first of each target run — same rule as
            // `CsrGraph::from_weighted_triples`.
            scratch.clear();
            scratch.extend(
                neighbors[start..end]
                    .iter()
                    .copied()
                    .zip(weights[start..end].iter().copied()),
            );
            scratch.sort_unstable();
            scratch.dedup_by_key(|&mut (t, _)| t);
            for &(t, w) in &scratch {
                neighbors[write] = t;
                weights[write] = w;
                write += 1;
            }
        } else {
            neighbors[start..end].sort_unstable();
            let mut prev: Option<VertexId> = None;
            for i in start..end {
                let t = neighbors[i];
                if prev != Some(t) {
                    neighbors[write] = t;
                    write += 1;
                    prev = Some(t);
                }
            }
        }
    }
    offsets[n] = write as u64;
    neighbors.truncate(write);
    neighbors.shrink_to_fit();
    let weights = if weighted {
        weights.truncate(write);
        weights.shrink_to_fit();
        Some(weights)
    } else {
        None
    };
    Ok(CsrGraph::from_parts(offsets, neighbors, weights))
}

/// Writes `g` as a text edge list (with weights if the graph is weighted).
///
/// The emitted `# vertices=N edges=M` header is what lets
/// [`read_edge_list`] restore trailing isolated vertices.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_edge_list<W: Write>(g: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# vertices={} edges={}",
        g.vertex_count(),
        g.edge_count()
    )?;
    for v in 0..g.vertex_count() as VertexId {
        for (&t, e) in g.neighbors(v).iter().zip(g.edge_range(v)) {
            if g.is_weighted() {
                writeln!(writer, "{v} {t} {}", g.weight_at(e))?;
            } else {
                writeln!(writer, "{v} {t}")?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use std::io::Cursor;

    fn tmp_file(name: &str, contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "graphpim-io-test-{}-{name}.txt",
            std::process::id()
        ));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn round_trip_unweighted() {
        let g = GraphBuilder::new(3)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 0)
            .build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn round_trip_weighted() {
        let g = GraphBuilder::new(2).weighted_edge(0, 1, 7).build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn round_trip_trailing_isolated_vertices() {
        // Regression: vertices 2..5 have no edges; before the header was
        // parsed, the round-trip shrank the graph to 2 vertices.
        let g = GraphBuilder::new(5).edge(0, 1).build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(back.vertex_count(), 5);
        assert_eq!(back, g);
    }

    #[test]
    fn round_trip_fully_isolated_graph() {
        let g = GraphBuilder::new(4).build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn header_smaller_than_max_id_yields_max() {
        let g = read_edge_list(Cursor::new("# vertices=2 edges=1\n0 5\n")).unwrap();
        assert_eq!(g.vertex_count(), 6);
    }

    #[test]
    fn only_first_header_counts() {
        let text = "# vertices=7 edges=0\n# vertices=3 edges=0\n0 1\n";
        let g = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.vertex_count(), 7);
    }

    #[test]
    fn malformed_header_is_an_error() {
        let err = read_edge_list(Cursor::new("# vertices=lots\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }), "{err:?}");
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n0 1\n# mid\n1 0\n";
        let g = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn malformed_line_reports_number() {
        let text = "0 1\nnot numbers\n";
        let err = read_edge_list(Cursor::new(text)).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_target_is_error() {
        let err = read_edge_list(Cursor::new("5\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list(Cursor::new("")).unwrap();
        assert_eq!(g.vertex_count(), 0);
    }

    #[test]
    fn mixed_weight_then_unweighted_names_line() {
        let err = read_edge_list(Cursor::new("0 1 5\n# ok\n1 2\n")).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("mixed"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn mixed_unweighted_then_weight_names_line() {
        let err = read_edge_list(Cursor::new("0 1\n1 2 9\n")).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("mixed"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn duplicate_weighted_edges_keep_smallest_weight() {
        let g = read_edge_list(Cursor::new("0 1 9\n0 1 3\n")).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.weight_at(0), 3);
    }

    #[test]
    fn extra_fields_rejected() {
        let err = read_edge_list(Cursor::new("0 1 2 3\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }), "{err:?}");
    }

    #[test]
    fn path_loader_matches_reader_unweighted() {
        // Duplicates, unsorted lines, a header, and isolated vertices:
        // everything the compaction pass has to get right.
        let text = "# vertices=8 edges=6\n3 1\n0 2\n3 1\n0 1\n3 0\n0 2\n";
        let path = tmp_file("unweighted", text);
        let via_path = read_edge_list_path(&path).unwrap();
        let via_reader = read_edge_list(Cursor::new(text)).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(via_path, via_reader);
        assert_eq!(via_path.vertex_count(), 8);
        assert_eq!(via_path.edge_count(), 4);
    }

    #[test]
    fn path_loader_matches_reader_weighted() {
        let text = "2 0 5\n0 1 9\n0 1 3\n2 0 5\n1 2 1\n";
        let path = tmp_file("weighted", text);
        let via_path = read_edge_list_path(&path).unwrap();
        let via_reader = read_edge_list(Cursor::new(text)).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(via_path, via_reader);
        assert!(via_path.is_weighted());
        // (0,1) appears with weights 9 and 3: smallest wins.
        let e = via_path.edge_range(0).start;
        assert_eq!(via_path.weight_at(e), 3);
    }

    #[test]
    fn path_loader_round_trips_write() {
        let g = GraphBuilder::new(6)
            .weighted_edge(0, 3, 2)
            .weighted_edge(3, 0, 8)
            .weighted_edge(1, 4, 5)
            .build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let path = tmp_file("roundtrip", std::str::from_utf8(&buf).unwrap());
        let back = read_edge_list_path(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn path_loader_missing_file_reports_line_zero() {
        let err = read_edge_list_path("/nonexistent/graphpim-io-test").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 0, .. }), "{err:?}");
    }
}
