//! Plain-text edge-list I/O.
//!
//! Real deployments would load the bitcoin/twitter graphs from disk; this
//! module provides the loader so externally produced edge lists can be fed
//! to the framework. Format: one `src dst [weight]` triple per line,
//! `#`-prefixed comment lines ignored.

use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::{GraphBuilder, VertexId};
use std::io::{BufRead, Write};

/// Parses an edge-list from a reader into a CSR graph.
///
/// Vertex ids may be sparse; the graph is sized to `max_id + 1`.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed lines and I/O failures.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<CsrGraph, GraphError> {
    let mut edges: Vec<(VertexId, VertexId, Option<u32>)> = Vec::new();
    let mut max_id: u64 = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| GraphError::Parse {
            line: idx + 1,
            message: format!("i/o error: {e}"),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let parse = |field: Option<&str>, what: &str| -> Result<u64, GraphError> {
            field
                .ok_or_else(|| GraphError::Parse {
                    line: idx + 1,
                    message: format!("missing {what}"),
                })?
                .parse::<u64>()
                .map_err(|_| GraphError::Parse {
                    line: idx + 1,
                    message: format!("invalid {what}"),
                })
        };
        let src = parse(fields.next(), "source")?;
        let dst = parse(fields.next(), "target")?;
        let weight = match fields.next() {
            Some(w) => Some(w.parse::<u32>().map_err(|_| GraphError::Parse {
                line: idx + 1,
                message: "invalid weight".into(),
            })?),
            None => None,
        };
        if src > u32::MAX as u64 || dst > u32::MAX as u64 {
            return Err(GraphError::Parse {
                line: idx + 1,
                message: "vertex id exceeds u32".into(),
            });
        }
        max_id = max_id.max(src).max(dst);
        edges.push((src as VertexId, dst as VertexId, weight));
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    let weighted = edges.iter().any(|&(_, _, w)| w.is_some());
    let mut builder = GraphBuilder::new(n);
    for (u, v, w) in edges {
        builder = if weighted {
            builder.weighted_edge(u, v, w.unwrap_or(1))
        } else {
            builder.edge(u, v)
        };
    }
    builder.try_build()
}

/// Writes `g` as a text edge list (with weights if the graph is weighted).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_edge_list<W: Write>(g: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# vertices={} edges={}",
        g.vertex_count(),
        g.edge_count()
    )?;
    for v in 0..g.vertex_count() as VertexId {
        for (&t, e) in g.neighbors(v).iter().zip(g.edge_range(v)) {
            if g.is_weighted() {
                writeln!(writer, "{v} {t} {}", g.weight_at(e))?;
            } else {
                writeln!(writer, "{v} {t}")?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip_unweighted() {
        let g = GraphBuilder::new(3)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 0)
            .build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn round_trip_weighted() {
        let g = GraphBuilder::new(2).weighted_edge(0, 1, 7).build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n0 1\n# mid\n1 0\n";
        let g = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn malformed_line_reports_number() {
        let text = "0 1\nnot numbers\n";
        let err = read_edge_list(Cursor::new(text)).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_target_is_error() {
        let err = read_edge_list(Cursor::new("5\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list(Cursor::new("")).unwrap();
        assert_eq!(g.vertex_count(), 0);
    }
}
