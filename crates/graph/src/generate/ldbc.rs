//! LDBC-like synthetic graph family (Table VI of the paper).
//!
//! The paper evaluates on the LDBC social-network graph at four sizes that
//! share connectivity characteristics and differ only in footprint:
//!
//! | Name       | Vertices | Edges  |
//! |------------|----------|--------|
//! | LDBC-1k    | 1 K      | 29 K   |
//! | LDBC-10k   | 10 K     | 296 K  |
//! | LDBC-100k  | 100 K    | 2.8 M  |
//! | LDBC-1M    | 1 M      | 28.8 M |
//!
//! The real LDBC SNB data generator is a large Hadoop/Spark pipeline; as a
//! substitution (see DESIGN.md) we generate power-law graphs with community
//! structure, matched to the vertex/edge counts above. What matters for the
//! paper's experiments is the *irregularity* of property accesses and the
//! footprint scaling, both of which this generator preserves.

use super::zipf::Zipf;
use super::SplitMix64;
use crate::csr::CsrGraph;
use crate::VertexId;

/// Size classes of the LDBC-like family (Table VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LdbcSize {
    /// 1 K vertices, ~29 K edges, ~1 MB footprint.
    K1,
    /// 10 K vertices, ~296 K edges, ~10 MB footprint.
    K10,
    /// 100 K vertices, ~2.8 M edges, ~100 MB footprint.
    K100,
    /// 1 M vertices, ~28.8 M edges, ~900 MB footprint.
    M1,
}

impl LdbcSize {
    /// All sizes, smallest first (the sweep order of Figure 14).
    pub const ALL: [LdbcSize; 4] = [LdbcSize::K1, LdbcSize::K10, LdbcSize::K100, LdbcSize::M1];

    /// Vertex count of this class.
    pub fn vertices(self) -> usize {
        match self {
            LdbcSize::K1 => 1_000,
            LdbcSize::K10 => 10_000,
            LdbcSize::K100 => 100_000,
            LdbcSize::M1 => 1_000_000,
        }
    }

    /// Target directed edge count of this class (Table VI).
    pub fn target_edges(self) -> usize {
        match self {
            LdbcSize::K1 => 29_000,
            LdbcSize::K10 => 296_000,
            LdbcSize::K100 => 2_800_000,
            LdbcSize::M1 => 28_800_000,
        }
    }

    /// Display name used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            LdbcSize::K1 => "LDBC-1k",
            LdbcSize::K10 => "LDBC-10k",
            LdbcSize::K100 => "LDBC-100k",
            LdbcSize::M1 => "LDBC-1M",
        }
    }
}

impl std::fmt::Display for LdbcSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Fraction of edges that stay within the source's community.
const COMMUNITY_LOCALITY: f64 = 0.15;
/// Zipf exponent for source-popularity (who creates edges).
const SOURCE_EXPONENT: f64 = 0.5;
/// Zipf exponent for global target-popularity (hubs). Kept moderate:
/// LDBC SNB friendship graphs are skewed but far from proportional-to-rank;
/// over-concentration would keep hub properties cache-hot, contradicting
/// the paper's >80% offload-candidate miss rates (Figure 10).
const TARGET_EXPONENT: f64 = 0.4;

/// Generates an LDBC-like graph of the given size class.
///
/// Deterministic under `seed`. The produced edge count lands within a few
/// percent of [`LdbcSize::target_edges`] (duplicate samples are removed).
pub fn generate(size: LdbcSize, seed: u64) -> CsrGraph {
    generate_custom(size.vertices(), size.target_edges(), seed)
}

/// Generates an LDBC-flavored graph with explicit vertex/edge counts.
///
/// # Panics
///
/// Panics if `vertices == 0`.
pub fn generate_custom(vertices: usize, target_edges: usize, seed: u64) -> CsrGraph {
    assert!(vertices > 0, "vertex count must be positive");
    let mut rng = SplitMix64::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(13));

    // Random permutation: zipf rank -> vertex id, so hub vertices (and hence
    // hot property addresses) are scattered through the id space rather than
    // clustered at low addresses.
    let mut perm: Vec<VertexId> = (0..vertices as VertexId).collect();
    for i in (1..vertices).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        perm.swap(i, j);
    }

    let source_zipf = Zipf::new(vertices, SOURCE_EXPONENT);
    let target_zipf = Zipf::new(vertices, TARGET_EXPONENT);
    // Community size ~ max(1024, n/64): each community's property slice is
    // large enough that community-local traffic still misses the LLC at
    // the paper's scales.
    let community = (vertices / 64).max(1024).min(vertices);

    // Sample in rounds: skew makes duplicate pairs common, so keep sampling
    // until the deduplicated count reaches the target (bounded rounds keep
    // this total even for adversarial parameters).
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(target_edges * 2);
    let sample_one = |rng: &mut SplitMix64| {
        let src = perm[source_zipf.sample(rng)];
        let dst = if rng.next_f64() < COMMUNITY_LOCALITY {
            // Within-community edge: uniform over the source's community.
            let base = (src as usize / community) * community;
            let span = community.min(vertices - base);
            (base as u64 + rng.next_below(span as u64)) as VertexId
        } else {
            perm[target_zipf.sample(rng)]
        };
        (src, dst)
    };
    let mut unique = 0usize;
    for _round in 0..8 {
        let deficit = target_edges.saturating_sub(unique);
        if deficit == 0 {
            break;
        }
        // Sample exactly the deficit; later rounds top up whatever
        // deduplication removed, converging from below with minimal
        // overshoot.
        let extra = deficit;
        for _ in 0..extra {
            let (u, v) = sample_one(&mut rng);
            if u != v {
                edges.push((u, v));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        unique = edges.len();
    }
    // The sampling loop leaves `edges` sorted and deduplicated (every round
    // ends with sort + dedup), so the zero-copy streaming constructor
    // applies: no GraphBuilder triple buffer, no re-sort. Bit-identical to
    // the old `GraphBuilder::new(vertices).edges(edges).build()` path.
    CsrGraph::from_sorted_unique_pairs(vertices, edges).expect("generator emits in-range vertices")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_k1_counts() {
        let g = generate(LdbcSize::K1, 1);
        assert_eq!(g.vertex_count(), 1_000);
        let target = LdbcSize::K1.target_edges() as f64;
        let got = g.edge_count() as f64;
        assert!(
            (got - target).abs() / target < 0.10,
            "edges {got} vs target {target}"
        );
    }

    #[test]
    fn table6_k10_counts() {
        let g = generate(LdbcSize::K10, 1);
        assert_eq!(g.vertex_count(), 10_000);
        let target = LdbcSize::K10.target_edges() as f64;
        let got = g.edge_count() as f64;
        assert!(
            (got - target).abs() / target < 0.10,
            "edges {got} vs target {target}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate(LdbcSize::K1, 5);
        let b = generate(LdbcSize::K1, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(LdbcSize::K1, 5);
        let b = generate(LdbcSize::K1, 6);
        assert_ne!(a, b);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = generate(LdbcSize::K10, 1);
        let mut degrees: Vec<usize> = (0..g.vertex_count())
            .map(|v| g.out_degree(v as VertexId))
            .collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: usize = degrees[..g.vertex_count() / 100].iter().sum();
        let total: usize = degrees.iter().sum();
        // Top 1% of vertices should own well above 1% of edges.
        assert!(
            top1pct as f64 > 0.05 * total as f64,
            "top1% owns {top1pct}/{total}"
        );
    }

    #[test]
    fn no_self_loops() {
        let g = generate(LdbcSize::K1, 2);
        assert!(g.iter_edges().all(|(u, v)| u != v));
    }

    #[test]
    fn size_metadata_matches_table6() {
        assert_eq!(LdbcSize::M1.vertices(), 1_000_000);
        assert_eq!(LdbcSize::M1.target_edges(), 28_800_000);
        assert_eq!(LdbcSize::K100.name(), "LDBC-100k");
        assert_eq!(LdbcSize::ALL.len(), 4);
    }

    #[test]
    fn custom_counts_respected() {
        let g = generate_custom(500, 2_000, 3);
        assert_eq!(g.vertex_count(), 500);
        assert!(g.edge_count() > 1_500);
    }
}
