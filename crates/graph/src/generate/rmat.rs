//! RMAT (recursive-matrix / Kronecker) graph generator.
//!
//! Stands in for the paper's real-world bitcoin transaction graph and twitter
//! follower graph (Section IV-B5): both are heavy-tailed, scale-free networks,
//! which is exactly the regime RMAT reproduces. Scale is configurable so the
//! real-world application experiments can run at laptop footprint while the
//! generator itself supports the paper-size inputs.

use super::SplitMix64;
use crate::csr::CsrGraph;
use crate::VertexId;

/// Default RMAT quadrant probabilities (the classic Graph500 parameters).
pub const DEFAULT_PROBS: (f64, f64, f64, f64) = (0.57, 0.19, 0.19, 0.05);

/// Generates an RMAT graph with `2^scale` vertices and roughly
/// `edge_factor * 2^scale` directed edges (duplicates removed), using the
/// Graph500 quadrant probabilities.
///
/// # Panics
///
/// Panics if `scale >= 32` (vertex ids are `u32`).
pub fn generate(scale: u32, edge_factor: u32, seed: u64) -> CsrGraph {
    generate_with_probs(scale, edge_factor, seed, DEFAULT_PROBS)
}

/// Generates an RMAT graph with explicit quadrant probabilities `(a, b, c, d)`.
///
/// # Panics
///
/// Panics if `scale >= 32` or the probabilities do not sum to ~1.
pub fn generate_with_probs(
    scale: u32,
    edge_factor: u32,
    seed: u64,
    (a, b, c, d): (f64, f64, f64, f64),
) -> CsrGraph {
    assert!(scale < 32, "scale must fit u32 vertex ids");
    let sum = a + b + c + d;
    assert!((sum - 1.0).abs() < 1e-6, "probabilities must sum to 1");

    let n = 1usize << scale;
    let edges_target = n * edge_factor as usize;
    let mut rng = SplitMix64::new(seed ^ 0x4d41_5452_4d41_5452);
    let mut edges = Vec::with_capacity(edges_target);
    for _ in 0..edges_target {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            // Add ±5% noise per level, as common RMAT practice to avoid
            // staircase artifacts.
            let noise = 0.95 + 0.1 * rng.next_f64();
            let r = rng.next_f64();
            if r < a * noise {
                // quadrant (0,0)
            } else if r < (a + b) * noise {
                v |= 1;
            } else if r < (a + b + c) * noise {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u != v {
            edges.push((u as VertexId, v as VertexId));
        }
    }
    CsrGraph::from_pairs(n, edges).expect("generator emits in-range vertices")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_count_is_power_of_two() {
        let g = generate(10, 8, 1);
        assert_eq!(g.vertex_count(), 1024);
    }

    #[test]
    fn edge_count_near_target() {
        let g = generate(10, 8, 1);
        let target = 1024 * 8;
        // Duplicates and self-loops remove some edges, but most survive.
        assert!(g.edge_count() > target / 2, "edges {}", g.edge_count());
        assert!(g.edge_count() <= target);
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(8, 4, 11), generate(8, 4, 11));
    }

    #[test]
    fn skewed_in_degree() {
        let g = generate(12, 16, 2);
        let t = g.transpose();
        let max_in = (0..t.vertex_count())
            .map(|v| t.out_degree(v as VertexId))
            .max()
            .unwrap_or(0);
        let avg = t.edge_count() / t.vertex_count();
        assert!(
            max_in > avg * 10,
            "max in-degree {max_in} should dwarf average {avg}"
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_probs_rejected() {
        generate_with_probs(4, 2, 1, (0.5, 0.5, 0.5, 0.5));
    }

    #[test]
    fn uniform_probs_are_less_skewed() {
        let skewed = generate(10, 8, 3);
        let flat = generate_with_probs(10, 8, 3, (0.25, 0.25, 0.25, 0.25));
        let max_deg = |g: &CsrGraph| {
            (0..g.vertex_count())
                .map(|v| g.out_degree(v as VertexId))
                .max()
                .unwrap_or(0)
        };
        assert!(max_deg(&skewed) > max_deg(&flat));
    }
}
