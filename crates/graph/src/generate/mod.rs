//! Deterministic synthetic graph generators.
//!
//! Three families:
//!
//! * [`ldbc`] — the LDBC-like power-law graphs of Table VI
//!   (1 K – 1 M vertices, ~29 edges per vertex, community structure);
//! * [`rmat`] — Kronecker/RMAT graphs standing in for the paper's bitcoin
//!   and twitter inputs (heavy-tailed, scale-free);
//! * [`uniform`] — Erdős–Rényi graphs used as a locality control in tests.
//!
//! All generators are fully deterministic under a fixed seed.

pub mod ldbc;
pub mod rmat;
pub mod uniform;
pub mod zipf;

pub use ldbc::LdbcSize;
pub use zipf::Zipf;

use crate::csr::CsrGraph;

/// Which generator family to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// LDBC-like graph of a Table VI size class.
    Ldbc(LdbcSize),
    /// RMAT graph with `2^scale` vertices and `edge_factor * 2^scale` edges.
    Rmat {
        /// log2 of the vertex count.
        scale: u32,
        /// Average out-degree.
        edge_factor: u32,
    },
    /// Uniform random graph with `vertices` vertices and `edges` edges.
    Uniform {
        /// Vertex count.
        vertices: usize,
        /// Directed edge count.
        edges: usize,
    },
}

/// Declarative description of a synthetic graph; the entry point of this
/// module.
///
/// # Example
///
/// ```
/// use graphpim_graph::generate::{GraphSpec, LdbcSize};
///
/// let g = GraphSpec::ldbc(LdbcSize::K1).seed(42).build();
/// let same = GraphSpec::ldbc(LdbcSize::K1).seed(42).build();
/// assert_eq!(g, same); // deterministic under a fixed seed
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphSpec {
    kind: GraphKind,
    seed: u64,
    weighted: bool,
}

impl GraphSpec {
    /// An LDBC-like graph of the given size class.
    pub fn ldbc(size: LdbcSize) -> Self {
        GraphSpec {
            kind: GraphKind::Ldbc(size),
            seed: 1,
            weighted: false,
        }
    }

    /// An RMAT graph (`2^scale` vertices, `edge_factor` average degree).
    pub fn rmat(scale: u32, edge_factor: u32) -> Self {
        GraphSpec {
            kind: GraphKind::Rmat { scale, edge_factor },
            seed: 1,
            weighted: false,
        }
    }

    /// A uniform random graph.
    pub fn uniform(vertices: usize, edges: usize) -> Self {
        GraphSpec {
            kind: GraphKind::Uniform { vertices, edges },
            seed: 1,
            weighted: false,
        }
    }

    /// Sets the RNG seed (default 1).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attach deterministic pseudo-random edge weights in `1..=100`
    /// (needed by the SSSP kernel).
    pub fn weighted(mut self) -> Self {
        self.weighted = true;
        self
    }

    /// The generator family of this spec.
    pub fn kind(&self) -> GraphKind {
        self.kind
    }

    /// Generates the graph.
    pub fn build(self) -> CsrGraph {
        let base = match self.kind {
            GraphKind::Ldbc(size) => ldbc::generate(size, self.seed),
            GraphKind::Rmat { scale, edge_factor } => rmat::generate(scale, edge_factor, self.seed),
            GraphKind::Uniform { vertices, edges } => uniform::generate(vertices, edges, self.seed),
        };
        if self.weighted {
            attach_weights(base, self.seed)
        } else {
            base
        }
    }
}

/// Seed salt so weight streams differ from topology streams.
const WEIGHT_SEED_SALT: u64 = 0x77e1_6b2d_91c3_a55f;

/// Re-emits `g` with deterministic per-edge weights in `1..=100`.
///
/// Structure arrays are moved, not copied; only the weight column is
/// allocated. One RNG draw per edge in CSR order keeps the weight stream
/// bit-identical to what the old copy-everything implementation produced.
fn attach_weights(g: CsrGraph, seed: u64) -> CsrGraph {
    let mut rng = SplitMix64::new(seed ^ WEIGHT_SEED_SALT);
    let (offsets, neighbors, _) = g.into_parts();
    let weights: Vec<u32> = neighbors
        .iter()
        .map(|_| (rng.next_u64() % 100 + 1) as u32)
        .collect();
    CsrGraph::from_parts(offsets, neighbors, Some(weights))
}

/// SplitMix64: tiny, fast, deterministic PRNG used by the generators.
///
/// We deliberately avoid depending on `rand`'s generator internals here so
/// that generated graphs are bit-stable across `rand` versions; `rand` is
/// still used elsewhere for distributions in tests.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire-style multiply-shift reduction; bias is negligible for the
        // bounds used here and determinism is what matters.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_bounds_respected() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(rng.next_below(17) < 17);
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn spec_seed_changes_output() {
        let a = GraphSpec::uniform(100, 500).seed(1).build();
        let b = GraphSpec::uniform(100, 500).seed(2).build();
        assert_ne!(a, b);
    }

    #[test]
    fn weighted_spec_attaches_weights() {
        let g = GraphSpec::uniform(50, 200).weighted().build();
        assert!(g.is_weighted());
        for e in 0..g.edge_count() as u64 {
            let w = g.weight_at(e);
            assert!((1..=100).contains(&w));
        }
    }

    #[test]
    fn rmat_spec_builds() {
        let g = GraphSpec::rmat(8, 4).build();
        assert_eq!(g.vertex_count(), 256);
        assert!(g.edge_count() > 0);
    }
}
