//! Uniform (Erdős–Rényi style) random graph generator.
//!
//! Used as a locality control in tests: a uniform graph has no degree skew,
//! so cache-behaviour differences against the LDBC-like family isolate the
//! effect of hubs.

use super::SplitMix64;
use crate::csr::CsrGraph;
use crate::VertexId;

/// Generates a uniform random directed graph with `vertices` vertices and at
/// most `edges` edges (duplicates and self-loops removed).
///
/// # Panics
///
/// Panics if `vertices == 0` and `edges > 0`.
pub fn generate(vertices: usize, edges: usize, seed: u64) -> CsrGraph {
    if vertices == 0 {
        assert_eq!(edges, 0, "cannot place edges in an empty graph");
        return CsrGraph::from_pairs(0, Vec::new()).expect("empty graph");
    }
    let mut rng = SplitMix64::new(seed ^ 0x554e_4946_4f52_4d21);
    let mut list = Vec::with_capacity(edges);
    for _ in 0..edges {
        let u = rng.next_below(vertices as u64) as VertexId;
        let v = rng.next_below(vertices as u64) as VertexId;
        if u != v {
            list.push((u, v));
        }
    }
    CsrGraph::from_pairs(vertices, list).expect("generator emits in-range vertices")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_close_to_request() {
        let g = generate(1000, 5000, 1);
        assert_eq!(g.vertex_count(), 1000);
        assert!(g.edge_count() > 4500);
        assert!(g.edge_count() <= 5000);
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(100, 400, 9), generate(100, 400, 9));
    }

    #[test]
    fn empty_graph_ok() {
        let g = generate(0, 0, 1);
        assert_eq!(g.vertex_count(), 0);
    }

    #[test]
    fn degrees_are_flat() {
        let g = generate(1000, 20_000, 4);
        let max = (0..1000).map(|v| g.out_degree(v)).max().unwrap();
        let avg = g.edge_count() / 1000;
        // Without preferential attachment the max degree stays near the mean.
        assert!(max < avg * 4, "max {max}, avg {avg}");
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn edges_in_empty_graph_panic() {
        generate(0, 5, 1);
    }
}
