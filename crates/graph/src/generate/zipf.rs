//! Bounded Zipf sampling used by the power-law generators.

use super::SplitMix64;

/// Samples from a Zipf distribution over `0..n` with exponent `s`:
/// `P(k) ∝ 1 / (k + 1)^s`.
///
/// Uses a precomputed cumulative table with binary-search inversion — exact,
/// deterministic, and fast enough for the graph sizes in this repository
/// (the table is built once per generator invocation).
///
/// # Example
///
/// ```
/// use graphpim_graph::generate::{SplitMix64, Zipf};
///
/// let zipf = Zipf::new(100, 1.2);
/// let mut rng = SplitMix64::new(7);
/// let k = zipf.sample(&mut rng);
/// assert!(k < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for ranks `0..n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        // Normalize so the last entry is exactly 1.0.
        let norm = total;
        for c in &mut cumulative {
            *c /= norm;
        }
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Zipf { cumulative }
    }

    /// Size of the support.
    pub fn support(&self) -> usize {
        self.cumulative.len()
    }

    /// Draws one rank in `0..support()`.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN in table"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[k] - self.cumulative[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_in_range() {
        let zipf = Zipf::new(10, 1.0);
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(zipf.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let zipf = Zipf::new(1000, 1.5);
        let mut rng = SplitMix64::new(2);
        let mut head = 0usize;
        const DRAWS: usize = 20_000;
        for _ in 0..DRAWS {
            if zipf.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s = 1.5 the top-10 ranks carry well over half the mass.
        assert!(head > DRAWS / 2, "head draws: {head}");
    }

    #[test]
    fn pmf_sums_to_one() {
        let zipf = Zipf::new(50, 0.8);
        let sum: f64 = (0..50).map(|k| zipf.pmf(k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_monotone_decreasing() {
        let zipf = Zipf::new(20, 1.1);
        for k in 1..20 {
            assert!(zipf.pmf(k) <= zipf.pmf(k - 1) + 1e-12);
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let zipf = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((zipf.pmf(k) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_support_panics() {
        Zipf::new(0, 1.0);
    }
}
