#![warn(missing_docs)]

//! Graph data structures and synthetic graph generators for the GraphPIM
//! reproduction.
//!
//! This crate provides the *data substrate* of the GraphPIM stack:
//!
//! * [`CsrGraph`] — a compressed-sparse-row static graph used by the
//!   traversal (GT) and rich-property (RP) kernels.
//! * [`DynamicGraph`] — an adjacency-list mutable graph used by the
//!   dynamic-graph (DG) kernels (graph construction, update, morphing).
//! * [`generate`] — deterministic synthetic generators: the LDBC-like
//!   power-law family of Table VI, RMAT graphs standing in for the paper's
//!   bitcoin/twitter inputs, and uniform random graphs.
//! * [`partition`] — vertex partitioning across simulated threads.
//! * [`stats`] — degree and footprint statistics used by the experiment
//!   reports.
//!
//! # Example
//!
//! ```
//! use graphpim_graph::generate::{GraphSpec, LdbcSize};
//!
//! let graph = GraphSpec::ldbc(LdbcSize::K1).seed(7).build();
//! assert_eq!(graph.vertex_count(), 1_000);
//! assert!(graph.edge_count() > 20_000);
//! ```

pub mod builder;
pub mod csr;
pub mod dynamic;
pub mod error;
pub mod generate;
pub mod io;
pub mod partition;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use dynamic::DynamicGraph;
pub use error::GraphError;

/// Identifier of a vertex.
///
/// A plain `u32` index keeps the hot loops of the kernels and the trace
/// recorder allocation-free; all graphs in the reproduction stay below
/// 2^32 vertices (the paper's largest input has 71.7M vertices).
pub type VertexId = u32;

/// Identifier of an edge, indexing into CSR adjacency storage.
pub type EdgeId = u64;
