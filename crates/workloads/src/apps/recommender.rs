//! Recommender system (RS).
//!
//! Item-to-item collaborative filtering (Sarwar et al. / the Amazon method
//! the paper cites): for a set of query users, score candidate items by
//! co-occurrence — users who follow `x` also follow `y`. On the follower
//! graph this is a two-hop traversal per query with atomic score
//! accumulation on the candidate property, making it dominated by the same
//! irregular property atomics as the kernels (hence the 1.9× Figure 17
//! speedup).

use crate::framework::{Framework, GraphAccess, PropertyArray};
use graphpim_graph::{CsrGraph, VertexId};

/// A scored recommendation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recommendation {
    /// Recommended vertex (item/user).
    pub item: VertexId,
    /// Co-occurrence score.
    pub score: u64,
}

/// Item-to-item collaborative-filtering recommender.
#[derive(Debug)]
pub struct Recommender {
    queries: Vec<VertexId>,
    top_k: usize,
    results: Vec<Vec<Recommendation>>,
}

impl Recommender {
    /// Recommends `top_k` items for each query vertex.
    pub fn new(queries: Vec<VertexId>, top_k: usize) -> Self {
        Recommender {
            queries,
            top_k,
            results: Vec::new(),
        }
    }

    /// Per-query recommendations after [`Recommender::run`].
    pub fn results(&self) -> &[Vec<Recommendation>] {
        &self.results
    }

    /// Runs the recommender.
    pub fn run(&mut self, graph: &CsrGraph, fw: &mut Framework<'_>) {
        let n = graph.vertex_count();
        self.results.clear();
        if n == 0 {
            return;
        }
        let access = GraphAccess::new(fw, graph);
        let mut score = PropertyArray::new(fw, n, 0u64);

        for &q in &self.queries.clone() {
            if (q as usize) >= n {
                self.results.push(Vec::new());
                continue;
            }
            // Reset scores (untraced bulk init models a fresh scratch
            // allocation per query).
            for v in 0..n {
                score.poke(v, 0);
            }
            // Two-hop scatter: items of my items' co-followers.
            let firsts: Vec<VertexId> = graph.neighbors(q).to_vec();
            for (i, &mid) in firsts.iter().enumerate() {
                fw.spread(i);
                {
                    access.degree(fw, mid);
                    fw.compute(2);
                    access.for_each_neighbor(fw, mid, |fw, item, _| {
                        fw.compute(1);
                        fw.branch(false, true);
                        if item != q {
                            score.fetch_add(fw, item as usize, 1);
                        }
                    });
                }
            }
            fw.barrier();

            // Top-k selection pass (meta-heavy scan).
            let mut scored: Vec<Recommendation> = Vec::new();
            for v in 0..n {
                fw.spread(v);
                {
                    let s = score.get(fw, v, false);
                    fw.branch(false, true);
                    if s > 0 && !graph.has_edge(q, v as VertexId) {
                        fw.compute(3);
                        scored.push(Recommendation {
                            item: v as VertexId,
                            score: s,
                        });
                    }
                }
            }
            fw.barrier();
            scored.sort_by(|a, b| b.score.cmp(&a.score).then(a.item.cmp(&b.item)));
            scored.truncate(self.top_k);
            self.results.push(scored);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CollectTrace;
    use graphpim_graph::GraphBuilder;

    #[test]
    fn co_follow_recommendation() {
        // Users 0 and 1 both follow 2 and 3; user 1 also follows 4.
        // Query 0 via co-follower structure: 0 -> {2,3}; who else is
        // followed by followers of {2,3}? Build a bipartite-ish case:
        // 0 -> 2, 2 -> 4: recommend 4.
        let g = GraphBuilder::new(5)
            .edge(0, 2)
            .edge(2, 4)
            .edge(2, 3)
            .build();
        let mut sink = CollectTrace::default();
        let mut rs = Recommender::new(vec![0], 3);
        let mut fw = Framework::new(2, &mut sink);
        rs.run(&g, &mut fw);
        fw.finish();
        let recs = &rs.results()[0];
        assert!(recs.iter().any(|r| r.item == 4));
        assert!(recs.iter().any(|r| r.item == 3));
    }

    #[test]
    fn does_not_recommend_existing_follows() {
        let g = GraphBuilder::new(4)
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .build();
        let mut sink = CollectTrace::default();
        let mut rs = Recommender::new(vec![0], 5);
        let mut fw = Framework::new(1, &mut sink);
        rs.run(&g, &mut fw);
        fw.finish();
        // 2 is reachable in two hops but already followed.
        assert!(rs.results()[0].iter().all(|r| r.item != 2));
    }

    #[test]
    fn top_k_truncates_and_sorts() {
        let g = super::super::twitter_like(8, 3);
        let mut sink = CollectTrace::default();
        let mut rs = Recommender::new(vec![0, 1], 5);
        let mut fw = Framework::new(4, &mut sink);
        rs.run(&g, &mut fw);
        fw.finish();
        for recs in rs.results() {
            assert!(recs.len() <= 5);
            for w in recs.windows(2) {
                assert!(w[0].score >= w[1].score);
            }
        }
    }

    #[test]
    fn out_of_range_query_is_empty() {
        let g = GraphBuilder::new(2).edge(0, 1).build();
        let mut sink = CollectTrace::default();
        let mut rs = Recommender::new(vec![42], 3);
        let mut fw = Framework::new(1, &mut sink);
        rs.run(&g, &mut fw);
        fw.finish();
        assert!(rs.results()[0].is_empty());
    }
}
