//! Financial fraud detection (FD).
//!
//! Graph-based first-party-fraud detection uncovers *fraud rings*: groups
//! of accounts sharing transaction structure. Following the reference the
//! paper cites (Sadowksi & Rathle), the pipeline is traversal-based:
//!
//! 1. connected components over the transaction graph (ring candidates);
//! 2. bounded-depth BFS from flagged seed accounts to collect each ring's
//!    neighborhood;
//! 3. a degree-based scoring pass over ring members.
//!
//! Stages 1–3 run through the same framework layer as the kernels, so the
//! trace carries the same offloadable atomics; the paper's FD also has
//! non-graph components (case management etc.) which we model as a
//! compute-only epilogue — that is why FD shows a lower overall speedup
//! than RS in Figure 17.

use crate::framework::{Framework, GraphAccess, PropertyArray};
use crate::kernels::{Bfs, CComp, Kernel};
use graphpim_graph::{CsrGraph, VertexId};

/// The fraud-detection application.
#[derive(Debug)]
pub struct FraudDetection {
    seeds: Vec<VertexId>,
    suspicious: Vec<VertexId>,
    rings: usize,
}

impl FraudDetection {
    /// Detects rings around the given seed accounts.
    pub fn new(seeds: Vec<VertexId>) -> Self {
        FraudDetection {
            seeds,
            suspicious: Vec::new(),
            rings: 0,
        }
    }

    /// Accounts flagged as ring members.
    pub fn suspicious(&self) -> &[VertexId] {
        &self.suspicious
    }

    /// Number of distinct rings (components containing a seed).
    pub fn rings(&self) -> usize {
        self.rings
    }

    /// Runs the full pipeline.
    pub fn run(&mut self, graph: &CsrGraph, fw: &mut Framework<'_>) {
        let n = graph.vertex_count();
        if n == 0 {
            return;
        }

        // Stage 1: component labels.
        let mut ccomp = CComp::new();
        ccomp.run(graph, fw);
        let labels = ccomp.labels().to_vec();

        // Stage 2: neighborhood expansion from each seed.
        let mut member = vec![false; n];
        for &seed in &self.seeds.clone() {
            if (seed as usize) >= n {
                continue;
            }
            let mut bfs = Bfs::new(seed);
            bfs.run(graph, fw);
            for (v, m) in member.iter_mut().enumerate() {
                if let Some(d) = bfs.depth(v as VertexId) {
                    if d <= 2 {
                        *m = true;
                    }
                }
            }
        }

        // Stage 3: degree scoring of members (atomic adds on a score
        // property).
        let access = GraphAccess::new(fw, graph);
        let mut score = PropertyArray::new(fw, n, 0u64);
        let threads = fw.threads();
        for v in 0..n as u32 {
            fw.spread(v as usize);
            {
                fw.branch(false, false);
                if !member[v as usize] {
                    continue;
                }
                access.degree(fw, v);
                access.for_each_neighbor(fw, v, |fw, nb, _| {
                    fw.compute(2);
                    score.fetch_add(fw, nb as usize, 1);
                });
            }
        }
        fw.barrier();

        // Non-graph epilogue: report generation / case handling — plain
        // compute plus meta traffic, diluting the graph-side speedup.
        let epilogue = (n as u32).saturating_mul(6);
        for t in 0..threads {
            fw.on_thread(t);
            fw.compute(epilogue / threads as u32);
        }
        fw.barrier();

        // Collect results.
        let mut ring_labels: Vec<u64> = self
            .seeds
            .iter()
            .filter(|&&s| (s as usize) < n)
            .map(|&s| labels[s as usize])
            .collect();
        ring_labels.sort_unstable();
        ring_labels.dedup();
        self.rings = ring_labels.len();
        self.suspicious = (0..n as VertexId)
            .filter(|&v| member[v as usize] && score.peek(v as usize) > 0)
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CollectTrace;
    use graphpim_graph::GraphBuilder;

    #[test]
    fn finds_ring_around_seed() {
        // Ring: 0-1-2-3-0, plus an unrelated component 4-5.
        let g = GraphBuilder::new(6)
            .undirected()
            .edges(vec![(0, 1), (1, 2), (2, 3), (3, 0), (4, 5)])
            .build();
        let mut sink = CollectTrace::default();
        let mut fd = FraudDetection::new(vec![0]);
        let mut fw = Framework::new(2, &mut sink);
        fd.run(&g, &mut fw);
        fw.finish();
        assert_eq!(fd.rings(), 1);
        assert!(fd.suspicious().contains(&1));
        assert!(fd.suspicious().contains(&3));
        assert!(!fd.suspicious().contains(&5));
    }

    #[test]
    fn two_seeds_two_rings() {
        let g = GraphBuilder::new(6)
            .undirected()
            .edges(vec![(0, 1), (1, 2), (3, 4), (4, 5)])
            .build();
        let mut sink = CollectTrace::default();
        let mut fd = FraudDetection::new(vec![0, 3]);
        let mut fw = Framework::new(2, &mut sink);
        fd.run(&g, &mut fw);
        fw.finish();
        assert_eq!(fd.rings(), 2);
    }

    #[test]
    fn out_of_range_seed_ignored() {
        let g = GraphBuilder::new(3).undirected().edge(0, 1).build();
        let mut sink = CollectTrace::default();
        let mut fd = FraudDetection::new(vec![99]);
        let mut fw = Framework::new(1, &mut sink);
        fd.run(&g, &mut fw);
        fw.finish();
        assert_eq!(fd.rings(), 0);
        assert!(fd.suspicious().is_empty());
    }

    #[test]
    fn runs_on_bitcoin_like_graph() {
        let g = super::super::bitcoin_like(9, 2);
        let mut sink = CollectTrace::default();
        let mut fd = FraudDetection::new(vec![1, 2, 3]);
        let mut fw = Framework::new(4, &mut sink);
        fd.run(&g, &mut fw);
        fw.finish();
        assert!(sink.total_ops() > 1000);
    }
}
