//! Real-world applications (Section IV-B5).
//!
//! The paper evaluates two production-style applications too large for
//! cycle-level simulation — financial fraud detection on a 10 GB bitcoin
//! transaction graph and an item-to-item recommender on a 5 GB twitter
//! graph — by collecting hardware counters on a Xeon and feeding an
//! analytical model. We reproduce the pipeline: these applications run on
//! scaled-down RMAT stand-ins (DESIGN.md documents the substitution), the
//! simulator collects the counter inputs, and `graphpim::analytic` produces
//! Figure 17 / Table VIII.

mod fraud;
mod recommender;

pub use fraud::FraudDetection;
pub use recommender::Recommender;

use graphpim_graph::generate::GraphSpec;
use graphpim_graph::CsrGraph;

/// Builds a bitcoin-like transaction graph (heavy-tailed RMAT).
///
/// `scale` is log2 of the vertex count; the paper's graph has 71.7 M
/// vertices and 181.8 M edges (average degree ≈ 2.5); the default
/// experiment scale keeps the same degree profile at tractable size.
pub fn bitcoin_like(scale: u32, seed: u64) -> CsrGraph {
    GraphSpec::rmat(scale, 3).seed(seed).build()
}

/// Builds a twitter-like follower graph (denser RMAT; the paper's graph has
/// 11 M vertices and 85 M edges, average degree ≈ 7.7).
pub fn twitter_like(scale: u32, seed: u64) -> CsrGraph {
    GraphSpec::rmat(scale, 8).seed(seed).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitcoin_sparser_than_twitter() {
        let b = bitcoin_like(10, 1);
        let t = twitter_like(10, 1);
        let bd = b.edge_count() as f64 / b.vertex_count() as f64;
        let td = t.edge_count() as f64 / t.vertex_count() as f64;
        assert!(td > bd, "twitter degree {td} vs bitcoin {bd}");
    }
}
