//! Property and meta-data arrays.
//!
//! A [`PropertyArray`] is the framework-managed, per-vertex property storage
//! the paper identifies as *the* offloading target: it is allocated through
//! [`super::Framework::pmr_malloc`], so its addresses fall in the PIM memory
//! region, and all synchronized updates go through atomic methods that map
//! one-to-one onto HMC commands (Table II). A [`MetaArray`] is ordinary
//! cache-friendly storage (frontier queues, per-thread locals).

use super::Framework;
use graphpim_sim::hmc::HmcAtomicOp;
use graphpim_sim::mem::addr::Addr;

/// Property element spacing: one cache line per vertex property object.
///
/// GraphBIG-style frameworks store per-vertex properties inside scattered,
/// heap-allocated vertex objects, so each property access touches its own
/// line (this is what produces the paper's >80% candidate miss rates and
/// the ~900 MB LDBC-1M footprint). The atomic operand within the object is
/// still 8/16 bytes, matching the HMC command sizes.
const STRIDE: u64 = 64;

/// Meta-data element spacing: dense 8-byte slots (queues and locals are
/// packed arrays, which is why they are cache friendly).
const META_STRIDE: u64 = 8;

/// A per-vertex property array living in the PIM memory region.
#[derive(Debug, Clone)]
pub struct PropertyArray<T> {
    base: Addr,
    data: Vec<T>,
}

impl<T: Copy> PropertyArray<T> {
    /// Allocates a property array of `len` elements initialized to `init`.
    pub fn new(fw: &mut Framework<'_>, len: usize, init: T) -> Self {
        let base = fw.pmr_malloc(len as u64 * STRIDE);
        PropertyArray {
            base,
            data: vec![init; len],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Address of element `i`.
    pub fn addr(&self, i: usize) -> Addr {
        self.base + i as u64 * STRIDE
    }

    /// Traced read of element `i`. `dep` marks the load as
    /// address-dependent on the previous op (pointer chasing).
    pub fn get(&self, fw: &mut Framework<'_>, i: usize, dep: bool) -> T {
        fw.load(self.addr(i), dep);
        self.data[i]
    }

    /// Traced unsynchronized write of element `i`.
    pub fn set(&mut self, fw: &mut Framework<'_>, i: usize, value: T) {
        fw.store(self.addr(i));
        self.data[i] = value;
    }

    /// Untraced read — for result extraction and tests only.
    pub fn peek(&self, i: usize) -> T {
        self.data[i]
    }

    /// Untraced write — for initialization outside the measured region.
    pub fn poke(&mut self, i: usize, value: T) {
        self.data[i] = value;
    }

    /// Untraced view of the whole array.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

impl PropertyArray<u64> {
    /// Traced compare-and-swap: maps to the host `lock cmpxchg`, i.e. HMC
    /// `CAS if equal` (Table II). Returns whether the swap happened.
    pub fn cas(&mut self, fw: &mut Framework<'_>, i: usize, expected: u64, new: u64) -> bool {
        self.cas_fetch(fw, i, expected, new).0
    }

    /// Traced compare-and-swap returning `(succeeded, original value)` —
    /// both `lock cmpxchg` and the HMC command return the original data,
    /// which lock-free graph code uses to avoid a separate read
    /// (Section II-D: *all* neighbor property accesses go through CAS).
    pub fn cas_fetch(
        &mut self,
        fw: &mut Framework<'_>,
        i: usize,
        expected: u64,
        new: u64,
    ) -> (bool, u64) {
        fw.atomic(self.addr(i), HmcAtomicOp::CasIfEqual8, true);
        let original = self.data[i];
        if original == expected {
            self.data[i] = new;
            (true, original)
        } else {
            (false, original)
        }
    }

    /// Traced atomic minimum via a CAS retry loop (the compiler idiom the
    /// POU can also translate to `CAS if less`). Returns
    /// `(lowered, original value)`; emits one atomic per retry.
    pub fn cas_min(&mut self, fw: &mut Framework<'_>, i: usize, value: u64) -> (bool, u64) {
        // Sequential emulation never races, so one attempt decides; the
        // emitted trace still carries the full CAS + dependent-branch
        // pattern of the retry loop.
        let original = self.data[i];
        fw.atomic(self.addr(i), HmcAtomicOp::CasIfEqual8, true);
        fw.branch(false, true);
        if value < original {
            self.data[i] = value;
            (true, original)
        } else {
            (false, original)
        }
    }

    /// Traced atomic minimum through the POU's instruction-block
    /// translation (Section III-B): the whole `load; cmp; lock cmpxchg`
    /// retry idiom is recognized and emitted as a single HMC
    /// `CAS if less` command. Semantics identical to
    /// [`PropertyArray::cas_min`]; the trace differs (one signed-compare
    /// command, no retry-loop branch).
    pub fn cas_min_translated(
        &mut self,
        fw: &mut Framework<'_>,
        i: usize,
        value: u64,
    ) -> (bool, u64) {
        let original = self.data[i];
        fw.atomic(self.addr(i), HmcAtomicOp::CasIfLess16, true);
        fw.branch(false, true);
        if (value as i64) < (original as i64) {
            self.data[i] = value;
            (true, original)
        } else {
            (false, original)
        }
    }

    /// Traced atomic add: maps to host `lock add`, i.e. HMC posted
    /// `Signed add` (Table II). Wrapping, like the hardware.
    pub fn fetch_add(&mut self, fw: &mut Framework<'_>, i: usize, delta: u64) {
        fw.atomic(self.addr(i), HmcAtomicOp::Add16, false);
        self.data[i] = self.data[i].wrapping_add(delta);
    }

    /// Traced atomic subtract: maps to host `lock sub`, i.e. a posted
    /// signed add of the negation (Table II, k-core row).
    pub fn fetch_sub(&mut self, fw: &mut Framework<'_>, i: usize, delta: u64) {
        fw.atomic(self.addr(i), HmcAtomicOp::Add16, false);
        self.data[i] = self.data[i].wrapping_sub(delta);
    }
}

impl PropertyArray<f64> {
    /// Traced atomic floating-point add — the paper's proposed HMC
    /// extension (Section III-C). On systems without the extension the POU
    /// refuses to offload this and it executes host-side.
    pub fn fp_add(&mut self, fw: &mut Framework<'_>, i: usize, delta: f64) {
        fw.atomic(self.addr(i), HmcAtomicOp::FpAdd64, false);
        self.data[i] += delta;
    }
}

/// Cache-friendly meta-data storage (frontiers, locals, task queues).
#[derive(Debug, Clone)]
pub struct MetaArray<T> {
    base: Addr,
    data: Vec<T>,
}

impl<T: Copy> MetaArray<T> {
    /// Allocates a meta array of `len` elements initialized to `init`.
    pub fn new(fw: &mut Framework<'_>, len: usize, init: T) -> Self {
        let base = fw.meta_malloc(len as u64 * META_STRIDE);
        MetaArray {
            base,
            data: vec![init; len],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Address of element `i`.
    pub fn addr(&self, i: usize) -> Addr {
        self.base + i as u64 * META_STRIDE
    }

    /// Traced read.
    pub fn get(&self, fw: &mut Framework<'_>, i: usize) -> T {
        fw.load(self.addr(i), false);
        self.data[i]
    }

    /// Traced write.
    pub fn set(&mut self, fw: &mut Framework<'_>, i: usize, value: T) {
        fw.store(self.addr(i));
        self.data[i] = value;
    }

    /// Untraced read.
    pub fn peek(&self, i: usize) -> T {
        self.data[i]
    }

    /// Untraced write.
    pub fn poke(&mut self, i: usize, value: T) {
        self.data[i] = value;
    }
}

/// A growable meta-region queue (frontier) with traced push/pop.
#[derive(Debug, Clone)]
pub struct MetaQueue {
    base: Addr,
    capacity: u64,
    items: Vec<u32>,
}

impl MetaQueue {
    /// Allocates a queue with room for `capacity` 8-byte entries.
    pub fn new(fw: &mut Framework<'_>, capacity: usize) -> Self {
        MetaQueue {
            base: fw.meta_malloc(capacity as u64 * META_STRIDE),
            capacity: capacity as u64,
            items: Vec::new(),
        }
    }

    /// Address of slot `i` (modulo the ring capacity).
    pub fn addr(&self, i: usize) -> Addr {
        self.base + (i as u64 % self.capacity.max(1)) * META_STRIDE
    }

    /// Traced push.
    pub fn push(&mut self, fw: &mut Framework<'_>, item: u32) {
        let slot = self.items.len() as u64 % self.capacity.max(1);
        fw.store(self.base + slot * META_STRIDE);
        self.items.push(item);
    }

    /// Current contents (untraced).
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drains all items, emitting one traced load per drained entry.
    pub fn drain(&mut self, fw: &mut Framework<'_>) -> Vec<u32> {
        for i in 0..self.items.len() as u64 {
            fw.load(self.base + (i % self.capacity.max(1)) * META_STRIDE, false);
        }
        std::mem::take(&mut self.items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CollectTrace;
    use graphpim_sim::mem::addr::Region;
    use graphpim_sim::trace::TraceOp;

    #[test]
    fn property_array_is_in_pmr() {
        let mut sink = CollectTrace::default();
        let mut fw = Framework::new(1, &mut sink);
        let p = PropertyArray::new(&mut fw, 10, 0u64);
        assert_eq!(Region::of(p.addr(0)), Region::Property);
        assert_eq!(p.addr(1) - p.addr(0), STRIDE);
        fw.finish();
    }

    #[test]
    fn get_emits_load_and_returns_value() {
        let mut sink = CollectTrace::default();
        {
            let mut fw = Framework::new(1, &mut sink);
            let mut p = PropertyArray::new(&mut fw, 4, 7u64);
            p.set(&mut fw, 2, 9);
            assert_eq!(p.get(&mut fw, 2, true), 9);
            assert_eq!(p.get(&mut fw, 0, false), 7);
            fw.finish();
        }
        let ops = sink.thread_ops(0);
        assert!(matches!(ops[0], TraceOp::Store { .. }));
        assert!(matches!(ops[1], TraceOp::Load { dep: true, .. }));
    }

    #[test]
    fn cas_success_and_failure_semantics() {
        let mut sink = CollectTrace::default();
        let mut fw = Framework::new(1, &mut sink);
        let mut p = PropertyArray::new(&mut fw, 2, 0u64);
        assert!(p.cas(&mut fw, 0, 0, 5));
        assert_eq!(p.peek(0), 5);
        assert!(!p.cas(&mut fw, 0, 0, 9));
        assert_eq!(p.peek(0), 5);
        fw.finish();
    }

    #[test]
    fn cas_emits_cas_if_equal() {
        let mut sink = CollectTrace::default();
        {
            let mut fw = Framework::new(1, &mut sink);
            let mut p = PropertyArray::new(&mut fw, 1, 0u64);
            p.cas(&mut fw, 0, 0, 1);
            fw.finish();
        }
        let ops = sink.thread_ops(0);
        assert!(matches!(
            ops[0],
            TraceOp::Atomic {
                op: HmcAtomicOp::CasIfEqual8,
                ..
            }
        ));
    }

    #[test]
    fn fetch_add_and_sub_wrap() {
        let mut sink = CollectTrace::default();
        let mut fw = Framework::new(1, &mut sink);
        let mut p = PropertyArray::new(&mut fw, 1, u64::MAX);
        p.fetch_add(&mut fw, 0, 1);
        assert_eq!(p.peek(0), 0);
        p.fetch_sub(&mut fw, 0, 1);
        assert_eq!(p.peek(0), u64::MAX);
        fw.finish();
    }

    #[test]
    fn fp_add_accumulates() {
        let mut sink = CollectTrace::default();
        let mut fw = Framework::new(1, &mut sink);
        let mut p = PropertyArray::new(&mut fw, 1, 0.0f64);
        p.fp_add(&mut fw, 0, 1.5);
        p.fp_add(&mut fw, 0, 2.5);
        assert_eq!(p.peek(0), 4.0);
        fw.finish();
    }

    #[test]
    fn cas_fetch_returns_original() {
        let mut sink = CollectTrace::default();
        let mut fw = Framework::new(1, &mut sink);
        let mut p = PropertyArray::new(&mut fw, 1, 7u64);
        let (ok, orig) = p.cas_fetch(&mut fw, 0, 7, 9);
        assert!(ok);
        assert_eq!(orig, 7);
        let (fail, orig2) = p.cas_fetch(&mut fw, 0, 7, 11);
        assert!(!fail);
        assert_eq!(orig2, 9);
        fw.finish();
    }

    #[test]
    fn cas_min_lowers_only() {
        let mut sink = CollectTrace::default();
        let mut fw = Framework::new(1, &mut sink);
        let mut p = PropertyArray::new(&mut fw, 1, 10u64);
        let (lowered, orig) = p.cas_min(&mut fw, 0, 5);
        assert!(lowered);
        assert_eq!(orig, 10);
        assert_eq!(p.peek(0), 5);
        let (no, _) = p.cas_min(&mut fw, 0, 8);
        assert!(!no);
        assert_eq!(p.peek(0), 5);
        fw.finish();
    }

    #[test]
    fn cas_min_translated_uses_signed_compare() {
        let mut sink = CollectTrace::default();
        let mut fw = Framework::new(1, &mut sink);
        let mut p = PropertyArray::new(&mut fw, 1, 10u64);
        let (lowered, _) = p.cas_min_translated(&mut fw, 0, 3);
        assert!(lowered);
        assert_eq!(p.peek(0), 3);
        fw.finish();
    }

    #[test]
    fn meta_array_is_in_meta_region() {
        let mut sink = CollectTrace::default();
        let mut fw = Framework::new(1, &mut sink);
        let m = MetaArray::new(&mut fw, 4, 0u64);
        assert_eq!(Region::of(m.addr(0)), Region::Meta);
        fw.finish();
    }

    #[test]
    fn queue_push_drain_round_trip() {
        let mut sink = CollectTrace::default();
        let mut fw = Framework::new(1, &mut sink);
        let mut q = MetaQueue::new(&mut fw, 8);
        q.push(&mut fw, 3);
        q.push(&mut fw, 4);
        assert_eq!(q.len(), 2);
        let items = q.drain(&mut fw);
        assert_eq!(items, vec![3, 4]);
        assert!(q.is_empty());
        fw.finish();
    }
}
