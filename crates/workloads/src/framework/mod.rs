//! The graph-framework layer.
//!
//! GraphBIG-style frameworks decouple user code from data management; the
//! only GraphPIM-specific change the paper requires is that the framework
//! allocate graph *property* storage through `pmr_malloc` so it lands in the
//! PIM memory region. [`Framework::pmr_malloc`] is exactly that allocator;
//! everything a kernel does through this API both performs the real
//! computation and records the instruction-level trace that the timing
//! substrate replays.

mod graph_access;
mod property;

pub use graph_access::GraphAccess;
pub use property::{MetaArray, MetaQueue, PropertyArray};

use graphpim_sim::hmc::HmcAtomicOp;
use graphpim_sim::mem::addr::{Addr, Region};
use graphpim_sim::trace::codec::{TraceEncoder, TraceWriter};
use graphpim_sim::trace::{Superstep, TraceEvent, TraceOp};

/// Receives trace batches as the framework produces them.
///
/// The system driver implements this to simulate streams online (keeping
/// memory bounded on large graphs); tests use [`CollectTrace`].
pub trait TraceConsumer {
    /// A batch of per-thread ops with **no** synchronization implied.
    fn chunk(&mut self, step: Superstep);
    /// A global barrier: all threads synchronize and in-flight PIM atomics
    /// must complete.
    fn barrier(&mut self);
}

/// A [`TraceConsumer`] that stores everything — for tests and inspection.
#[derive(Debug, Default)]
pub struct CollectTrace {
    /// Collected chunks, in emission order.
    pub chunks: Vec<Superstep>,
    /// Number of barriers observed.
    pub barriers: usize,
}

impl TraceConsumer for CollectTrace {
    fn chunk(&mut self, step: Superstep) {
        self.chunks.push(step);
    }

    fn barrier(&mut self) {
        self.barriers += 1;
    }
}

impl CollectTrace {
    /// All ops of all chunks of `thread`, flattened.
    pub fn thread_ops(&self, thread: usize) -> Vec<TraceOp> {
        self.chunks
            .iter()
            .flat_map(|c| c.threads.get(thread).into_iter().flatten())
            .copied()
            .collect()
    }

    /// Total ops across all threads.
    pub fn total_ops(&self) -> usize {
        self.chunks
            .iter()
            .map(|c| c.threads.iter().map(Vec::len).sum::<usize>())
            .sum()
    }
}

/// A [`TraceConsumer`] that keeps the full event stream *in order* —
/// chunks and barriers interleaved exactly as emitted. This is the
/// capture side of trace replay: the recorded sequence, fed back through
/// a timing driver's consumer methods, reproduces a live run bit for bit.
#[derive(Debug, Default)]
pub struct RecordEvents {
    /// The complete event stream, in emission order.
    pub events: Vec<TraceEvent>,
}

impl TraceConsumer for RecordEvents {
    fn chunk(&mut self, step: Superstep) {
        self.events.push(TraceEvent::Chunk(step));
    }

    fn barrier(&mut self) {
        self.events.push(TraceEvent::Barrier);
    }
}

/// A [`TraceConsumer`] that streams straight into the binary codec, so a
/// capture run never holds more than one chunk of trace in memory.
#[derive(Debug)]
pub struct EncodeTrace {
    encoder: TraceEncoder,
}

impl EncodeTrace {
    /// Starts an encoding capture for `threads` simulated threads. Must
    /// match the thread count of the [`Framework`] feeding it.
    pub fn new(threads: usize) -> Self {
        EncodeTrace {
            encoder: TraceEncoder::new(threads),
        }
    }

    /// Seals and returns the encoded trace bytes.
    pub fn finish(self) -> Vec<u8> {
        self.encoder.finish()
    }

    /// Events (chunks + barriers) captured so far.
    pub fn events(&self) -> u64 {
        self.encoder.events()
    }
}

impl TraceConsumer for EncodeTrace {
    fn chunk(&mut self, step: Superstep) {
        self.encoder.chunk(&step);
    }

    fn barrier(&mut self) {
        self.encoder.barrier();
    }
}

/// A [`TraceConsumer`] that streams each frame straight to an
/// [`std::io::Write`] sink through the codec's [`TraceWriter`] — the
/// capture side of the memory-lean path: trace bytes leave the process as
/// they are produced (typically into a `BufWriter<File>`), so a capture's
/// footprint is one chunk regardless of trace length.
///
/// [`TraceConsumer`] methods cannot fail, so the first sink error is
/// latched, subsequent frames are discarded, and [`StreamTrace::finish`]
/// surfaces the error — degraded to a recapture by the trace store, never
/// to a torn entry.
#[derive(Debug)]
pub struct StreamTrace<W: std::io::Write> {
    writer: Option<TraceWriter<W>>,
    error: Option<std::io::Error>,
}

impl<W: std::io::Write> StreamTrace<W> {
    /// Starts a streaming capture for `threads` simulated threads. Must
    /// match the thread count of the [`Framework`] feeding it.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error from writing the trace header.
    pub fn new(threads: usize, sink: W) -> std::io::Result<Self> {
        Ok(StreamTrace {
            writer: Some(TraceWriter::new(threads, sink)?),
            error: None,
        })
    }

    /// Events (chunks + barriers) accepted so far.
    pub fn events(&self) -> u64 {
        self.writer.as_ref().map_or(0, |w| w.events())
    }

    /// Seals the trace and returns the sink (unflushed).
    ///
    /// # Errors
    ///
    /// Returns the first error the sink reported — whether latched during
    /// capture or hit while writing the footer.
    pub fn finish(self) -> std::io::Result<W> {
        if let Some(error) = self.error {
            return Err(error);
        }
        self.writer
            .expect("writer present unless an error was latched")
            .finish()
    }
}

impl<W: std::io::Write> TraceConsumer for StreamTrace<W> {
    fn chunk(&mut self, step: Superstep) {
        if let Some(writer) = &mut self.writer {
            if let Err(e) = writer.chunk(&step) {
                self.error = Some(e);
                self.writer = None;
            }
        }
    }

    fn barrier(&mut self) {
        if let Some(writer) = &mut self.writer {
            if let Err(e) = writer.barrier() {
                self.error = Some(e);
                self.writer = None;
            }
        }
    }
}

/// Ops buffered per thread before a chunk is flushed to the consumer.
const CHUNK_LIMIT: usize = 1 << 16;

/// The framework: allocators, the active-thread cursor, and the recorder.
pub struct Framework<'a> {
    threads: usize,
    thread: usize,
    step: Superstep,
    buffered: usize,
    consumer: &'a mut dyn TraceConsumer,
    meta_cursor: u64,
    structure_cursor: u64,
    property_cursor: u64,
    atomics_emitted: u64,
    property_atomics: u64,
}

impl<'a> Framework<'a> {
    /// Creates a framework for `threads` simulated threads feeding
    /// `consumer`.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize, consumer: &'a mut dyn TraceConsumer) -> Self {
        assert!(threads > 0, "need at least one thread");
        Framework {
            threads,
            thread: 0,
            step: Superstep::new(threads),
            buffered: 0,
            consumer,
            meta_cursor: 64, // keep null distinct
            structure_cursor: 64,
            property_cursor: 64,
            atomics_emitted: 0,
            property_atomics: 0,
        }
    }

    /// Number of simulated threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Selects the thread subsequent emissions belong to.
    ///
    /// # Panics
    ///
    /// Panics if `t >= threads`.
    pub fn on_thread(&mut self, t: usize) {
        assert!(t < self.threads, "thread {t} out of range");
        self.thread = t;
    }

    /// Round-robin thread selection for data-parallel loops: item `index`
    /// belongs to thread `index % threads`.
    ///
    /// Kernels must emit work *interleaved* across threads (rather than one
    /// thread's whole portion at a time) so the streaming chunk boundaries
    /// cut every thread at the same point in logical time — the timing
    /// driver replays chunks in core-clock order and relies on this.
    pub fn spread(&mut self, index: usize) {
        self.thread = index % self.threads;
    }

    /// The customized property allocator of the paper: returns the base
    /// address of `bytes` bytes inside the PIM memory region.
    pub fn pmr_malloc(&mut self, bytes: u64) -> Addr {
        let base = Region::Property.addr(self.property_cursor);
        self.property_cursor += bytes.max(1).next_multiple_of(64);
        base
    }

    /// Allocates meta-data storage (task queues, per-thread locals).
    pub fn meta_malloc(&mut self, bytes: u64) -> Addr {
        let base = Region::Meta.addr(self.meta_cursor);
        self.meta_cursor += bytes.max(1).next_multiple_of(64);
        base
    }

    /// Allocates graph-structure storage (CSR arrays).
    pub fn structure_malloc(&mut self, bytes: u64) -> Addr {
        let base = Region::Structure.addr(self.structure_cursor);
        self.structure_cursor += bytes.max(1).next_multiple_of(64);
        base
    }

    /// Emits a raw trace op on the active thread.
    pub fn emit(&mut self, op: TraceOp) {
        if let TraceOp::Atomic { addr, .. } = op {
            self.atomics_emitted += 1;
            if Region::of(addr) == Region::Property {
                self.property_atomics += 1;
            }
        }
        self.step.threads[self.thread].push(op);
        self.buffered += 1;
        if self.step.threads[self.thread].len() >= CHUNK_LIMIT {
            self.flush();
        }
    }

    /// Emits `n` ALU instructions (merged with a preceding compute op).
    pub fn compute(&mut self, n: u32) {
        if n == 0 {
            return;
        }
        if let Some(TraceOp::Compute(prev)) = self.step.threads[self.thread].last_mut() {
            *prev = prev.saturating_add(n);
            return;
        }
        self.emit(TraceOp::Compute(n));
    }

    /// Emits a load.
    pub fn load(&mut self, addr: Addr, dep: bool) {
        self.emit(TraceOp::Load { addr, dep });
    }

    /// Emits a store.
    pub fn store(&mut self, addr: Addr) {
        self.emit(TraceOp::Store { addr });
    }

    /// Emits an atomic mapped to HMC command `op` (Table II).
    pub fn atomic(&mut self, addr: Addr, op: HmcAtomicOp, dep: bool) {
        self.emit(TraceOp::Atomic { addr, op, dep });
    }

    /// Emits a conditional branch.
    pub fn branch(&mut self, predictable: bool, dep: bool) {
        self.emit(TraceOp::Branch { predictable, dep });
    }

    /// Global synchronization: flushes buffered ops and signals a barrier.
    pub fn barrier(&mut self) {
        self.flush();
        self.consumer.barrier();
    }

    /// Flushes any buffered ops and consumes the framework. Kernels should
    /// end with a [`Framework::barrier`]; this catches stragglers.
    pub fn finish(mut self) {
        self.flush();
    }

    /// Atomics emitted so far, and how many target the property region
    /// (the offload candidates).
    pub fn atomic_counts(&self) -> (u64, u64) {
        (self.atomics_emitted, self.property_atomics)
    }

    fn flush(&mut self) {
        if self.buffered == 0 {
            return;
        }
        let step = std::mem::replace(&mut self.step, Superstep::new(self.threads));
        self.buffered = 0;
        self.consumer.chunk(step);
    }
}

impl std::fmt::Debug for Framework<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Framework")
            .field("threads", &self.threads)
            .field("thread", &self.thread)
            .field("buffered", &self.buffered)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmr_malloc_lands_in_property_region() {
        let mut sink = CollectTrace::default();
        let mut fw = Framework::new(1, &mut sink);
        let a = fw.pmr_malloc(100);
        let b = fw.pmr_malloc(100);
        assert_eq!(Region::of(a), Region::Property);
        assert_eq!(Region::of(b), Region::Property);
        assert!(b > a, "allocations must not overlap");
        assert!(b - a >= 100);
    }

    #[test]
    fn allocators_use_disjoint_regions() {
        let mut sink = CollectTrace::default();
        let mut fw = Framework::new(1, &mut sink);
        assert_eq!(Region::of(fw.meta_malloc(8)), Region::Meta);
        assert_eq!(Region::of(fw.structure_malloc(8)), Region::Structure);
        assert_eq!(Region::of(fw.pmr_malloc(8)), Region::Property);
    }

    #[test]
    fn ops_route_to_active_thread() {
        let mut sink = CollectTrace::default();
        {
            let mut fw = Framework::new(2, &mut sink);
            fw.on_thread(1);
            fw.load(0x10, false);
            fw.on_thread(0);
            fw.store(0x20);
            fw.finish();
        }
        assert_eq!(sink.thread_ops(1).len(), 1);
        assert_eq!(sink.thread_ops(0).len(), 1);
    }

    #[test]
    fn compute_ops_coalesce() {
        let mut sink = CollectTrace::default();
        {
            let mut fw = Framework::new(1, &mut sink);
            fw.compute(3);
            fw.compute(4);
            fw.finish();
        }
        let ops = sink.thread_ops(0);
        assert_eq!(ops, vec![TraceOp::Compute(7)]);
    }

    #[test]
    fn barrier_flushes_and_signals() {
        let mut sink = CollectTrace::default();
        {
            let mut fw = Framework::new(1, &mut sink);
            fw.load(0x10, false);
            fw.barrier();
        }
        assert_eq!(sink.barriers, 1);
        assert_eq!(sink.total_ops(), 1);
    }

    #[test]
    fn chunking_splits_large_streams() {
        let mut sink = CollectTrace::default();
        {
            let mut fw = Framework::new(1, &mut sink);
            for i in 0..(CHUNK_LIMIT + 10) {
                fw.load(i as u64 * 8, false);
            }
            fw.finish();
        }
        assert!(sink.chunks.len() >= 2, "expected chunked flushes");
        assert_eq!(sink.total_ops(), CHUNK_LIMIT + 10);
    }

    #[test]
    fn atomic_counts_distinguish_property() {
        let mut sink = CollectTrace::default();
        let mut fw = Framework::new(1, &mut sink);
        let prop = fw.pmr_malloc(64);
        let meta = fw.meta_malloc(64);
        fw.atomic(prop, HmcAtomicOp::Add16, false);
        fw.atomic(meta, HmcAtomicOp::Add16, false);
        assert_eq!(fw.atomic_counts(), (2, 1));
        fw.finish();
    }

    #[test]
    fn record_events_preserves_order() {
        let mut sink = RecordEvents::default();
        {
            let mut fw = Framework::new(2, &mut sink);
            fw.load(0x10, false);
            fw.barrier();
            fw.on_thread(1);
            fw.store(0x20);
            fw.barrier();
        }
        assert_eq!(sink.events.len(), 4);
        assert!(matches!(sink.events[0], TraceEvent::Chunk(_)));
        assert!(matches!(sink.events[1], TraceEvent::Barrier));
        assert!(matches!(sink.events[2], TraceEvent::Chunk(_)));
        assert!(matches!(sink.events[3], TraceEvent::Barrier));
    }

    #[test]
    fn encode_trace_matches_recorded_events() {
        fn drive(fw: &mut Framework<'_>) {
            let prop = fw.pmr_malloc(256);
            for i in 0..100usize {
                fw.spread(i);
                fw.load(prop + i as u64 * 8, false);
                fw.atomic(prop + i as u64 * 8, HmcAtomicOp::Add16, true);
                fw.branch(false, true);
            }
            fw.barrier();
        }
        let mut recorded = RecordEvents::default();
        {
            let mut fw = Framework::new(2, &mut recorded);
            drive(&mut fw);
        }
        let mut encoded = EncodeTrace::new(2);
        {
            let mut fw = Framework::new(2, &mut encoded);
            drive(&mut fw);
        }
        let bytes = encoded.finish();
        let (threads, events) = graphpim_sim::trace::codec::decode(&bytes).expect("valid trace");
        assert_eq!(threads, 2);
        assert_eq!(events, recorded.events);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_thread_panics() {
        let mut sink = CollectTrace::default();
        let mut fw = Framework::new(1, &mut sink);
        fw.on_thread(3);
    }

    #[test]
    fn stream_trace_matches_encode_trace_bytes() {
        fn drive(fw: &mut Framework<'_>) {
            let prop = fw.pmr_malloc(256);
            for i in 0..200usize {
                fw.spread(i);
                fw.load(prop + i as u64 * 8, false);
                fw.atomic(prop + i as u64 * 8, HmcAtomicOp::Add16, true);
            }
            fw.barrier();
        }
        let mut encoded = EncodeTrace::new(2);
        {
            let mut fw = Framework::new(2, &mut encoded);
            drive(&mut fw);
        }
        let mut streamed = StreamTrace::new(2, Vec::new()).unwrap();
        {
            let mut fw = Framework::new(2, &mut streamed);
            drive(&mut fw);
        }
        assert_eq!(streamed.finish().unwrap(), encoded.finish());
    }

    #[test]
    fn stream_trace_latches_sink_errors() {
        // Header fits, first chunk does not: the error must be latched by
        // the infallible consumer methods and surfaced by finish().
        struct Tiny(usize);
        impl std::io::Write for Tiny {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.0 + buf.len() > 16 {
                    return Err(std::io::Error::other("disk full"));
                }
                self.0 += buf.len();
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut streamed = StreamTrace::new(1, Tiny(0)).unwrap();
        {
            let mut fw = Framework::new(1, &mut streamed);
            for i in 0..64 {
                fw.load(i * 8, false);
            }
            fw.barrier();
        }
        assert!(streamed.finish().is_err());
    }
}
