//! Traced access to the graph-structure component.
//!
//! CSR offsets and adjacency live in the *structure* region (Section II-C):
//! streaming through a neighbor list has good spatial locality, which the
//! address assignment here preserves (consecutive neighbors are consecutive
//! 4-byte words, 16 per cache line).

use super::Framework;
use graphpim_graph::{CsrGraph, VertexId};
use graphpim_sim::mem::addr::Addr;

/// Wraps a [`CsrGraph`] with structure-region addresses and traced readers.
#[derive(Debug)]
pub struct GraphAccess<'g> {
    graph: &'g CsrGraph,
    offsets_base: Addr,
    neighbors_base: Addr,
    weights_base: Addr,
    vertex_table_base: Addr,
}

/// Bytes per vertex-table entry (the framework's id → vertex-object map).
const VERTEX_ENTRY_BYTES: u64 = 8;

/// Instructions of framework bookkeeping per visited neighbor (iterator
/// advance, id translation, bounds checks — GraphBIG-style frameworks
/// spend tens of instructions per edge outside the property update).
const NEIGHBOR_OVERHEAD_INSTRS: u32 = 5;

impl<'g> GraphAccess<'g> {
    /// Registers `graph` with the framework, reserving structure-region
    /// address space for its arrays.
    pub fn new(fw: &mut Framework<'_>, graph: &'g CsrGraph) -> Self {
        let offsets_base = fw.structure_malloc((graph.vertex_count() as u64 + 1) * 8);
        let neighbors_base = fw.structure_malloc(graph.edge_count() as u64 * 4);
        let weights_base = fw.structure_malloc(graph.edge_count() as u64 * 4);
        let vertex_table_base =
            fw.structure_malloc((graph.vertex_count() as u64 + 1) * VERTEX_ENTRY_BYTES);
        GraphAccess {
            graph,
            offsets_base,
            neighbors_base,
            weights_base,
            vertex_table_base,
        }
    }

    /// The wrapped graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Traced out-degree read (one offsets-array load; the second offset
    /// shares the cache line often enough that real code does one load).
    pub fn degree(&self, fw: &mut Framework<'_>, v: VertexId) -> usize {
        fw.load(self.offsets_base + v as u64 * 8, false);
        self.graph.out_degree(v)
    }

    /// Iterates `v`'s neighbors. Per neighbor this emits the streaming
    /// adjacency read, the framework's id → vertex-object table lookup
    /// (irregular, like the property itself, but *structure* data that
    /// stays cacheable under every configuration), and the per-edge
    /// bookkeeping instructions, then calls `visit(fw, neighbor,
    /// csr_index)`.
    pub fn for_each_neighbor<F>(&self, fw: &mut Framework<'_>, v: VertexId, mut visit: F)
    where
        F: FnMut(&mut Framework<'_>, VertexId, u64),
    {
        let range = self.graph.edge_range(v);
        for (&n, e) in self.graph.neighbors(v).iter().zip(range) {
            fw.load(self.neighbors_base + e * 4, false);
            // Vertex-object lookup: address depends on the neighbor id.
            fw.load(self.vertex_table_base + n as u64 * VERTEX_ENTRY_BYTES, true);
            fw.compute(NEIGHBOR_OVERHEAD_INSTRS);
            visit(fw, n, e);
        }
    }

    /// Traced weight read for CSR index `e` (1 if unweighted).
    pub fn weight(&self, fw: &mut Framework<'_>, e: u64) -> u32 {
        fw.load(self.weights_base + e * 4, false);
        self.graph.weight_at(e)
    }

    /// Address of the `i`-th entry of `v`'s adjacency slice — for kernels
    /// that walk neighbor lists with their own loop structure (e.g. the
    /// merge-intersection of triangle counting).
    pub fn neighbor_addr(&self, v: VertexId, i: usize) -> Addr {
        self.neighbors_base + (self.graph.edge_range(v).start + i as u64) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CollectTrace;
    use graphpim_graph::GraphBuilder;
    use graphpim_sim::mem::addr::Region;
    use graphpim_sim::trace::TraceOp;

    fn graph() -> CsrGraph {
        GraphBuilder::new(3)
            .edge(0, 1)
            .edge(0, 2)
            .edge(1, 2)
            .build()
    }

    #[test]
    fn structure_loads_in_structure_region() {
        let g = graph();
        let mut sink = CollectTrace::default();
        {
            let mut fw = Framework::new(1, &mut sink);
            let ga = GraphAccess::new(&mut fw, &g);
            ga.degree(&mut fw, 0);
            fw.finish();
        }
        let ops = sink.thread_ops(0);
        match ops[0] {
            TraceOp::Load { addr, .. } => assert_eq!(Region::of(addr), Region::Structure),
            ref other => panic!("expected load, got {other:?}"),
        }
    }

    #[test]
    fn neighbor_walk_visits_all_and_emits_loads() {
        let g = graph();
        let mut sink = CollectTrace::default();
        let mut seen = Vec::new();
        {
            let mut fw = Framework::new(1, &mut sink);
            let ga = GraphAccess::new(&mut fw, &g);
            ga.for_each_neighbor(&mut fw, 0, |_, n, _| seen.push(n));
            fw.finish();
        }
        assert_eq!(seen, vec![1, 2]);
        // Per neighbor: adjacency load + vertex-table load + bookkeeping.
        assert_eq!(sink.total_ops(), 6);
    }

    #[test]
    fn consecutive_neighbors_share_lines() {
        let g = GraphBuilder::new(40).edges((1..40).map(|i| (0, i))).build();
        let mut sink = CollectTrace::default();
        let mut addrs = Vec::new();
        {
            let mut fw = Framework::new(1, &mut sink);
            let ga = GraphAccess::new(&mut fw, &g);
            ga.for_each_neighbor(&mut fw, 0, |_, _, _| {});
            fw.finish();
        }
        for op in sink.thread_ops(0) {
            if let TraceOp::Load { addr, dep } = op {
                if !dep {
                    // Adjacency stream (the vertex-table lookups are the
                    // dep-marked loads).
                    addrs.push(addr);
                }
            }
        }
        // 39 adjacency loads touch only ceil(39*4/64)+1 = <=4 lines.
        let mut lines: Vec<u64> = addrs.iter().map(|a| a / 64).collect();
        lines.dedup();
        assert!(lines.len() <= 4, "lines: {}", lines.len());
    }

    #[test]
    fn weight_read_traced() {
        let g = GraphBuilder::new(2).weighted_edge(0, 1, 5).build();
        let mut sink = CollectTrace::default();
        let mut fw = Framework::new(1, &mut sink);
        let ga = GraphAccess::new(&mut fw, &g);
        assert_eq!(ga.weight(&mut fw, 0), 5);
        fw.finish();
    }
}
