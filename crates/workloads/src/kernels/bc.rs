//! Betweenness centrality (Brandes' algorithm, sampled sources).
//!
//! Two phases per source: a forward BFS counting shortest paths (`sigma`,
//! updated with integer atomic adds; depth claimed by CAS) and a backward
//! dependency accumulation updating centrality with atomic floating-point
//! adds — which require the paper's FP extension to offload (Table III).
//! The backward phase leans on thread-local accumulators, the data locality
//! of which limits GraphPIM's benefit for BC (Section IV-B1).

use super::{Applicability, Category, Kernel, OffloadTarget};
use crate::framework::{Framework, GraphAccess, MetaArray, PropertyArray};
use graphpim_graph::{CsrGraph, VertexId};

/// Brandes betweenness centrality over sampled sources.
#[derive(Debug)]
pub struct Bc {
    sources: usize,
    seed: u64,
    centrality: Vec<f64>,
    chosen_sources: Vec<VertexId>,
}

impl Bc {
    /// BC accumulated over `sources` deterministic pseudo-random sources.
    pub fn new(sources: usize, seed: u64) -> Self {
        Bc {
            sources,
            seed,
            centrality: Vec::new(),
            chosen_sources: Vec::new(),
        }
    }

    /// Centrality scores after [`Kernel::run`].
    pub fn centrality(&self) -> &[f64] {
        &self.centrality
    }

    /// The sources the run actually used.
    pub fn sources(&self) -> &[VertexId] {
        &self.chosen_sources
    }
}

impl Kernel for Bc {
    fn name(&self) -> &'static str {
        "BC"
    }

    fn category(&self) -> Category {
        Category::GraphTraversal
    }

    fn applicability(&self) -> Applicability {
        Applicability::WithFpExtension
    }

    fn offload_target(&self) -> Option<OffloadTarget> {
        // Missing operation: floating-point add (Table III).
        None
    }

    fn run(&mut self, graph: &CsrGraph, fw: &mut Framework<'_>) {
        let n = graph.vertex_count();
        let access = GraphAccess::new(fw, graph);
        let mut centrality = PropertyArray::new(fw, n.max(1), 0.0f64);
        if n == 0 {
            self.centrality = Vec::new();
            fw.barrier();
            return;
        }
        // Deterministic source selection (prefer non-isolated vertices).
        let mut pick = graphpim_graph::generate::SplitMix64::new(self.seed);
        self.chosen_sources.clear();
        let mut guard = 0;
        while self.chosen_sources.len() < self.sources && guard < 32 * self.sources + 32 {
            guard += 1;
            let v = pick.next_below(n as u64) as VertexId;
            if graph.out_degree(v) > 0 && !self.chosen_sources.contains(&v) {
                self.chosen_sources.push(v);
            }
        }

        let threads = fw.threads();
        for &s in &self.chosen_sources.clone() {
            // Forward phase: level-synchronous BFS with path counts.
            let mut sigma = PropertyArray::new(fw, n, 0u64);
            let mut dist = PropertyArray::new(fw, n, u64::MAX);
            sigma.poke(s as usize, 1);
            dist.poke(s as usize, 0);
            let mut levels: Vec<Vec<VertexId>> = vec![vec![s]];
            loop {
                let frontier = levels.last().expect("at least the root").clone();
                if frontier.is_empty() {
                    levels.pop();
                    break;
                }
                let depth = (levels.len() - 1) as u64;
                let mut next = Vec::new();
                {
                    for (i, &v) in frontier.iter().enumerate() {
                        fw.spread(i);
                        fw.compute(6);
                        let sv = sigma.get(fw, v as usize, false);
                        access.degree(fw, v);
                        access.for_each_neighbor(fw, v, |fw, nb, _| {
                            fw.compute(3);
                            // Claim attempt: the CAS is the visited check;
                            // the returned original is the neighbor depth.
                            let (won, _) = dist.cas_fetch(fw, nb as usize, u64::MAX, depth + 1);
                            fw.branch(false, true);
                            if won {
                                next.push(nb);
                            }
                            if dist.peek(nb as usize) == depth + 1 {
                                // Path-count accumulation: integer atomic.
                                sigma.fetch_add(fw, nb as usize, sv);
                            }
                        });
                    }
                }
                fw.barrier();
                levels.push(next);
            }

            // Backward phase: dependency accumulation, deepest level first.
            let mut delta = PropertyArray::new(fw, n, 0.0f64);
            // Thread-local accumulator state (the locality the paper calls
            // out for BC), one per thread.
            let mut locals: Vec<MetaArray<u64>> =
                (0..threads).map(|_| MetaArray::new(fw, 8, 0u64)).collect();
            for level in levels.iter().rev() {
                {
                    for (i, &v) in level.iter().enumerate() {
                        fw.spread(i);
                        let local = &mut locals[i % threads];
                        let dv = dist.peek(v as usize);
                        let sv = sigma.get(fw, v as usize, false) as f64;
                        let mut acc = 0.0f64;
                        local.set(fw, 0, 0);
                        access.for_each_neighbor(fw, v, |fw, w, _| {
                            let dw = dist.get(fw, w as usize, true);
                            fw.branch(false, true);
                            if dw == dv + 1 {
                                let sw = sigma.get(fw, w as usize, true) as f64;
                                let deltaw = delta.get(fw, w as usize, true);
                                // Heavy thread-local numeric work.
                                fw.compute(6);
                                local.get(fw, 0);
                                local.set(fw, 1, 0);
                                if sw > 0.0 {
                                    acc += sv / sw * (1.0 + deltaw);
                                }
                            }
                        });
                        delta.set(fw, v as usize, acc);
                        if v != s {
                            // FP atomic on the shared centrality property.
                            centrality.fp_add(fw, v as usize, acc);
                        }
                    }
                }
                fw.barrier();
            }
        }
        self.centrality = centrality.as_slice().to_vec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CollectTrace;
    use crate::kernels::reference;
    use graphpim_graph::generate::GraphSpec;
    use graphpim_graph::GraphBuilder;

    fn run_bc(graph: &CsrGraph, sources: usize, threads: usize) -> Bc {
        let mut sink = CollectTrace::default();
        let mut bc = Bc::new(sources, 7);
        let mut fw = Framework::new(threads, &mut sink);
        bc.run(graph, &mut fw);
        fw.finish();
        bc
    }

    #[test]
    fn matches_reference_on_small_graph() {
        let g = GraphBuilder::new(6)
            .undirected()
            .edges(vec![(0, 1), (1, 2), (2, 3), (3, 4), (2, 5)])
            .build();
        let bc = run_bc(&g, 4, 2);
        let oracle = reference::betweenness(&g, bc.sources());
        for (v, &want) in oracle.iter().enumerate() {
            assert!(
                (bc.centrality()[v] - want).abs() < 1e-9,
                "vertex {v}: {} vs {}",
                bc.centrality()[v],
                want
            );
        }
    }

    #[test]
    fn matches_reference_on_random_graph() {
        let g = GraphSpec::uniform(60, 300).seed(31).build();
        let bc = run_bc(&g, 3, 4);
        let oracle = reference::betweenness(&g, bc.sources());
        for (v, &want) in oracle.iter().enumerate() {
            assert!(
                (bc.centrality()[v] - want).abs() < 1e-6,
                "vertex {v}: {} vs {}",
                bc.centrality()[v],
                want
            );
        }
    }

    #[test]
    fn bridge_vertex_has_high_centrality() {
        // Two stars joined through vertex 4.
        let g = GraphBuilder::new(9)
            .undirected()
            .edges(vec![
                (0, 4),
                (1, 4),
                (2, 4),
                (3, 4),
                (4, 5),
                (4, 6),
                (4, 7),
                (4, 8),
            ])
            .build();
        let bc = run_bc(&g, 6, 2);
        let max_other = (0..9)
            .filter(|&v| v != 4)
            .map(|v| bc.centrality()[v])
            .fold(0.0f64, f64::max);
        assert!(bc.centrality()[4] > max_other);
    }

    #[test]
    fn sources_are_deterministic() {
        let g = GraphSpec::uniform(50, 200).seed(1).build();
        let a = run_bc(&g, 3, 2);
        let b = run_bc(&g, 3, 2);
        assert_eq!(a.sources(), b.sources());
        assert_eq!(a.centrality(), b.centrality());
    }
}
