//! PageRank.
//!
//! Push-style synchronous PageRank: each iteration every vertex scatters its
//! damped rank share to its out-neighbors with an atomic floating-point add
//! on the target's next-rank property. FP add is *not* in HMC 2.0 — this is
//! the workload motivating the paper's proposed FP extension (Section
//! III-C); with the extension it becomes the biggest GraphPIM winner
//! (2.4× in Figure 7).

use super::{Applicability, Category, Kernel, OffloadTarget};
use crate::framework::{Framework, GraphAccess, PropertyArray};
use graphpim_graph::CsrGraph;

/// Damping factor used by the kernel and its oracle.
pub const DAMPING: f64 = 0.85;

/// Push-style PageRank.
#[derive(Debug)]
pub struct PRank {
    iterations: usize,
    ranks: Vec<f64>,
}

impl PRank {
    /// PageRank with the given number of synchronous iterations.
    pub fn new(iterations: usize) -> Self {
        PRank {
            iterations,
            ranks: Vec::new(),
        }
    }

    /// Final ranks.
    pub fn ranks(&self) -> &[f64] {
        &self.ranks
    }
}

impl Kernel for PRank {
    fn name(&self) -> &'static str {
        "PRank"
    }

    fn category(&self) -> Category {
        Category::GraphTraversal
    }

    fn applicability(&self) -> Applicability {
        Applicability::WithFpExtension
    }

    fn offload_target(&self) -> Option<OffloadTarget> {
        // Not a Table II row: the required PIM-Atomic (FP add) is missing
        // from HMC 2.0 (Table III).
        None
    }

    fn run(&mut self, graph: &CsrGraph, fw: &mut Framework<'_>) {
        let n = graph.vertex_count();
        let access = GraphAccess::new(fw, graph);
        let init = if n == 0 { 0.0 } else { 1.0 / n as f64 };
        let mut rank = PropertyArray::new(fw, n.max(1), init);
        let mut next = PropertyArray::new(fw, n.max(1), 0.0f64);
        let base = if n == 0 {
            0.0
        } else {
            (1.0 - DAMPING) / n as f64
        };

        for _ in 0..self.iterations {
            for v in 0..n {
                next.poke(v, base);
            }
            // Scatter phase.
            for v in 0..n as u32 {
                fw.spread(v as usize);
                {
                    let rv = rank.get(fw, v as usize, false);
                    let deg = access.degree(fw, v);
                    fw.branch(true, false);
                    if deg == 0 {
                        continue;
                    }
                    fw.compute(8); // share = DAMPING * rv / deg + loop overhead
                    let share = DAMPING * rv / deg as f64;
                    access.for_each_neighbor(fw, v, |fw, nb, _| {
                        fw.compute(3);
                        next.fp_add(fw, nb as usize, share);
                    });
                }
            }
            fw.barrier();
            // Swap phase: copy next -> rank.
            for v in 0..n {
                fw.spread(v);
                let x = next.get(fw, v, false);
                rank.set(fw, v, x);
            }
            fw.barrier();
        }
        self.ranks = rank.as_slice().to_vec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CollectTrace;
    use crate::kernels::reference;
    use graphpim_graph::generate::GraphSpec;
    use graphpim_graph::GraphBuilder;

    fn run_prank(graph: &CsrGraph, iters: usize, threads: usize) -> PRank {
        let mut sink = CollectTrace::default();
        let mut pr = PRank::new(iters);
        let mut fw = Framework::new(threads, &mut sink);
        pr.run(graph, &mut fw);
        fw.finish();
        pr
    }

    #[test]
    fn matches_reference_pagerank() {
        let g = GraphSpec::uniform(80, 400).seed(17).build();
        let pr = run_prank(&g, 5, 4);
        let oracle = reference::pagerank(&g, DAMPING, 5);
        for (v, &want) in oracle.iter().enumerate() {
            assert!(
                (pr.ranks()[v] - want).abs() < 1e-9,
                "vertex {v}: {} vs {}",
                pr.ranks()[v],
                want
            );
        }
    }

    #[test]
    fn hub_outranks_leaf() {
        // Everyone points at 0.
        let g = GraphBuilder::new(5).edges((1..5).map(|i| (i, 0))).build();
        let pr = run_prank(&g, 10, 2);
        assert!(pr.ranks()[0] > pr.ranks()[1] * 2.0);
    }

    #[test]
    fn ring_is_uniform() {
        let g = GraphBuilder::new(4)
            .edges(vec![(0, 1), (1, 2), (2, 3), (3, 0)])
            .build();
        let pr = run_prank(&g, 8, 1);
        for w in pr.ranks().windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn needs_fp_extension() {
        let pr = PRank::new(1);
        assert_eq!(pr.applicability(), Applicability::WithFpExtension);
        assert!(pr.offload_target().is_none());
    }
}
