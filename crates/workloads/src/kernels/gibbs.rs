//! Gibbs inference (rich-property category).
//!
//! Approximate Gibbs sampling over a pairwise Markov random field laid on
//! the graph: each sweep re-samples every vertex's binary state from the
//! states of its neighbors using a large local stochastic-table
//! computation. The computation lives *inside* the property (Section II-B's
//! RP description), so it is computation-intensive and PIM-Atomic does not
//! apply (Table III).

use super::{Applicability, Category, Kernel, OffloadTarget};
use crate::framework::{Framework, GraphAccess, PropertyArray};
use graphpim_graph::generate::SplitMix64;
use graphpim_graph::CsrGraph;

/// Coupling strength of the pairwise potential.
const COUPLING: f64 = 0.5;

/// Gibbs sampling sweeps over a graph MRF.
#[derive(Debug)]
pub struct Gibbs {
    sweeps: usize,
    seed: u64,
    states: Vec<u64>,
    flips: usize,
}

impl Gibbs {
    /// `sweeps` full-graph sampling passes with deterministic randomness.
    pub fn new(sweeps: usize, seed: u64) -> Self {
        Gibbs {
            sweeps,
            seed,
            states: Vec::new(),
            flips: 0,
        }
    }

    /// Final binary states.
    pub fn states(&self) -> &[u64] {
        &self.states
    }

    /// State flips across all sweeps.
    pub fn flips(&self) -> usize {
        self.flips
    }
}

impl Kernel for Gibbs {
    fn name(&self) -> &'static str {
        "Gibbs"
    }

    fn category(&self) -> Category {
        Category::RichProperty
    }

    fn applicability(&self) -> Applicability {
        Applicability::Inapplicable("Computation intensive")
    }

    fn offload_target(&self) -> Option<OffloadTarget> {
        None
    }

    fn run(&mut self, graph: &CsrGraph, fw: &mut Framework<'_>) {
        let n = graph.vertex_count();
        let access = GraphAccess::new(fw, graph);
        let mut state = PropertyArray::new(fw, n.max(1), 0u64);
        let mut rng = SplitMix64::new(self.seed ^ 0x6769_6262);
        for v in 0..n {
            state.poke(v, rng.next_below(2)); // untraced init
        }

        self.flips = 0;
        for sweep in 0..self.sweeps {
            for v in 0..n as u32 {
                fw.spread(v as usize);
                {
                    let old = state.get(fw, v as usize, false);
                    let mut field = 0.0f64;
                    access.for_each_neighbor(fw, v, |fw, nb, _| {
                        let s = state.get(fw, nb as usize, true);
                        // Pairwise potential evaluation.
                        fw.compute(8);
                        field += if s == 1 { COUPLING } else { -COUPLING };
                    });
                    // Large local table computation: the RP hallmark.
                    fw.compute(40);
                    let p_one = 1.0 / (1.0 + (-2.0 * field).exp());
                    let mut draw = SplitMix64::new(
                        self.seed ^ (sweep as u64) << 32 ^ (v as u64).wrapping_mul(0x9E37),
                    );
                    let new = u64::from(draw.next_f64() < p_one);
                    if new != old {
                        self.flips += 1;
                    }
                    state.set(fw, v as usize, new);
                }
            }
            fw.barrier();
        }
        self.states = state.as_slice().to_vec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CollectTrace;
    use graphpim_graph::generate::GraphSpec;
    use graphpim_graph::GraphBuilder;
    use graphpim_sim::trace::TraceOp;

    fn run_gibbs(graph: &CsrGraph, sweeps: usize) -> (Gibbs, CollectTrace) {
        let mut sink = CollectTrace::default();
        let mut gb = Gibbs::new(sweeps, 3);
        {
            let mut fw = Framework::new(2, &mut sink);
            gb.run(graph, &mut fw);
            fw.finish();
        }
        (gb, sink)
    }

    #[test]
    fn deterministic_states() {
        let g = GraphSpec::uniform(60, 240).seed(8).build();
        let (a, _) = run_gibbs(&g, 2);
        let (b, _) = run_gibbs(&g, 2);
        assert_eq!(a.states(), b.states());
    }

    #[test]
    fn states_are_binary() {
        let g = GraphSpec::uniform(40, 160).seed(8).build();
        let (gb, _) = run_gibbs(&g, 1);
        assert!(gb.states().iter().all(|&s| s <= 1));
        assert_eq!(gb.states().len(), 40);
    }

    #[test]
    fn strongly_coupled_clique_aligns() {
        // A dense clique with positive coupling should mostly agree after a
        // few sweeps.
        let n = 12u32;
        let g = GraphBuilder::new(n as usize)
            .undirected()
            .edges(
                (0..n)
                    .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
                    .collect::<Vec<_>>(),
            )
            .build();
        let (gb, _) = run_gibbs(&g, 4);
        let ones: usize = gb.states().iter().map(|&s| s as usize).sum();
        let majority = ones.max(gb.states().len() - ones);
        assert!(
            majority >= gb.states().len() * 3 / 4,
            "clique should align: {ones}/{}",
            gb.states().len()
        );
    }

    #[test]
    fn compute_dominates_trace() {
        let g = GraphSpec::uniform(50, 200).seed(8).build();
        let (_, sink) = run_gibbs(&g, 1);
        let mut compute_instrs = 0u64;
        let mut mem_ops = 0u64;
        for t in 0..2 {
            for op in sink.thread_ops(t) {
                match op {
                    TraceOp::Compute(k) => compute_instrs += k as u64,
                    o if o.is_memory() => mem_ops += 1,
                    _ => {}
                }
            }
        }
        assert!(
            compute_instrs > mem_ops * 5,
            "RP kernels are compute heavy: {compute_instrs} vs {mem_ops}"
        );
    }

    #[test]
    fn no_atomics_emitted() {
        let g = GraphSpec::uniform(30, 100).seed(8).build();
        let (_, sink) = run_gibbs(&g, 1);
        for t in 0..2 {
            assert!(sink
                .thread_ops(t)
                .iter()
                .all(|op| !matches!(op, TraceOp::Atomic { .. })));
        }
    }
}
