//! Connected components.
//!
//! Min-label propagation over edges (treating edges as undirected for
//! connectivity, as GraphBIG does): each round every edge pulls the smaller
//! endpoint label onto the larger, via `lock cmpxchg` (→ HMC `CAS if
//! equal`, Table II), until a fixpoint.

use super::{Applicability, Category, Kernel, OffloadTarget};
use crate::framework::{Framework, GraphAccess, MetaArray, PropertyArray};
use graphpim_graph::CsrGraph;

/// Label-propagation connected components.
#[derive(Debug, Default)]
pub struct CComp {
    labels: Vec<u64>,
    rounds: usize,
}

impl CComp {
    /// Creates the kernel.
    pub fn new() -> Self {
        CComp::default()
    }

    /// Component labels (the minimum vertex id of each weak component).
    pub fn labels(&self) -> &[u64] {
        &self.labels
    }

    /// Number of propagation rounds until the fixpoint.
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

impl Kernel for CComp {
    fn name(&self) -> &'static str {
        "CComp"
    }

    fn category(&self) -> Category {
        Category::GraphTraversal
    }

    fn applicability(&self) -> Applicability {
        Applicability::Applicable
    }

    fn offload_target(&self) -> Option<OffloadTarget> {
        Some(OffloadTarget {
            host_instruction: "lock cmpxchg",
            pim_atomic_type: "CAS if equal",
        })
    }

    fn run(&mut self, graph: &CsrGraph, fw: &mut Framework<'_>) {
        let n = graph.vertex_count();
        let access = GraphAccess::new(fw, graph);
        let mut label = PropertyArray::new(fw, n.max(1), 0u64);
        for v in 0..n {
            label.poke(v, v as u64); // initialization, untraced
        }
        let mut changed_flag = MetaArray::new(fw, fw.threads().max(1), 0u64);

        let threads = fw.threads();
        self.rounds = 0;
        loop {
            self.rounds += 1;
            let mut any_change = false;
            let mut local_change = vec![0u64; threads];
            for v in 0..n as u32 {
                fw.spread(v as usize);
                let t = v as usize % threads;
                {
                    let lv = label.get(fw, v as usize, false);
                    fw.compute(5);
                    access.for_each_neighbor(fw, v, |fw, nb, _| {
                        fw.compute(3);
                        // Push the smaller label at the neighbor via the
                        // CAS-min idiom; the returned original doubles as
                        // the read of the neighbor's label.
                        let (lowered, ln) = label.cas_min(fw, nb as usize, lv);
                        if lowered {
                            local_change[t] = 1;
                        } else if ln < lv {
                            // Neighbor had the smaller label: pull it onto
                            // v with a second CAS-min.
                            let (lowered_v, _) = label.cas_min(fw, v as usize, ln);
                            if lowered_v {
                                local_change[t] = 1;
                            }
                        }
                    });
                }
            }
            for (t, &c) in local_change.iter().enumerate() {
                fw.on_thread(t);
                changed_flag.set(fw, t, c);
                any_change |= c != 0;
            }
            fw.barrier();
            if !any_change {
                break;
            }
        }
        self.labels = label.as_slice().to_vec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CollectTrace;
    use crate::kernels::reference;
    use graphpim_graph::generate::GraphSpec;
    use graphpim_graph::GraphBuilder;

    fn run_ccomp(graph: &CsrGraph, threads: usize) -> CComp {
        let mut sink = CollectTrace::default();
        let mut cc = CComp::new();
        let mut fw = Framework::new(threads, &mut sink);
        cc.run(graph, &mut fw);
        fw.finish();
        cc
    }

    fn assert_matches_oracle(g: &CsrGraph, cc: &CComp) {
        let oracle = reference::weak_components(g);
        for u in 0..g.vertex_count() {
            for v in 0..g.vertex_count() {
                assert_eq!(
                    cc.labels()[u] == cc.labels()[v],
                    oracle[u] == oracle[v],
                    "vertices {u},{v}"
                );
            }
        }
    }

    #[test]
    fn two_components() {
        let g = GraphBuilder::new(5)
            .edge(0, 1)
            .edge(1, 2)
            .edge(3, 4)
            .build();
        let cc = run_ccomp(&g, 2);
        assert_matches_oracle(&g, &cc);
        assert_eq!(cc.labels()[3], 3);
        assert_eq!(cc.labels()[4], 3);
    }

    #[test]
    fn random_graph_matches_union_find() {
        let g = GraphSpec::uniform(120, 200).seed(11).build();
        let cc = run_ccomp(&g, 4);
        assert_matches_oracle(&g, &cc);
    }

    #[test]
    fn directed_edges_connect_weakly() {
        // 2 -> 0: label 0 must reach vertex 2 against the edge direction
        // (weak connectivity via the CAS on either endpoint).
        let g = GraphBuilder::new(3).edge(2, 0).edge(2, 1).build();
        let cc = run_ccomp(&g, 1);
        assert_eq!(cc.labels(), &[0, 0, 0]);
    }

    #[test]
    fn isolated_vertices_keep_own_label() {
        let g = GraphBuilder::new(3).edge(0, 1).build();
        let cc = run_ccomp(&g, 1);
        assert_eq!(cc.labels()[2], 2);
    }

    #[test]
    fn terminates_in_bounded_rounds() {
        let g = GraphSpec::ldbc(graphpim_graph::generate::LdbcSize::K1).build();
        let cc = run_ccomp(&g, 4);
        assert!(cc.rounds() < 64, "rounds: {}", cc.rounds());
    }
}
