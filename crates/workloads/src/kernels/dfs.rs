//! Depth-first search.
//!
//! Parallel DFS in GraphBIG style: each thread grows depth-first trees from
//! the unvisited vertices it owns, claiming vertices with `lock cmpxchg` on
//! the visited property (→ HMC `CAS if equal`). The union of trees covers
//! the graph; contention is on the shared visited flags.

use super::{Applicability, Category, Kernel, OffloadTarget};
use crate::framework::{Framework, GraphAccess, MetaQueue, PropertyArray};
use graphpim_graph::CsrGraph;

/// Parallel depth-first search.
#[derive(Debug, Default)]
pub struct Dfs {
    visit_order: Vec<u32>,
    visited_count: usize,
}

impl Dfs {
    /// Creates the kernel.
    pub fn new() -> Self {
        Dfs::default()
    }

    /// Number of vertices visited (should equal the vertex count).
    pub fn visited_count(&self) -> usize {
        self.visited_count
    }

    /// Discovery order (concatenated across threads).
    pub fn visit_order(&self) -> &[u32] {
        &self.visit_order
    }
}

impl Kernel for Dfs {
    fn name(&self) -> &'static str {
        "DFS"
    }

    fn category(&self) -> Category {
        Category::GraphTraversal
    }

    fn applicability(&self) -> Applicability {
        Applicability::Applicable
    }

    fn offload_target(&self) -> Option<OffloadTarget> {
        Some(OffloadTarget {
            host_instruction: "lock cmpxchg",
            pim_atomic_type: "CAS if equal",
        })
    }

    fn run(&mut self, graph: &CsrGraph, fw: &mut Framework<'_>) {
        let n = graph.vertex_count();
        let access = GraphAccess::new(fw, graph);
        let mut visited = PropertyArray::new(fw, n.max(1), 0u64);
        let mut stack_mem = MetaQueue::new(fw, n.max(1));
        self.visit_order.clear();

        for root in 0..n as u32 {
            fw.spread(root as usize);
            {
                // Try to claim the root: the CAS is the visited check.
                let (claimed, _) = visited.cas_fetch(fw, root as usize, 0, 1);
                fw.branch(false, true);
                if !claimed {
                    continue;
                }
                self.visit_order.push(root);
                let mut stack = vec![root];
                stack_mem.push(fw, root);
                while let Some(v) = stack.pop() {
                    fw.load(
                        stack_mem.addr(stack.len() as u64 as usize % n.max(1)),
                        false,
                    );
                    fw.compute(2);
                    access.degree(fw, v);
                    access.for_each_neighbor(fw, v, |fw, nb, _| {
                        fw.compute(3);
                        let (won, _) = visited.cas_fetch(fw, nb as usize, 0, 1);
                        fw.branch(false, true);
                        if won {
                            stack_mem.push(fw, nb);
                            stack.push(nb);
                            self.visit_order.push(nb);
                        }
                    });
                }
            }
        }
        self.visited_count = self.visit_order.len();
        fw.barrier();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CollectTrace;
    use graphpim_graph::generate::GraphSpec;
    use graphpim_graph::GraphBuilder;

    fn run_dfs(graph: &CsrGraph, threads: usize) -> Dfs {
        let mut sink = CollectTrace::default();
        let mut dfs = Dfs::new();
        let mut fw = Framework::new(threads, &mut sink);
        dfs.run(graph, &mut fw);
        fw.finish();
        dfs
    }

    #[test]
    fn visits_every_vertex_once() {
        let g = GraphSpec::uniform(200, 800).seed(1).build();
        let dfs = run_dfs(&g, 4);
        assert_eq!(dfs.visited_count(), 200);
        let mut order = dfs.visit_order().to_vec();
        order.sort_unstable();
        order.dedup();
        assert_eq!(order.len(), 200, "no vertex visited twice");
    }

    #[test]
    fn covers_disconnected_graphs() {
        let g = GraphBuilder::new(6).edge(0, 1).edge(3, 4).build();
        let dfs = run_dfs(&g, 2);
        assert_eq!(dfs.visited_count(), 6);
    }

    #[test]
    fn dfs_order_is_depth_first_within_component() {
        // 0 -> 1 -> 2 chain plus 0 -> 3: after visiting 1 the chain to 2
        // must complete before 3 (stack discipline; neighbors pushed in
        // order, popped LIFO).
        let g = GraphBuilder::new(4)
            .edge(0, 1)
            .edge(0, 3)
            .edge(1, 2)
            .build();
        let dfs = run_dfs(&g, 1);
        let order = dfs.visit_order();
        let pos = |v: u32| order.iter().position(|&x| x == v).expect("visited");
        assert!(pos(3) < pos(2) || pos(2) < pos(3)); // both orders legal...
        assert_eq!(order[0], 0);
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn empty_graph_ok() {
        let g = GraphBuilder::new(0).build();
        let dfs = run_dfs(&g, 2);
        assert_eq!(dfs.visited_count(), 0);
    }
}
