//! Topology morphing (dynamic-graph category).
//!
//! GraphBIG's TMorph restructures the graph (triangulation-style): this
//! kernel walks wedges `a - v - b` and closes them by inserting the edge
//! `a - b` when absent, up to a deterministic budget. The mix of dependent
//! lookups and structure mutation is characteristic of DG workloads; no
//! PIM-Atomic applies (Table III: complex operation).

use super::{Applicability, Category, Kernel, OffloadTarget};
use crate::framework::Framework;
use graphpim_graph::generate::SplitMix64;
use graphpim_graph::{CsrGraph, DynamicGraph};

/// Wedge-closing topology morphing.
#[derive(Debug)]
pub struct TMorph {
    seed: u64,
    closed_wedges: usize,
    final_edges: usize,
}

impl TMorph {
    /// Creates the kernel; wedge sampling derives from `seed`.
    pub fn new(seed: u64) -> Self {
        TMorph {
            seed,
            closed_wedges: 0,
            final_edges: 0,
        }
    }

    /// Number of wedges closed with a new edge.
    pub fn closed_wedges(&self) -> usize {
        self.closed_wedges
    }

    /// Edge count after morphing.
    pub fn final_edges(&self) -> usize {
        self.final_edges
    }
}

impl Kernel for TMorph {
    fn name(&self) -> &'static str {
        "TMorph"
    }

    fn category(&self) -> Category {
        Category::DynamicGraph
    }

    fn applicability(&self) -> Applicability {
        Applicability::Inapplicable("Complex operation")
    }

    fn offload_target(&self) -> Option<OffloadTarget> {
        None
    }

    fn run(&mut self, graph: &CsrGraph, fw: &mut Framework<'_>) {
        let n = graph.vertex_count();
        let mut dynamic = DynamicGraph::from_csr(graph);
        let adjacency_base = fw.structure_malloc((graph.edge_count() as u64 + 1) * 16);
        let mut rng = SplitMix64::new(self.seed ^ 0x744d_6f72);
        let budget_per_vertex = 2usize;

        self.closed_wedges = 0;
        for v in 0..n as u32 {
            fw.spread(v as usize);
            {
                let neighbors = dynamic.neighbors(v).to_vec();
                fw.compute(2);
                if neighbors.len() < 2 {
                    continue;
                }
                for _ in 0..budget_per_vertex {
                    let a = neighbors[rng.next_below(neighbors.len() as u64) as usize];
                    let b = neighbors[rng.next_below(neighbors.len() as u64) as usize];
                    if a == b {
                        continue;
                    }
                    // Lookup a's adjacency for b: dependent probes.
                    let deg = dynamic.out_degree(a).max(1);
                    let probes = (deg as f64).log2().ceil() as u32 + 1;
                    for p in 0..probes {
                        fw.load(
                            adjacency_base + (a as u64 * 64 + p as u64 * 8) % (1 << 30),
                            true,
                        );
                        fw.branch(false, true);
                    }
                    if !dynamic.has_edge(a, b) {
                        dynamic.add_edge(a, b);
                        self.closed_wedges += 1;
                        fw.store(adjacency_base + (a as u64 * 64) % (1 << 30));
                        fw.store(adjacency_base + (a as u64 * 64 + 8) % (1 << 30));
                        fw.compute(2);
                    }
                }
            }
        }
        fw.barrier();
        self.final_edges = dynamic.edge_count();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CollectTrace;
    use graphpim_graph::generate::GraphSpec;
    use graphpim_graph::GraphBuilder;

    fn run_tmorph(graph: &CsrGraph) -> TMorph {
        let mut sink = CollectTrace::default();
        let mut tm = TMorph::new(5);
        let mut fw = Framework::new(2, &mut sink);
        tm.run(graph, &mut fw);
        fw.finish();
        tm
    }

    #[test]
    fn edges_grow_by_closed_wedges() {
        let g = GraphSpec::uniform(100, 800).seed(2).build();
        let tm = run_tmorph(&g);
        assert_eq!(tm.final_edges(), g.edge_count() + tm.closed_wedges());
        assert!(tm.closed_wedges() > 0);
    }

    #[test]
    fn star_gets_closed() {
        // A star has wedges through the hub; closing adds leaf-leaf edges.
        let g = GraphBuilder::new(5).edges((1..5).map(|i| (0, i))).build();
        let tm = run_tmorph(&g);
        assert!(tm.closed_wedges() > 0);
    }

    #[test]
    fn deterministic() {
        let g = GraphSpec::uniform(60, 300).seed(4).build();
        assert_eq!(run_tmorph(&g).final_edges(), run_tmorph(&g).final_edges());
    }
}
