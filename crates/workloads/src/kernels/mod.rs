//! The GraphBIG workload suite (Tables II and III of the paper).
//!
//! Every kernel executes its real algorithm (results are checked against
//! oracles in [`reference`]) while emitting the instruction-level trace
//! through the framework layer. Kernels also self-describe their paper
//! classification: computation category, PIM applicability (Table III), and
//! host-atomic → HMC-command offloading target (Table II).

mod bc;
mod bfs;
mod ccomp;
mod dcentr;
mod dfs;
mod gcons;
mod gibbs;
mod gup;
mod kcore;
mod prank;
pub mod reference;
mod sssp;
mod tc;
mod tmorph;

pub use bc::Bc;
pub use bfs::Bfs;
pub use ccomp::CComp;
pub use dcentr::DCentr;
pub use dfs::Dfs;
pub use gcons::GCons;
pub use gibbs::Gibbs;
pub use gup::GUp;
pub use kcore::KCore;
pub use prank::PRank;
pub use sssp::Sssp;
pub use tc::Tc;
pub use tmorph::TMorph;

use crate::framework::Framework;
use graphpim_graph::CsrGraph;

/// Workload categories of Section II-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Graph traversal (GT): BFS, DFS, shortest path, ...
    GraphTraversal,
    /// Rich property (RP): computation within vertex properties.
    RichProperty,
    /// Dynamic graph (DG): structure mutation over time.
    DynamicGraph,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Category::GraphTraversal => "Graph Traversal",
            Category::RichProperty => "Rich Property",
            Category::DynamicGraph => "Dynamic Graph",
        };
        f.write_str(s)
    }
}

/// PIM-Atomic applicability (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applicability {
    /// The kernel's property atomics map onto HMC 2.0 commands.
    Applicable,
    /// Applicable only with the paper's proposed FP add/sub extension.
    WithFpExtension,
    /// Not applicable; the payload is the missing-operation note of
    /// Table III.
    Inapplicable(&'static str),
}

impl Applicability {
    /// Whether any PIM offloading is possible (with the FP extension).
    pub fn offloadable(self) -> bool {
        !matches!(self, Applicability::Inapplicable(_))
    }
}

/// One row of Table II: which host instruction is the offloading target and
/// which PIM-Atomic it maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffloadTarget {
    /// The x86 instruction with a `lock` prefix.
    pub host_instruction: &'static str,
    /// The HMC 2.0 PIM-Atomic type.
    pub pim_atomic_type: &'static str,
}

/// A runnable GraphBIG workload.
///
/// `Send` is a supertrait so a kernel can execute on a producer thread
/// while the timing models consume its trace on another (the pipelined
/// run path); kernels are plain data, so this costs implementors nothing.
pub trait Kernel: Send {
    /// Display name used in the paper's figures (e.g. `"BFS"`).
    fn name(&self) -> &'static str;

    /// Section II-B category.
    fn category(&self) -> Category;

    /// Table III applicability.
    fn applicability(&self) -> Applicability;

    /// Table II offloading target, for kernels that have one.
    fn offload_target(&self) -> Option<OffloadTarget>;

    /// Executes the kernel on `graph`, computing real results and emitting
    /// the instruction trace through `fw`. Ends with a barrier.
    fn run(&mut self, graph: &CsrGraph, fw: &mut Framework<'_>);
}

/// Parameters shared by kernel constructors in the registries.
#[derive(Debug, Clone, Copy)]
pub struct KernelParams {
    /// Root vertex for traversals.
    pub root: u32,
    /// PageRank iterations.
    pub prank_iters: usize,
    /// Betweenness-centrality source count.
    pub bc_sources: usize,
    /// k for k-core decomposition.
    pub kcore_k: u64,
    /// Triangle counting processes every `tc_stride`-th vertex (1 = all);
    /// lets the O(m^1.5) kernel scale to large inputs.
    pub tc_stride: usize,
    /// Gibbs sweeps.
    pub gibbs_iters: usize,
    /// RNG seed for kernels with stochastic components.
    pub seed: u64,
}

impl Default for KernelParams {
    fn default() -> Self {
        KernelParams {
            root: 0,
            prank_iters: 3,
            bc_sources: 2,
            kcore_k: 30,
            tc_stride: 1,
            gibbs_iters: 2,
            seed: 42,
        }
    }
}

impl KernelParams {
    /// Scales work knobs to the input size so every figure run finishes in
    /// reasonable time (documented in DESIGN.md): triangle counting samples
    /// vertices on large graphs.
    pub fn scaled_for(vertices: usize) -> Self {
        let mut p = KernelParams::default();
        if vertices > 500_000 {
            p.tc_stride = 64;
        } else if vertices > 200_000 {
            p.tc_stride = 16;
        } else if vertices > 20_000 {
            p.tc_stride = 4;
        }
        p
    }
}

/// The eight kernels of the evaluation figures (Figs. 7, 9–15), in the
/// paper's x-axis order.
pub fn evaluation_set(params: KernelParams) -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(Bfs::new(params.root)),
        Box::new(CComp::new()),
        Box::new(DCentr::new()),
        Box::new(KCore::new(params.kcore_k)),
        Box::new(Sssp::new(params.root)),
        Box::new(Tc::with_stride(params.tc_stride)),
        Box::new(Bc::new(params.bc_sources, params.seed)),
        Box::new(PRank::new(params.prank_iters)),
    ]
}

/// All thirteen GraphBIG workloads (Figs. 1, 2; Table III), grouped GT,
/// then DG, then RP, as in Figure 1.
pub fn full_set(params: KernelParams) -> Vec<Box<dyn Kernel>> {
    vec![
        // Graph traversal
        Box::new(Bfs::new(params.root)),
        Box::new(Dfs::new()),
        Box::new(DCentr::new()),
        Box::new(Bc::new(params.bc_sources, params.seed)),
        Box::new(Sssp::new(params.root)),
        Box::new(KCore::new(params.kcore_k)),
        Box::new(CComp::new()),
        Box::new(PRank::new(params.prank_iters)),
        // Dynamic graph
        Box::new(GCons::new(params.seed)),
        Box::new(GUp::new(params.seed)),
        Box::new(TMorph::new(params.seed)),
        // Rich property
        Box::new(Tc::with_stride(params.tc_stride)),
        Box::new(Gibbs::new(params.gibbs_iters, params.seed)),
    ]
}

/// Builds one kernel by its figure name (e.g. `"BFS"`, `"PRank"`).
pub fn by_name(name: &str, params: KernelParams) -> Option<Box<dyn Kernel>> {
    let all = full_set(params);
    all.into_iter().find(|k| k.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_set_matches_figure7_order() {
        let names: Vec<_> = evaluation_set(KernelParams::default())
            .iter()
            .map(|k| k.name())
            .collect();
        assert_eq!(
            names,
            vec!["BFS", "CComp", "DC", "kCore", "SSSP", "TC", "BC", "PRank"]
        );
    }

    #[test]
    fn full_set_has_13_workloads() {
        assert_eq!(full_set(KernelParams::default()).len(), 13);
    }

    #[test]
    fn table3_applicability_matrix() {
        use Applicability::*;
        let expected: &[(&str, bool)] = &[
            ("BFS", true),
            ("DFS", true),
            ("DC", true),
            ("BC", true), // via FP extension
            ("SSSP", true),
            ("kCore", true),
            ("CComp", true),
            ("PRank", true), // via FP extension
            ("GCons", false),
            ("GUp", false),
            ("TMorph", false),
            ("TC", true),
            ("Gibbs", false),
        ];
        for kernel in full_set(KernelParams::default()) {
            let (_, want) = expected
                .iter()
                .find(|(n, _)| *n == kernel.name())
                .unwrap_or_else(|| panic!("unknown kernel {}", kernel.name()));
            assert_eq!(
                kernel.applicability().offloadable(),
                *want,
                "kernel {}",
                kernel.name()
            );
            if kernel.name() == "BC" || kernel.name() == "PRank" {
                assert_eq!(kernel.applicability(), WithFpExtension);
            }
        }
    }

    #[test]
    fn table2_offload_targets() {
        let params = KernelParams::default();
        let expect = [
            ("BFS", "lock cmpxchg", "CAS if equal"),
            ("DC", "lock add", "Signed add"),
            ("SSSP", "lock cmpxchg", "CAS if equal"),
            ("kCore", "lock sub", "Signed add"),
            ("CComp", "lock cmpxchg", "CAS if equal"),
            ("TC", "lock add", "Signed add"),
        ];
        for (name, host, pim) in expect {
            let k = by_name(name, params).expect(name);
            let target = k.offload_target().unwrap_or_else(|| panic!("{name}"));
            assert_eq!(target.host_instruction, host, "{name}");
            assert_eq!(target.pim_atomic_type, pim, "{name}");
        }
    }

    #[test]
    fn dynamic_kernels_have_no_target() {
        for name in ["GCons", "GUp", "TMorph", "Gibbs"] {
            let k = by_name(name, KernelParams::default()).expect(name);
            assert!(k.offload_target().is_none(), "{name}");
            assert_eq!(
                k.category(),
                if name == "Gibbs" {
                    Category::RichProperty
                } else {
                    Category::DynamicGraph
                }
            );
        }
    }

    #[test]
    fn by_name_unknown_is_none() {
        assert!(by_name("NotAKernel", KernelParams::default()).is_none());
    }

    #[test]
    fn scaled_params_reduce_tc_work() {
        assert_eq!(KernelParams::scaled_for(1_000).tc_stride, 1);
        assert!(KernelParams::scaled_for(1_000_000).tc_stride > 1);
    }
}
