//! k-core decomposition.
//!
//! Iterative peeling: every round scans *all* vertices, removing live ones
//! whose effective (undirected) degree dropped below `k` and atomically
//! decrementing their neighbors' degrees (`lock sub` → HMC posted `Signed
//! add`, Table II). Most of the time goes into re-checking inactive
//! vertices, which is why the paper observes a low offload fraction and a
//! negligible GraphPIM speedup for this kernel (Section IV-B1).

use super::{Applicability, Category, Kernel, OffloadTarget};
use crate::framework::{Framework, GraphAccess, MetaArray, PropertyArray};
use graphpim_graph::{CsrGraph, GraphBuilder};

/// Peeling k-core decomposition.
#[derive(Debug)]
pub struct KCore {
    k: u64,
    members: Vec<bool>,
    rounds: usize,
}

impl KCore {
    /// Decomposition with threshold `k`.
    pub fn new(k: u64) -> Self {
        KCore {
            k,
            members: Vec::new(),
            rounds: 0,
        }
    }

    /// Whether each vertex survives in the k-core.
    pub fn members(&self) -> &[bool] {
        &self.members
    }

    /// Peeling rounds executed.
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

impl Kernel for KCore {
    fn name(&self) -> &'static str {
        "kCore"
    }

    fn category(&self) -> Category {
        Category::GraphTraversal
    }

    fn applicability(&self) -> Applicability {
        Applicability::Applicable
    }

    fn offload_target(&self) -> Option<OffloadTarget> {
        Some(OffloadTarget {
            host_instruction: "lock sub",
            pim_atomic_type: "Signed add",
        })
    }

    fn run(&mut self, graph: &CsrGraph, fw: &mut Framework<'_>) {
        let n = graph.vertex_count();
        // Peel on the undirected view (initialization phase, untraced).
        let sym = GraphBuilder::new(n)
            .undirected()
            .drop_self_loops()
            .edges(graph.iter_edges())
            .build();
        let access = GraphAccess::new(fw, &sym);
        let mut deg = PropertyArray::new(fw, n.max(1), 0u64);
        // The active flag is framework bookkeeping: a dense, streaming-
        // friendly array (this is why "checking inactive vertices" is
        // cheap per vertex yet dominates kCore's runtime — Section IV-B1).
        let mut alive = MetaArray::new(fw, n.max(1), 1u64);
        for v in 0..n {
            deg.poke(v, sym.out_degree(v as u32) as u64);
        }

        self.rounds = 0;
        loop {
            self.rounds += 1;
            let mut removed_any = false;
            for v in 0..n as u32 {
                fw.spread(v as usize);
                {
                    // The inactive-vertex check that dominates runtime.
                    let live = alive.get(fw, v as usize);
                    fw.branch(false, true);
                    if live == 0 {
                        continue;
                    }
                    let d = deg.get(fw, v as usize, false);
                    fw.branch(false, true);
                    fw.compute(1);
                    if d >= self.k {
                        continue;
                    }
                    alive.set(fw, v as usize, 0);
                    removed_any = true;
                    access.for_each_neighbor(fw, v, |fw, nb, _| {
                        fw.compute(3);
                        deg.fetch_sub(fw, nb as usize, 1);
                    });
                }
            }
            fw.barrier();
            if !removed_any {
                break;
            }
        }
        self.members = (0..n).map(|v| alive.peek(v) != 0).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CollectTrace;
    use graphpim_graph::generate::GraphSpec;

    fn run_kcore(graph: &CsrGraph, k: u64, threads: usize) -> KCore {
        let mut sink = CollectTrace::default();
        let mut kc = KCore::new(k);
        let mut fw = Framework::new(threads, &mut sink);
        kc.run(graph, &mut fw);
        fw.finish();
        kc
    }

    /// Oracle on the undirected simple view.
    fn oracle(graph: &CsrGraph, k: u64) -> Vec<bool> {
        let n = graph.vertex_count();
        let sym = GraphBuilder::new(n)
            .undirected()
            .drop_self_loops()
            .edges(graph.iter_edges())
            .build();
        let mut deg: Vec<u64> = (0..n).map(|v| sym.out_degree(v as u32) as u64).collect();
        let mut alive = vec![true; n];
        loop {
            let mut changed = false;
            for v in 0..n {
                if alive[v] && deg[v] < k {
                    alive[v] = false;
                    changed = true;
                    for &x in sym.neighbors(v as u32) {
                        deg[x as usize] = deg[x as usize].saturating_sub(1);
                    }
                }
            }
            if !changed {
                return alive;
            }
        }
    }

    #[test]
    fn clique_survives_pendant_does_not() {
        let g = GraphBuilder::new(5)
            .undirected()
            .edges(vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)])
            .build();
        let kc = run_kcore(&g, 3, 2);
        assert_eq!(kc.members(), &[true, true, true, true, false]);
    }

    #[test]
    fn matches_oracle_on_random_graph() {
        let g = GraphSpec::uniform(150, 700).seed(13).build();
        let kc = run_kcore(&g, 5, 4);
        assert_eq!(kc.members(), oracle(&g, 5).as_slice());
    }

    #[test]
    fn k_zero_keeps_everything() {
        let g = GraphSpec::uniform(50, 100).seed(1).build();
        let kc = run_kcore(&g, 0, 2);
        assert!(kc.members().iter().all(|&m| m));
    }

    #[test]
    fn huge_k_removes_everything() {
        let g = GraphSpec::uniform(50, 100).seed(1).build();
        let kc = run_kcore(&g, 1000, 2);
        assert!(kc.members().iter().all(|&m| !m));
    }

    #[test]
    fn cascading_removal() {
        // Chain: every vertex has degree <= 2, so k=3 peels everything,
        // but k=2 keeps a cycle.
        let g = GraphBuilder::new(4)
            .undirected()
            .edges(vec![(0, 1), (1, 2), (2, 3), (3, 0)])
            .build();
        let kc2 = run_kcore(&g, 2, 1);
        assert!(kc2.members().iter().all(|&m| m));
        let kc3 = run_kcore(&g, 3, 1);
        assert!(kc3.members().iter().all(|&m| !m));
        assert!(kc3.rounds() >= 1);
    }
}
