//! Oracle implementations used to validate kernel results.
//!
//! These are straightforward, trace-free algorithms; every traced kernel's
//! output is checked against the corresponding oracle in unit and property
//! tests.

use graphpim_graph::{CsrGraph, VertexId};
use std::collections::VecDeque;

/// BFS depths from `root`; `None` for unreachable vertices.
pub fn bfs_depths(g: &CsrGraph, root: VertexId) -> Vec<Option<u64>> {
    let mut depth = vec![None; g.vertex_count()];
    if g.vertex_count() == 0 {
        return depth;
    }
    depth[root as usize] = Some(0);
    let mut queue = VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        let d = depth[v as usize].expect("queued implies visited");
        for &n in g.neighbors(v) {
            if depth[n as usize].is_none() {
                depth[n as usize] = Some(d + 1);
                queue.push_back(n);
            }
        }
    }
    depth
}

/// Dijkstra distances from `root` using edge weights; `None` = unreachable.
pub fn dijkstra(g: &CsrGraph, root: VertexId) -> Vec<Option<u64>> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut dist = vec![None; g.vertex_count()];
    if g.vertex_count() == 0 {
        return dist;
    }
    let mut heap = BinaryHeap::new();
    dist[root as usize] = Some(0);
    heap.push(Reverse((0u64, root)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if dist[v as usize] != Some(d) {
            continue;
        }
        for (&n, e) in g.neighbors(v).iter().zip(g.edge_range(v)) {
            let nd = d + g.weight_at(e) as u64;
            if dist[n as usize].is_none_or(|old| nd < old) {
                dist[n as usize] = Some(nd);
                heap.push(Reverse((nd, n)));
            }
        }
    }
    dist
}

/// Weakly-connected component labels via union-find; labels are the
/// smallest vertex id in each component.
pub fn weak_components(g: &CsrGraph) -> Vec<VertexId> {
    let n = g.vertex_count();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], v: u32) -> u32 {
        let mut root = v;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = v;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for (u, v) in g.iter_edges() {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
            parent[hi as usize] = lo;
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// The k-core: vertices surviving repeated removal of vertices with
/// (undirected) degree < k. Degree = out-degree + in-degree here, matching
/// the traced kernel.
pub fn kcore_members(g: &CsrGraph, k: u64) -> Vec<bool> {
    let n = g.vertex_count();
    let mut deg = vec![0u64; n];
    for (u, v) in g.iter_edges() {
        deg[u as usize] += 1;
        deg[v as usize] += 1;
    }
    let mut alive = vec![true; n];
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n {
            if alive[v] && deg[v] < k {
                alive[v] = false;
                changed = true;
                for &x in g.neighbors(v as u32) {
                    if alive[x as usize] {
                        deg[x as usize] = deg[x as usize].saturating_sub(1);
                    }
                }
            }
        }
        // In-edges of removed vertices also vanish.
        if changed {
            let mut d2 = vec![0u64; n];
            for (u, v) in g.iter_edges() {
                if alive[u as usize] && alive[v as usize] {
                    d2[u as usize] += 1;
                    d2[v as usize] += 1;
                }
            }
            deg = d2;
        }
    }
    alive
}

/// Dense PageRank with damping `d` and `iters` synchronous iterations,
/// identical update order to the traced kernel (push style, no dangling
/// redistribution).
pub fn pagerank(g: &CsrGraph, d: f64, iters: usize) -> Vec<f64> {
    let n = g.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let mut rank = vec![1.0 / n as f64; n];
    for _ in 0..iters {
        let mut next = vec![(1.0 - d) / n as f64; n];
        for v in 0..n as u32 {
            let deg = g.out_degree(v);
            if deg == 0 {
                continue;
            }
            let share = d * rank[v as usize] / deg as f64;
            for &t in g.neighbors(v) {
                next[t as usize] += share;
            }
        }
        rank = next;
    }
    rank
}

/// Total triangle count (unordered vertex triples with all three
/// undirected connections). Treats the graph as undirected.
pub fn triangle_count(g: &CsrGraph) -> u64 {
    // Build undirected neighbor sets, deduped.
    let n = g.vertex_count();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (u, v) in g.iter_edges() {
        if u != v {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    let mut total = 0u64;
    for u in 0..n as u32 {
        for &v in &adj[u as usize] {
            if v <= u {
                continue;
            }
            // Count w > v adjacent to both.
            let (a, b) = (&adj[u as usize], &adj[v as usize]);
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if a[i] > v {
                            total += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    total
}

/// Brandes betweenness centrality restricted to the given sources
/// (unweighted, directed), matching the traced kernel's accumulation.
pub fn betweenness(g: &CsrGraph, sources: &[VertexId]) -> Vec<f64> {
    let n = g.vertex_count();
    let mut bc = vec![0.0; n];
    for &s in sources {
        let mut sigma = vec![0.0f64; n];
        let mut dist = vec![-1i64; n];
        let mut order: Vec<u32> = Vec::new();
        sigma[s as usize] = 1.0;
        dist[s as usize] = 0;
        let mut queue = VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in g.neighbors(v) {
                if dist[w as usize] < 0 {
                    dist[w as usize] = dist[v as usize] + 1;
                    queue.push_back(w);
                }
                if dist[w as usize] == dist[v as usize] + 1 {
                    sigma[w as usize] += sigma[v as usize];
                }
            }
        }
        let mut delta = vec![0.0f64; n];
        for &v in order.iter().rev() {
            for &w in g.neighbors(v) {
                if dist[w as usize] == dist[v as usize] + 1 && sigma[w as usize] > 0.0 {
                    delta[v as usize] +=
                        sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
                }
            }
            if v != s {
                bc[v as usize] += delta[v as usize];
            }
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphpim_graph::GraphBuilder;

    fn path4() -> CsrGraph {
        GraphBuilder::new(4)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .build()
    }

    #[test]
    fn bfs_on_path() {
        let d = bfs_depths(&path4(), 0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = GraphBuilder::new(3).edge(0, 1).build();
        assert_eq!(bfs_depths(&g, 0)[2], None);
    }

    #[test]
    fn dijkstra_prefers_light_path() {
        let g = GraphBuilder::new(3)
            .weighted_edge(0, 2, 10)
            .weighted_edge(0, 1, 1)
            .weighted_edge(1, 2, 2)
            .build();
        let d = dijkstra(&g, 0);
        assert_eq!(d[2], Some(3));
    }

    #[test]
    fn components_split_correctly() {
        let g = GraphBuilder::new(5).edge(0, 1).edge(3, 4).build();
        let labels = weak_components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[2], labels[0]);
    }

    #[test]
    fn triangle_in_clique() {
        let g = GraphBuilder::new(4)
            .undirected()
            .edges(vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .build();
        assert_eq!(triangle_count(&g), 4); // C(4,3)
    }

    #[test]
    fn triangle_counts_directed_edges_as_undirected() {
        let g = GraphBuilder::new(3)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 0)
            .build();
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn kcore_of_clique_plus_tail() {
        // 4-clique (undirected degree 6 each inside) plus a pendant vertex.
        let g = GraphBuilder::new(5)
            .undirected()
            .edges(vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)])
            .build();
        let members = kcore_members(&g, 6);
        assert_eq!(members, vec![true, true, true, true, false]);
    }

    #[test]
    fn pagerank_sums_near_one() {
        let g = GraphBuilder::new(4)
            .undirected()
            .edges(vec![(0, 1), (1, 2), (2, 3), (3, 0)])
            .build();
        let r = pagerank(&g, 0.85, 20);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        // Symmetric ring: all ranks equal.
        for w in r.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn betweenness_middle_of_path_highest() {
        let g = GraphBuilder::new(3)
            .undirected()
            .edges(vec![(0, 1), (1, 2)])
            .build();
        let bc = betweenness(&g, &[0, 1, 2]);
        assert!(bc[1] > bc[0]);
        assert!(bc[1] > bc[2]);
    }
}
