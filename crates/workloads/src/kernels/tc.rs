//! Triangle counting.
//!
//! Rich-property kernel: for every edge (u, v) with u < v, merge-intersect
//! the sorted (undirected) adjacency lists and count common neighbors
//! w > v. Matches are accumulated with `lock add` (→ HMC posted `Signed
//! add`, Table II). The merge makes TC compute-intensive with mostly
//! sequential structure reads, so its atomic fraction — and hence its
//! GraphPIM benefit — is small (Section IV-B1).
//!
//! `stride` processes only every stride-th pivot vertex so the
//! O(m^1.5) kernel stays tractable on the larger LDBC inputs (a standard
//! sampling knob; stride = 1 counts exactly).

use super::{Applicability, Category, Kernel, OffloadTarget};
use crate::framework::{Framework, GraphAccess, PropertyArray};
use graphpim_graph::{CsrGraph, GraphBuilder};

/// Merge-intersection triangle counting.
#[derive(Debug)]
pub struct Tc {
    stride: usize,
    per_vertex: Vec<u64>,
    total: u64,
}

impl Tc {
    /// Exact triangle counting.
    pub fn new() -> Self {
        Tc::with_stride(1)
    }

    /// Counts triangles whose smallest vertex id is a multiple of `stride`.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn with_stride(stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        Tc {
            stride,
            per_vertex: Vec::new(),
            total: 0,
        }
    }

    /// Total triangles found.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-pivot-vertex counts.
    pub fn per_vertex(&self) -> &[u64] {
        &self.per_vertex
    }
}

impl Default for Tc {
    fn default() -> Self {
        Tc::new()
    }
}

impl Kernel for Tc {
    fn name(&self) -> &'static str {
        "TC"
    }

    fn category(&self) -> Category {
        Category::RichProperty
    }

    fn applicability(&self) -> Applicability {
        Applicability::Applicable
    }

    fn offload_target(&self) -> Option<OffloadTarget> {
        Some(OffloadTarget {
            host_instruction: "lock add",
            pim_atomic_type: "Signed add",
        })
    }

    fn run(&mut self, graph: &CsrGraph, fw: &mut Framework<'_>) {
        let n = graph.vertex_count();
        // Undirected simple view (initialization, untraced).
        let sym = GraphBuilder::new(n)
            .undirected()
            .drop_self_loops()
            .edges(graph.iter_edges())
            .build();
        let access = GraphAccess::new(fw, &sym);
        let mut count = PropertyArray::new(fw, n.max(1), 0u64);

        for u in 0..n as u32 {
            if !(u as usize).is_multiple_of(self.stride) {
                continue;
            }
            fw.spread(u as usize / self.stride);
            {
                access.degree(fw, u);
                let a = sym.neighbors(u);
                access.for_each_neighbor(fw, u, |fw, v, _| {
                    fw.branch(true, false);
                    if v <= u {
                        return;
                    }
                    // Merge-intersect adj(u) x adj(v), counting w > v.
                    let b = sym.neighbors(v);
                    let (mut i, mut j) = (0usize, 0usize);
                    while i < a.len() && j < b.len() {
                        // Two streaming structure reads + compare.
                        fw.load(access.neighbor_addr(u, i), false);
                        fw.load(access.neighbor_addr(v, j), false);
                        fw.compute(2);
                        match a[i].cmp(&b[j]) {
                            std::cmp::Ordering::Less => i += 1,
                            std::cmp::Ordering::Greater => j += 1,
                            std::cmp::Ordering::Equal => {
                                if a[i] > v {
                                    count.fetch_add(fw, u as usize, 1);
                                }
                                i += 1;
                                j += 1;
                            }
                        }
                    }
                });
            }
        }
        fw.barrier();
        self.per_vertex = count.as_slice().to_vec();
        self.total = self.per_vertex.iter().sum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CollectTrace;
    use crate::kernels::reference;
    use graphpim_graph::generate::GraphSpec;

    fn run_tc(graph: &CsrGraph, stride: usize, threads: usize) -> Tc {
        let mut sink = CollectTrace::default();
        let mut tc = Tc::with_stride(stride);
        let mut fw = Framework::new(threads, &mut sink);
        tc.run(graph, &mut fw);
        fw.finish();
        tc
    }

    #[test]
    fn clique_count() {
        let g = GraphBuilder::new(5)
            .undirected()
            .edges(
                (0..5u32)
                    .flat_map(|i| ((i + 1)..5).map(move |j| (i, j)))
                    .collect::<Vec<_>>(),
            )
            .build();
        let tc = run_tc(&g, 1, 2);
        assert_eq!(tc.total(), 10); // C(5,3)
    }

    #[test]
    fn matches_oracle_on_random_graph() {
        let g = GraphSpec::uniform(80, 600).seed(23).build();
        let tc = run_tc(&g, 1, 4);
        assert_eq!(tc.total(), reference::triangle_count(&g));
    }

    #[test]
    fn directed_cycle_has_one_triangle() {
        let g = GraphBuilder::new(3)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 0)
            .build();
        let tc = run_tc(&g, 1, 1);
        assert_eq!(tc.total(), 1);
    }

    #[test]
    fn stride_sampling_undercounts() {
        let g = GraphSpec::uniform(100, 1000).seed(29).build();
        let full = run_tc(&g, 1, 2);
        let sampled = run_tc(&g, 4, 2);
        assert!(sampled.total() <= full.total());
    }

    #[test]
    fn triangle_free_graph_counts_zero() {
        let g = GraphBuilder::new(4)
            .undirected()
            .edges(vec![(0, 1), (2, 3)])
            .build();
        assert_eq!(run_tc(&g, 1, 1).total(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_stride_panics() {
        Tc::with_stride(0);
    }
}
