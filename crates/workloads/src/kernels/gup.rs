//! Graph update (dynamic-graph category).
//!
//! Applies a deterministic batch of edge deletions and insertions to a
//! mutable copy of the input graph: lookups are dependent pointer chases,
//! mutations are shifting stores. Inapplicable to PIM-Atomic (complex
//! operations, Table III).

use super::{Applicability, Category, Kernel, OffloadTarget};
use crate::framework::Framework;
use graphpim_graph::generate::SplitMix64;
use graphpim_graph::{CsrGraph, DynamicGraph, VertexId};

/// Batch edge update workload.
#[derive(Debug)]
pub struct GUp {
    seed: u64,
    deletions: usize,
    insertions: usize,
    final_edges: usize,
}

impl GUp {
    /// Creates the kernel; the update batch is derived from `seed`.
    pub fn new(seed: u64) -> Self {
        GUp {
            seed,
            deletions: 0,
            insertions: 0,
            final_edges: 0,
        }
    }

    /// Edges actually deleted.
    pub fn deletions(&self) -> usize {
        self.deletions
    }

    /// Edges actually inserted.
    pub fn insertions(&self) -> usize {
        self.insertions
    }

    /// Edge count after all updates.
    pub fn final_edges(&self) -> usize {
        self.final_edges
    }
}

impl Kernel for GUp {
    fn name(&self) -> &'static str {
        "GUp"
    }

    fn category(&self) -> Category {
        Category::DynamicGraph
    }

    fn applicability(&self) -> Applicability {
        Applicability::Inapplicable("Complex operation")
    }

    fn offload_target(&self) -> Option<OffloadTarget> {
        None
    }

    fn run(&mut self, graph: &CsrGraph, fw: &mut Framework<'_>) {
        let n = graph.vertex_count();
        let mut dynamic = DynamicGraph::from_csr(graph);
        let adjacency_base = fw.structure_malloc((graph.edge_count() as u64 + 1) * 16);
        let batch = (graph.edge_count() / 10).max(1);
        let mut rng = SplitMix64::new(self.seed ^ 0x6775_7064);

        // Deterministic update stream: alternate deletions of existing
        // edges and insertions of fresh ones.
        let mut ops: Vec<(bool, VertexId, VertexId)> = Vec::with_capacity(batch * 2);
        let edges: Vec<_> = graph.iter_edges().collect();
        for i in 0..batch {
            if n == 0 || edges.is_empty() {
                break;
            }
            let (u, v) = edges[(rng.next_below(edges.len() as u64)) as usize];
            ops.push((false, u, v)); // delete
            let nu = rng.next_below(n as u64) as VertexId;
            let nv = rng.next_below(n as u64) as VertexId;
            if nu != nv {
                ops.push((true, nu, nv)); // insert
            }
            let _ = i;
        }

        self.deletions = 0;
        self.insertions = 0;
        for (i, &(insert, u, v)) in ops.iter().enumerate() {
            fw.spread(i);
            {
                fw.compute(3);
                // Search u's list: dependent probes.
                let deg = dynamic.out_degree(u).max(1);
                let probes = (deg as f64).log2().ceil() as u32 + 1;
                for p in 0..probes {
                    fw.load(
                        adjacency_base + (u as u64 * 64 + p as u64 * 8) % (1 << 30),
                        true,
                    );
                    fw.branch(false, true);
                }
                if insert {
                    if dynamic.add_edge(u, v) {
                        self.insertions += 1;
                        fw.store(adjacency_base + (u as u64 * 64) % (1 << 30));
                        fw.store(adjacency_base + (u as u64 * 64 + 8) % (1 << 30));
                    }
                } else if dynamic.remove_edge(u, v) {
                    self.deletions += 1;
                    // Compacting shift.
                    fw.store(adjacency_base + (u as u64 * 64) % (1 << 30));
                    fw.compute(2);
                }
            }
        }
        fw.barrier();
        self.final_edges = dynamic.edge_count();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CollectTrace;
    use graphpim_graph::generate::GraphSpec;

    fn run_gup(graph: &CsrGraph) -> GUp {
        let mut sink = CollectTrace::default();
        let mut gu = GUp::new(9);
        let mut fw = Framework::new(2, &mut sink);
        gu.run(graph, &mut fw);
        fw.finish();
        gu
    }

    #[test]
    fn edge_count_balances() {
        let g = GraphSpec::uniform(80, 600).seed(7).build();
        let gu = run_gup(&g);
        assert_eq!(
            gu.final_edges(),
            g.edge_count() - gu.deletions() + gu.insertions()
        );
        assert!(gu.deletions() > 0);
    }

    #[test]
    fn deterministic() {
        let g = GraphSpec::uniform(80, 600).seed(7).build();
        let a = run_gup(&g);
        let b = run_gup(&g);
        assert_eq!(a.final_edges(), b.final_edges());
        assert_eq!(a.insertions(), b.insertions());
    }

    #[test]
    fn not_offloadable() {
        assert!(!GUp::new(1).applicability().offloadable());
    }
}
