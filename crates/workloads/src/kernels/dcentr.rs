//! Degree centrality.
//!
//! One parallel pass over all edges, atomically incrementing the centrality
//! property of each edge's target (`lock add` → HMC posted `Signed add`,
//! Table II). This is the most atomic-dense kernel in the suite — the paper
//! measures its atomic overhead at 64% (Figure 4) and its L3 MPKI at ~145
//! (Figure 2).

use super::{Applicability, Category, Kernel, OffloadTarget};
use crate::framework::{Framework, GraphAccess, PropertyArray};
use graphpim_graph::CsrGraph;

/// Degree-centrality kernel: centrality(v) = in-degree(v) + out-degree(v).
#[derive(Debug, Default)]
pub struct DCentr {
    centrality: Vec<u64>,
}

impl DCentr {
    /// Creates the kernel.
    pub fn new() -> Self {
        DCentr::default()
    }

    /// Centrality values after [`Kernel::run`].
    pub fn centrality(&self) -> &[u64] {
        &self.centrality
    }
}

impl Kernel for DCentr {
    fn name(&self) -> &'static str {
        "DC"
    }

    fn category(&self) -> Category {
        Category::GraphTraversal
    }

    fn applicability(&self) -> Applicability {
        Applicability::Applicable
    }

    fn offload_target(&self) -> Option<OffloadTarget> {
        Some(OffloadTarget {
            host_instruction: "lock add",
            pim_atomic_type: "Signed add",
        })
    }

    fn run(&mut self, graph: &CsrGraph, fw: &mut Framework<'_>) {
        let n = graph.vertex_count();
        let access = GraphAccess::new(fw, graph);
        let mut centrality = PropertyArray::new(fw, n.max(1), 0u64);
        for v in 0..n as u32 {
            fw.spread(v as usize);
            {
                let deg = access.degree(fw, v);
                fw.compute(6);
                // Out-degree contribution to own centrality: the owner is
                // the only writer, so a plain store suffices.
                let own = centrality.peek(v as usize) + deg as u64;
                centrality.set(fw, v as usize, own);
                // In-degree contributions: irregular atomic adds on the
                // targets' properties.
                access.for_each_neighbor(fw, v, |fw, nb, _| {
                    fw.compute(3);
                    centrality.fetch_add(fw, nb as usize, 1);
                });
            }
        }
        fw.barrier();
        self.centrality = centrality.as_slice().to_vec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CollectTrace;
    use graphpim_graph::generate::GraphSpec;
    use graphpim_graph::GraphBuilder;
    use graphpim_sim::trace::TraceOp;

    fn run_dc(graph: &CsrGraph, threads: usize) -> (DCentr, CollectTrace) {
        let mut sink = CollectTrace::default();
        let mut dc = DCentr::new();
        {
            let mut fw = Framework::new(threads, &mut sink);
            dc.run(graph, &mut fw);
            fw.finish();
        }
        (dc, sink)
    }

    #[test]
    fn centrality_is_in_plus_out_degree() {
        let g = GraphSpec::uniform(100, 600).seed(7).build();
        let (dc, _) = run_dc(&g, 4);
        let t = g.transpose();
        for v in 0..100u32 {
            let expect = g.out_degree(v) as u64 + t.out_degree(v) as u64;
            assert_eq!(dc.centrality()[v as usize], expect, "vertex {v}");
        }
    }

    #[test]
    fn one_atomic_per_edge() {
        let g = GraphBuilder::new(4)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .build();
        let (_, sink) = run_dc(&g, 2);
        let atomics: usize = (0..2)
            .map(|t| {
                sink.thread_ops(t)
                    .iter()
                    .filter(|op| matches!(op, TraceOp::Atomic { .. }))
                    .count()
            })
            .sum();
        assert_eq!(atomics, 3);
    }

    #[test]
    fn empty_graph_ok() {
        let g = GraphBuilder::new(0).build();
        let (dc, _) = run_dc(&g, 1);
        assert!(dc.centrality().len() <= 1);
    }

    #[test]
    fn self_loop_counts_both_ways() {
        let g = GraphBuilder::new(1).edge(0, 0).build();
        let (dc, _) = run_dc(&g, 1);
        assert_eq!(dc.centrality()[0], 2);
    }
}
