//! Graph construction (dynamic-graph category).
//!
//! Streams the input edge list into a mutable adjacency-list graph:
//! per-edge binary searches (dependent pointer-chasing loads), list
//! insertions (shifting stores), and periodic reallocation bursts. The
//! operations are "complex" in Table III's sense — multi-operand,
//! indirect — so no PIM-Atomic applies.

use super::{Applicability, Category, Kernel, OffloadTarget};
use crate::framework::{Framework, PropertyArray};
use graphpim_graph::{CsrGraph, DynamicGraph};

/// Streaming graph construction.
#[derive(Debug)]
pub struct GCons {
    #[allow(dead_code)]
    seed: u64,
    built_edges: usize,
    built_vertices: usize,
}

impl GCons {
    /// Creates the kernel.
    pub fn new(seed: u64) -> Self {
        GCons {
            seed,
            built_edges: 0,
            built_vertices: 0,
        }
    }

    /// Edges in the constructed graph.
    pub fn built_edges(&self) -> usize {
        self.built_edges
    }

    /// Vertices in the constructed graph.
    pub fn built_vertices(&self) -> usize {
        self.built_vertices
    }
}

impl Kernel for GCons {
    fn name(&self) -> &'static str {
        "GCons"
    }

    fn category(&self) -> Category {
        Category::DynamicGraph
    }

    fn applicability(&self) -> Applicability {
        Applicability::Inapplicable("Complex operation")
    }

    fn offload_target(&self) -> Option<OffloadTarget> {
        None
    }

    fn run(&mut self, graph: &CsrGraph, fw: &mut Framework<'_>) {
        let n = graph.vertex_count();
        let mut dynamic = DynamicGraph::with_vertices(n);
        let mut vertex_prop = PropertyArray::new(fw, n.max(1), 0u64);
        let adjacency_base = fw.structure_malloc((graph.edge_count() as u64 + 1) * 16);
        let edge_buffer = fw.meta_malloc((graph.edge_count() as u64 + 1) * 8);

        let edges: Vec<_> = graph.iter_edges().collect();
        for (idx, &(u, v)) in edges.iter().enumerate() {
            fw.spread(idx);
            {
                // Read the edge from the ingest buffer.
                fw.load(edge_buffer + idx as u64 * 8, false);
                fw.compute(2);
                // Binary search in u's adjacency: dependent loads.
                let deg = dynamic.out_degree(u);
                let probes = (deg.max(1) as f64).log2().ceil() as u32 + 1;
                for p in 0..probes {
                    fw.load(
                        adjacency_base + (u as u64 * 64 + p as u64 * 8) % (1 << 30),
                        true,
                    );
                    fw.branch(false, true);
                }
                let inserted = dynamic.add_edge(u, v);
                if inserted {
                    // Shifting insert: a couple of stores.
                    fw.store(adjacency_base + (u as u64 * 64) % (1 << 30));
                    fw.store(adjacency_base + (u as u64 * 64 + 8) % (1 << 30));
                    fw.compute(3);
                    // Occasional reallocation burst (capacity doubling).
                    let new_deg = dynamic.out_degree(u);
                    if new_deg.is_power_of_two() && new_deg >= 8 {
                        for b in 0..new_deg as u64 {
                            fw.load(adjacency_base + (u as u64 * 64 + b * 8) % (1 << 30), false);
                            fw.store(adjacency_base + (u as u64 * 64 + b * 8 + 8) % (1 << 30));
                        }
                    }
                    // Touch both endpoint properties.
                    vertex_prop.set(fw, u as usize, 1);
                    vertex_prop.set(fw, v as usize, 1);
                }
            }
        }
        fw.barrier();
        self.built_edges = dynamic.edge_count();
        self.built_vertices = dynamic.vertex_count();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CollectTrace;
    use graphpim_graph::generate::GraphSpec;

    #[test]
    fn constructs_every_edge() {
        let g = GraphSpec::uniform(100, 500).seed(3).build();
        let mut sink = CollectTrace::default();
        let mut gc = GCons::new(1);
        let mut fw = Framework::new(4, &mut sink);
        gc.run(&g, &mut fw);
        fw.finish();
        assert_eq!(gc.built_edges(), g.edge_count());
        assert_eq!(gc.built_vertices(), g.vertex_count());
    }

    #[test]
    fn emits_heavy_write_traffic() {
        use graphpim_sim::trace::TraceOp;
        let g = GraphSpec::uniform(50, 300).seed(5).build();
        let mut sink = CollectTrace::default();
        {
            let mut gc = GCons::new(1);
            let mut fw = Framework::new(1, &mut sink);
            gc.run(&g, &mut fw);
            fw.finish();
        }
        let ops = sink.thread_ops(0);
        let stores = ops
            .iter()
            .filter(|o| matches!(o, TraceOp::Store { .. }))
            .count();
        let atomics = ops
            .iter()
            .filter(|o| matches!(o, TraceOp::Atomic { .. }))
            .count();
        assert!(stores > g.edge_count(), "DG kernels are write heavy");
        assert_eq!(atomics, 0, "no PIM-applicable atomics");
    }

    #[test]
    fn metadata_is_dynamic_graph() {
        let gc = GCons::new(1);
        assert_eq!(gc.category(), Category::DynamicGraph);
        assert!(!gc.applicability().offloadable());
    }
}
