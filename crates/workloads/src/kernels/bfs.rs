//! Breadth-first search — the paper's running example (Figure 3).
//!
//! Frontier-synchronized BFS: each superstep expands the current frontier in
//! parallel; visiting a neighbor reads its depth property, and claims it
//! with a `lock cmpxchg` (→ HMC `CAS if equal`, Table II). The newly claimed
//! vertices form the next frontier.

use super::{Applicability, Category, Kernel, OffloadTarget};
use crate::framework::{Framework, GraphAccess, MetaQueue, PropertyArray};
use graphpim_graph::{CsrGraph, VertexId};

/// Depth marker for unvisited vertices (the `∞` of Figure 3).
pub const UNVISITED: u64 = u64::MAX;

/// Frontier-based BFS.
#[derive(Debug)]
pub struct Bfs {
    root: VertexId,
    depths: Vec<u64>,
}

impl Bfs {
    /// BFS from `root`.
    pub fn new(root: VertexId) -> Self {
        Bfs {
            root,
            depths: Vec::new(),
        }
    }

    /// Depth of `v` after [`Kernel::run`], or `None` if unreachable.
    pub fn depth(&self, v: VertexId) -> Option<u64> {
        match self.depths.get(v as usize) {
            Some(&UNVISITED) | None => None,
            Some(&d) => Some(d),
        }
    }

    /// All depths (`UNVISITED` = unreachable).
    pub fn depths(&self) -> &[u64] {
        &self.depths
    }
}

impl Kernel for Bfs {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn category(&self) -> Category {
        Category::GraphTraversal
    }

    fn applicability(&self) -> Applicability {
        Applicability::Applicable
    }

    fn offload_target(&self) -> Option<OffloadTarget> {
        Some(OffloadTarget {
            host_instruction: "lock cmpxchg",
            pim_atomic_type: "CAS if equal",
        })
    }

    fn run(&mut self, graph: &CsrGraph, fw: &mut Framework<'_>) {
        let n = graph.vertex_count();
        let access = GraphAccess::new(fw, graph);
        let mut depth = PropertyArray::new(fw, n.max(1), UNVISITED);
        let mut frontier_q = MetaQueue::new(fw, n.max(1));
        if n == 0 {
            self.depths = Vec::new();
            fw.barrier();
            return;
        }

        depth.poke(self.root as usize, 0); // initialization phase, untraced
        let mut frontier = vec![self.root];
        let mut level: u64 = 0;
        while !frontier.is_empty() {
            level += 1;
            let mut next = Vec::new();
            {
                for (i, &v) in frontier.iter().enumerate() {
                    fw.spread(i);
                    // Dequeue v and fetch its adjacency bounds (framework
                    // iterator overhead included).
                    fw.load(frontier_q.addr(0), false);
                    fw.compute(6);
                    access.degree(fw, v);
                    access.for_each_neighbor(fw, v, |fw, nb, _| {
                        fw.compute(3);
                        // Visit attempt: the CAS *is* the visited check
                        // (Section II-D: all neighbor property accesses go
                        // through CAS). Its address depends on the
                        // just-loaded neighbor id.
                        let (won, _) = depth.cas_fetch(fw, nb as usize, UNVISITED, level);
                        fw.branch(false, true); // branches on the CAS result
                        if won {
                            fw.compute(2);
                            frontier_q.push(fw, nb);
                            next.push(nb);
                        }
                    });
                }
            }
            fw.barrier();
            frontier_q.drain(fw);
            frontier = next;
        }
        self.depths = depth.as_slice().to_vec();
        fw.barrier();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CollectTrace;
    use crate::kernels::reference;
    use graphpim_graph::generate::GraphSpec;
    use graphpim_graph::GraphBuilder;
    use graphpim_sim::hmc::HmcAtomicOp;
    use graphpim_sim::trace::TraceOp;

    fn run_bfs(graph: &CsrGraph, root: VertexId, threads: usize) -> (Bfs, CollectTrace) {
        let mut sink = CollectTrace::default();
        let mut bfs = Bfs::new(root);
        {
            let mut fw = Framework::new(threads, &mut sink);
            bfs.run(graph, &mut fw);
            fw.finish();
        }
        (bfs, sink)
    }

    #[test]
    fn matches_oracle_on_diamond() {
        let g = GraphBuilder::new(5)
            .edge(0, 1)
            .edge(0, 2)
            .edge(1, 3)
            .edge(2, 3)
            .edge(3, 4)
            .build();
        let (bfs, _) = run_bfs(&g, 0, 2);
        let oracle = reference::bfs_depths(&g, 0);
        for v in 0..5u32 {
            assert_eq!(bfs.depth(v), oracle[v as usize], "vertex {v}");
        }
    }

    #[test]
    fn matches_oracle_on_random_graph() {
        let g = GraphSpec::uniform(300, 1500).seed(3).build();
        let (bfs, _) = run_bfs(&g, 0, 4);
        let oracle = reference::bfs_depths(&g, 0);
        for v in 0..300u32 {
            assert_eq!(bfs.depth(v), oracle[v as usize], "vertex {v}");
        }
    }

    #[test]
    fn unreachable_stays_unvisited() {
        let g = GraphBuilder::new(3).edge(0, 1).build();
        let (bfs, _) = run_bfs(&g, 0, 1);
        assert_eq!(bfs.depth(2), None);
    }

    #[test]
    fn emits_cas_atomics_on_property() {
        let g = GraphBuilder::new(3).edge(0, 1).edge(0, 2).build();
        let (_, sink) = run_bfs(&g, 0, 1);
        let cas_count = sink
            .thread_ops(0)
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    TraceOp::Atomic {
                        op: HmcAtomicOp::CasIfEqual8,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(cas_count, 2, "one CAS per examined edge");
    }

    #[test]
    fn barriers_separate_levels() {
        let g = GraphBuilder::new(4)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .build();
        let (_, sink) = run_bfs(&g, 0, 2);
        // 3 levels + final barrier(s).
        assert!(sink.barriers >= 3, "barriers: {}", sink.barriers);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(0).build();
        let (bfs, _) = run_bfs(&g, 0, 2);
        assert!(bfs.depths().is_empty());
    }

    #[test]
    fn kernel_metadata() {
        let bfs = Bfs::new(0);
        assert_eq!(bfs.name(), "BFS");
        assert_eq!(bfs.category(), Category::GraphTraversal);
        assert!(bfs.applicability().offloadable());
    }
}
