//! Single-source shortest path.
//!
//! Frontier-synchronized Bellman-Ford: each superstep relaxes the out-edges
//! of the vertices whose distance improved in the previous step. Distance
//! updates use a `lock cmpxchg` retry loop (→ HMC `CAS if equal`, Table II).

use super::{Applicability, Category, Kernel, OffloadTarget};
use crate::framework::{Framework, GraphAccess, MetaQueue, PropertyArray};
use graphpim_graph::{CsrGraph, VertexId};

/// Distance marker for unreached vertices.
pub const UNREACHED: u64 = u64::MAX;

/// Frontier-based Bellman-Ford SSSP.
#[derive(Debug)]
pub struct Sssp {
    root: VertexId,
    translated: bool,
    dist: Vec<u64>,
}

impl Sssp {
    /// SSSP from `root`.
    pub fn new(root: VertexId) -> Self {
        Sssp {
            root,
            translated: false,
            dist: Vec::new(),
        }
    }

    /// SSSP whose relaxation idiom is translated by the POU into a single
    /// HMC `CAS if less` command (the Section III-B instruction-block
    /// translation) instead of a `CAS if equal` retry loop. Distances are
    /// kept within `i64::MAX` (the command compares signed).
    pub fn with_translated_cas(root: VertexId) -> Self {
        Sssp {
            root,
            translated: true,
            dist: Vec::new(),
        }
    }

    /// Distance to `v`, or `None` if unreachable.
    pub fn distance(&self, v: VertexId) -> Option<u64> {
        match self.dist.get(v as usize) {
            Some(&UNREACHED) | None => None,
            Some(&d) => Some(d),
        }
    }

    /// All distances (`UNREACHED` = unreachable).
    pub fn distances(&self) -> &[u64] {
        &self.dist
    }
}

impl Kernel for Sssp {
    fn name(&self) -> &'static str {
        "SSSP"
    }

    fn category(&self) -> Category {
        Category::GraphTraversal
    }

    fn applicability(&self) -> Applicability {
        Applicability::Applicable
    }

    fn offload_target(&self) -> Option<OffloadTarget> {
        Some(OffloadTarget {
            host_instruction: "lock cmpxchg",
            pim_atomic_type: "CAS if equal",
        })
    }

    fn run(&mut self, graph: &CsrGraph, fw: &mut Framework<'_>) {
        let n = graph.vertex_count();
        let access = GraphAccess::new(fw, graph);
        let mut dist = PropertyArray::new(fw, n.max(1), UNREACHED);
        let mut frontier_q = MetaQueue::new(fw, n.max(1));
        if n == 0 {
            self.dist = Vec::new();
            fw.barrier();
            return;
        }

        // The signed CAS-if-less command needs distances within i64 range.
        let unreached = if self.translated {
            i64::MAX as u64
        } else {
            UNREACHED
        };
        for v in 0..n {
            dist.poke(v, unreached);
        }
        dist.poke(self.root as usize, 0);
        let mut frontier = vec![self.root];
        let mut in_next = vec![false; n];
        while !frontier.is_empty() {
            let mut next: Vec<VertexId> = Vec::new();
            {
                for (i, &v) in frontier.iter().enumerate() {
                    fw.spread(i);
                    fw.load(frontier_q.addr(0), false);
                    let dv = dist.get(fw, v as usize, false);
                    fw.compute(6);
                    access.degree(fw, v);
                    access.for_each_neighbor(fw, v, |fw, nb, e| {
                        let w = access.weight(fw, e) as u64;
                        fw.compute(4); // nd = dv + w + loop overhead
                        let nd = dv.saturating_add(w);
                        // Relaxation: atomic-minimum CAS idiom; the CAS
                        // return value doubles as the distance check.
                        let (improved, _) = if self.translated {
                            dist.cas_min_translated(fw, nb as usize, nd)
                        } else {
                            dist.cas_min(fw, nb as usize, nd)
                        };
                        if improved {
                            fw.compute(2);
                            frontier_q.push(fw, nb);
                            if !in_next[nb as usize] {
                                in_next[nb as usize] = true;
                                next.push(nb);
                            }
                        }
                    });
                }
            }
            fw.barrier();
            frontier_q.drain(fw);
            for &v in &next {
                in_next[v as usize] = false;
            }
            frontier = next;
        }
        self.dist = dist
            .as_slice()
            .iter()
            .map(|&d| if d == unreached { UNREACHED } else { d })
            .collect();
        fw.barrier();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CollectTrace;
    use crate::kernels::reference;
    use graphpim_graph::generate::GraphSpec;
    use graphpim_graph::GraphBuilder;

    fn run_sssp(graph: &CsrGraph, root: VertexId, threads: usize) -> Sssp {
        let mut sink = CollectTrace::default();
        let mut sssp = Sssp::new(root);
        let mut fw = Framework::new(threads, &mut sink);
        sssp.run(graph, &mut fw);
        fw.finish();
        sssp
    }

    #[test]
    fn matches_dijkstra_on_weighted_graph() {
        let g = GraphSpec::uniform(150, 900).seed(5).weighted().build();
        let sssp = run_sssp(&g, 0, 4);
        let oracle = reference::dijkstra(&g, 0);
        for v in 0..150u32 {
            assert_eq!(sssp.distance(v), oracle[v as usize], "vertex {v}");
        }
    }

    #[test]
    fn unweighted_reduces_to_bfs() {
        let g = GraphSpec::uniform(100, 500).seed(9).build();
        let sssp = run_sssp(&g, 0, 2);
        let oracle = reference::bfs_depths(&g, 0);
        for v in 0..100u32 {
            assert_eq!(sssp.distance(v), oracle[v as usize], "vertex {v}");
        }
    }

    #[test]
    fn picks_lighter_longer_path() {
        let g = GraphBuilder::new(4)
            .weighted_edge(0, 3, 10)
            .weighted_edge(0, 1, 1)
            .weighted_edge(1, 2, 1)
            .weighted_edge(2, 3, 1)
            .build();
        let sssp = run_sssp(&g, 0, 1);
        assert_eq!(sssp.distance(3), Some(3));
    }

    #[test]
    fn unreachable_is_none() {
        let g = GraphBuilder::new(3).edge(0, 1).build();
        let sssp = run_sssp(&g, 0, 1);
        assert_eq!(sssp.distance(2), None);
    }
}

#[cfg(test)]
mod translated_tests {
    use super::*;
    use crate::framework::CollectTrace;
    use crate::kernels::reference;
    use graphpim_graph::generate::GraphSpec;
    use graphpim_sim::hmc::HmcAtomicOp;
    use graphpim_sim::trace::TraceOp;

    #[test]
    fn translated_variant_matches_oracle() {
        let g = GraphSpec::uniform(120, 700).seed(21).weighted().build();
        let mut sink = CollectTrace::default();
        let mut sssp = Sssp::with_translated_cas(0);
        let mut fw = Framework::new(4, &mut sink);
        sssp.run(&g, &mut fw);
        fw.finish();
        let oracle = reference::dijkstra(&g, 0);
        for v in 0..120u32 {
            assert_eq!(sssp.distance(v), oracle[v as usize], "vertex {v}");
        }
    }

    #[test]
    fn translated_variant_emits_cas_if_less() {
        let g = GraphSpec::uniform(40, 200).seed(5).weighted().build();
        let mut sink = CollectTrace::default();
        {
            let mut sssp = Sssp::with_translated_cas(0);
            let mut fw = Framework::new(1, &mut sink);
            sssp.run(&g, &mut fw);
            fw.finish();
        }
        let ops = sink.thread_ops(0);
        let less = ops
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    TraceOp::Atomic {
                        op: HmcAtomicOp::CasIfLess16,
                        ..
                    }
                )
            })
            .count();
        let equal = ops
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    TraceOp::Atomic {
                        op: HmcAtomicOp::CasIfEqual8,
                        ..
                    }
                )
            })
            .count();
        assert!(less > 0, "translated idiom must use CAS if less");
        assert_eq!(equal, 0, "no retry-loop CAS remains");
    }

    #[test]
    fn both_variants_agree() {
        let g = GraphSpec::uniform(80, 500).seed(9).weighted().build();
        let run = |mut k: Sssp| {
            let mut sink = CollectTrace::default();
            let mut fw = Framework::new(2, &mut sink);
            k.run(&g, &mut fw);
            fw.finish();
            k.distances().to_vec()
        };
        assert_eq!(run(Sssp::new(0)), run(Sssp::with_translated_cas(0)));
    }
}
