#![warn(missing_docs)]

//! GraphBIG-style graph kernels and the trace-recording graph framework.
//!
//! This crate is the *software* half of the GraphPIM stack. It mirrors how
//! the paper's workloads sit on a graph framework (Section II-B):
//!
//! * [`framework`] — the framework layer: property arrays allocated through
//!   `pmr_malloc` into the PIM memory region, graph-structure accessors, and
//!   the instruction-trace recorder. Kernels written against this API both
//!   *compute real results* and emit the instruction streams the timing
//!   substrate consumes — no application-level code knows anything about
//!   PIM, exactly as GraphPIM promises.
//! * [`kernels`] — the thirteen GraphBIG workloads of Table III with their
//!   offloading targets (Table II) and PIM applicability classification.
//! * [`apps`] — the two real-world applications of Section IV-B5: financial
//!   fraud detection and an item-to-item recommender.
//!
//! # Example
//!
//! ```
//! use graphpim_graph::GraphBuilder;
//! use graphpim_workloads::framework::{CollectTrace, Framework};
//! use graphpim_workloads::kernels::{Bfs, Kernel};
//!
//! let graph = GraphBuilder::new(4).edge(0, 1).edge(1, 2).edge(1, 3).build();
//! let mut sink = CollectTrace::default();
//! let mut fw = Framework::new(2, &mut sink);
//! let mut bfs = Bfs::new(0);
//! bfs.run(&graph, &mut fw);
//! fw.finish();
//! assert_eq!(bfs.depth(3), Some(2));
//! ```

pub mod apps;
pub mod framework;
pub mod kernels;
