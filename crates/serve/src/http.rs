//! Minimal HTTP/1.1 over `std::net` — just enough protocol for the
//! experiment service and its clients, with no external dependencies
//! (the build environment is offline; see `vendor/README.md`).
//!
//! Supported on the server side: `GET`/`POST`, `Content-Length` request
//! bodies, fixed-length responses, and `chunked` transfer encoding for
//! streamed NDJSON. Every connection serves exactly one request
//! (`Connection: close`): the service's requests are either sub-
//! millisecond lookups or long-lived event streams, so keep-alive would
//! buy nothing and cost connection-state bookkeeping.
//!
//! Paths and query strings are matched literally — no percent-decoding.
//! Every identifier the API embeds in a URL (figure ids, run-key stems,
//! kernel names) is URL-safe ASCII by construction, so decoding would
//! only widen the accepted-input space.

use std::io::{self, BufRead, Write};

/// Upper bound on the request line and any single header line.
const MAX_LINE: usize = 8 * 1024;
/// Upper bound on the number of request headers.
const MAX_HEADERS: usize = 64;
/// Upper bound on a request body (sweep submissions are tiny).
const MAX_BODY: usize = 1024 * 1024;

/// One parsed HTTP/1.1 request.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercase as sent.
    pub method: String,
    /// Path without the query string, e.g. `/figures/fig07`.
    pub path: String,
    /// Decoded `key=value` query pairs, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Reads and parses one request from `stream`.
    ///
    /// Fails with `InvalidData` on malformed requests and oversized
    /// lines/headers/bodies; the caller answers with `400` or drops the
    /// connection.
    pub fn read_from(stream: &mut impl BufRead) -> io::Result<Request> {
        let line = read_line(stream)?;
        let mut parts = line.split(' ');
        let method = parts.next().unwrap_or("").to_string();
        let target = parts.next().unwrap_or("").to_string();
        let version = parts.next().unwrap_or("");
        if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
            return Err(bad("malformed request line"));
        }
        let mut headers = Vec::new();
        loop {
            let line = read_line(stream)?;
            if line.is_empty() {
                break;
            }
            if headers.len() >= MAX_HEADERS {
                return Err(bad("too many headers"));
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| bad("malformed header"))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        let content_length = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .map(|(_, v)| v.parse::<usize>().map_err(|_| bad("bad content-length")))
            .transpose()?
            .unwrap_or(0);
        if content_length > MAX_BODY {
            return Err(bad("body too large"));
        }
        let mut body = vec![0u8; content_length];
        stream.read_exact(&mut body)?;
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), parse_query(q)),
            None => (target, Vec::new()),
        };
        Ok(Request {
            method,
            path,
            query,
            headers,
            body,
        })
    }

    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect()
}

/// Reads one CRLF- (or LF-) terminated line, without the terminator.
fn read_line(stream: &mut impl BufRead) -> io::Result<String> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        stream.read_exact(&mut byte)?;
        if byte[0] == b'\n' {
            break;
        }
        if line.len() >= MAX_LINE {
            return Err(bad("line too long"));
        }
        line.push(byte[0]);
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| bad("non-UTF-8 header data"))
}

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Standard reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A fixed-length response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (e.g. `X-Trace-Id`), written verbatim.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A `text/plain` response (the `/metrics` exposition format).
    pub fn text(status: u16, content_type: &'static str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds one extra response header (builder style).
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Writes the full response (headers + body) to `w`.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Writer for a `Transfer-Encoding: chunked` response body: each
/// [`chunk`](ChunkedWriter::chunk) is flushed to the wire immediately,
/// so the client sees NDJSON events as they happen, not when the job
/// ends.
pub struct ChunkedWriter<W: Write> {
    w: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the response head and returns the chunk writer.
    pub fn start(w: W, status: u16, content_type: &str) -> io::Result<ChunkedWriter<W>> {
        ChunkedWriter::start_with_headers(w, status, content_type, &[])
    }

    /// Like [`start`](Self::start), with extra response headers (e.g.
    /// `X-Trace-Id` on an event stream).
    pub fn start_with_headers(
        mut w: W,
        status: u16,
        content_type: &str,
        headers: &[(&str, &str)],
    ) -> io::Result<ChunkedWriter<W>> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n",
            status,
            reason(status),
            content_type
        )?;
        for (name, value) in headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.flush()?;
        Ok(ChunkedWriter { w })
    }

    /// Sends one chunk (skipping empty ones — an empty chunk would
    /// terminate the stream).
    pub fn chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", bytes.len())?;
        self.w.write_all(bytes)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Sends the terminating chunk.
    pub fn finish(mut self) -> io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

/// Whether `e` is a stalled-consumer write failure: the peer stopped
/// reading, the kernel send buffer filled, and the socket's write
/// timeout expired. POSIX surfaces this as `WouldBlock` (Linux) or
/// `TimedOut` (some platforms), distinct from a hard disconnect
/// (`BrokenPipe`/`ConnectionReset`). Streaming endpoints treat both as
/// a clean follower drop — the work the stream reports keeps running —
/// but only stalled drops indicate a client that is wedged rather than
/// gone.
pub fn is_stalled_write(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Blocking HTTP client for the same dialect the server speaks — used
/// by `servectl`, the load generator, and the integration tests.
pub mod client {
    use std::io::{self, BufRead, BufReader, Write};
    use std::net::TcpStream;

    /// Issues `method path` against `addr` and returns
    /// `(status, body)`, decoding both fixed-length and chunked bodies.
    pub fn request(
        addr: &str,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        headers: &[(&str, &str)],
    ) -> io::Result<(u16, Vec<u8>)> {
        let (status, _, body) = request_full(addr, method, path, body, headers)?;
        Ok((status, body))
    }

    /// Like [`request`], additionally returning the response headers
    /// (lowercased names) — how callers read `X-Trace-Id`.
    #[allow(clippy::type_complexity)]
    pub fn request_full(
        addr: &str,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        headers: &[(&str, &str)],
    ) -> io::Result<(u16, Vec<(String, String)>, Vec<u8>)> {
        let mut stream = TcpStream::connect(addr)?;
        send_request(&mut stream, addr, method, path, body, headers)?;
        let mut reader = BufReader::new(stream);
        let (status, response_headers) = read_head(&mut reader)?;
        let body = read_body(&mut reader, &response_headers)?;
        Ok((status, response_headers, body))
    }

    /// `GET path`.
    pub fn get(addr: &str, path: &str) -> io::Result<(u16, Vec<u8>)> {
        request(addr, "GET", path, None, &[])
    }

    /// `POST path` with a JSON body.
    pub fn post(addr: &str, path: &str, body: &str) -> io::Result<(u16, Vec<u8>)> {
        request(addr, "POST", path, Some(body.as_bytes()), &[])
    }

    /// `GET path` streaming a chunked NDJSON body: `on_line` fires per
    /// complete line, as it arrives. Returns the status code.
    pub fn get_streaming(
        addr: &str,
        path: &str,
        headers: &[(&str, &str)],
        on_line: &mut dyn FnMut(&str),
    ) -> io::Result<u16> {
        let mut stream = TcpStream::connect(addr)?;
        send_request(&mut stream, addr, "GET", path, None, headers)?;
        let mut reader = BufReader::new(stream);
        let (status, response_headers) = read_head(&mut reader)?;
        let chunked = header(&response_headers, "transfer-encoding")
            .is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
        let mut pending = String::new();
        let mut emit = |bytes: &[u8], pending: &mut String| {
            pending.push_str(&String::from_utf8_lossy(bytes));
            while let Some(pos) = pending.find('\n') {
                let line: String = pending.drain(..=pos).collect();
                on_line(line.trim_end_matches(['\n', '\r']));
            }
        };
        if chunked {
            while let Some(chunk) = read_chunk(&mut reader)? {
                emit(&chunk, &mut pending);
            }
        } else {
            let body = read_body(&mut reader, &response_headers)?;
            emit(&body, &mut pending);
        }
        if !pending.is_empty() {
            on_line(&pending);
        }
        Ok(status)
    }

    fn send_request(
        stream: &mut TcpStream,
        addr: &str,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        headers: &[(&str, &str)],
    ) -> io::Result<()> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if let Some(body) = body {
            head.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        if let Some(body) = body {
            stream.write_all(body)?;
        }
        stream.flush()
    }

    fn read_head(reader: &mut impl BufRead) -> io::Result<(u16, Vec<(String, String)>)> {
        let status_line = read_line(reader)?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut headers = Vec::new();
        loop {
            let line = read_line(reader)?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        Ok((status, headers))
    }

    fn read_body(reader: &mut impl BufRead, headers: &[(String, String)]) -> io::Result<Vec<u8>> {
        if header(headers, "transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked")) {
            let mut body = Vec::new();
            while let Some(chunk) = read_chunk(reader)? {
                body.extend_from_slice(&chunk);
            }
            return Ok(body);
        }
        match header(headers, "content-length").and_then(|v| v.parse::<usize>().ok()) {
            Some(len) => {
                let mut body = vec![0u8; len];
                reader.read_exact(&mut body)?;
                Ok(body)
            }
            None => {
                let mut body = Vec::new();
                reader.read_to_end(&mut body)?;
                Ok(body)
            }
        }
    }

    /// Reads one chunk; `None` on the terminating zero-length chunk.
    fn read_chunk(reader: &mut impl BufRead) -> io::Result<Option<Vec<u8>>> {
        let size_line = read_line(reader)?;
        let size =
            usize::from_str_radix(size_line.trim(), 16).map_err(|_| bad("malformed chunk size"))?;
        if size == 0 {
            let _ = read_line(reader); // trailing CRLF
            return Ok(None);
        }
        let mut chunk = vec![0u8; size];
        reader.read_exact(&mut chunk)?;
        let _ = read_line(reader)?; // chunk-terminating CRLF
        Ok(Some(chunk))
    }

    fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn read_line(reader: &mut impl BufRead) -> io::Result<String> {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }

    fn bad(what: &str) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, what.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Read};

    fn parse(raw: &str) -> io::Result<Request> {
        Request::read_from(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_with_query() {
        let req =
            parse("GET /traces/BFS?size=1k&supersteps=0..4 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/traces/BFS");
        assert_eq!(req.query_param("size"), Some("1k"));
        assert_eq!(req.query_param("supersteps"), Some("0..4"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body_and_lowercases_headers() {
        let req = parse(
            "POST /sweeps HTTP/1.1\r\nX-Client-Id: alice\r\nContent-Length: 15\r\n\r\n{\"fig\":\"fig07\"}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.header("x-client-id"), Some("alice"));
        assert_eq!(req.body, b"{\"fig\":\"fig07\"}");
    }

    #[test]
    fn rejects_garbage_and_oversized_bodies() {
        assert!(parse("NOT-HTTP\r\n\r\n").is_err());
        assert!(parse("GET /x FTP/1.0\r\n\r\n").is_err());
        let huge = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 2 << 20);
        assert!(parse(&huge).is_err());
        assert!(parse("GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err());
    }

    #[test]
    fn response_wire_format_is_parseable_by_the_client() {
        let mut wire = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .write_to(&mut wire)
            .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn slow_client_times_out_and_classifies_as_stalled() {
        use std::net::{TcpListener, TcpStream};
        use std::time::Duration;
        // A follower that connects and then never reads: the server
        // side must escape its write within the socket write timeout
        // (not block forever) and the error must classify as stalled.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap(); // never read from
        let (server_side, _) = listener.accept().unwrap();
        server_side
            .set_write_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut writer = ChunkedWriter::start(server_side, 200, "application/x-ndjson").unwrap();
        // Fill the kernel send buffer until the write times out. Cap the
        // attempts so a broken timeout fails the test instead of hanging.
        let chunk = vec![b'x'; 256 * 1024];
        let mut stalled = None;
        for _ in 0..1024 {
            if let Err(e) = writer.chunk(&chunk) {
                stalled = Some(e);
                break;
            }
        }
        let e = stalled.expect("an unread socket must eventually time out");
        assert!(is_stalled_write(&e), "unexpected error kind: {e:?}");
        // Hard disconnects are NOT stalled writes.
        assert!(!is_stalled_write(&io::Error::from(
            io::ErrorKind::BrokenPipe
        )));
    }

    #[test]
    fn chunked_round_trip() {
        let mut wire = Vec::new();
        {
            let mut w = ChunkedWriter::start(&mut wire, 200, "application/x-ndjson").unwrap();
            w.chunk(b"{\"event\":\"queued\"}\n").unwrap();
            w.chunk(b"").unwrap(); // must not terminate the stream
            w.chunk(b"{\"event\":\"done\"}\n").unwrap();
            w.finish().unwrap();
        }
        // Decode with the client-side chunk reader.
        let text = String::from_utf8(wire.clone()).unwrap();
        let body_start = text.find("\r\n\r\n").unwrap() + 4;
        let mut reader = BufReader::new(&wire[body_start..]);
        let mut body = Vec::new();
        loop {
            let mut size_line = String::new();
            reader.read_line(&mut size_line).unwrap();
            let size = usize::from_str_radix(size_line.trim(), 16).unwrap();
            if size == 0 {
                break;
            }
            let mut chunk = vec![0u8; size];
            reader.read_exact(&mut chunk).unwrap();
            body.extend_from_slice(&chunk);
            let mut crlf = String::new();
            reader.read_line(&mut crlf).unwrap();
        }
        assert_eq!(body, b"{\"event\":\"queued\"}\n{\"event\":\"done\"}\n");
    }
}
