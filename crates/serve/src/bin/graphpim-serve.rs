//! The experiment-service daemon.
//!
//! ```text
//! graphpim-serve [--addr 127.0.0.1:7480] [--workers N] [--http-threads N]
//!                [--queue-budget SECONDS] [--client-cap N]
//! ```
//!
//! Scale and cache/store directories come from the usual environment
//! knobs (`GRAPHPIM_SCALE`, `GRAPHPIM_CACHE_DIR`, `GRAPHPIM_TRACE_STORE`,
//! ...). On `SIGINT`/`SIGTERM` (or `POST /shutdown`) the service drains
//! gracefully: it stops accepting, finishes every admitted run and
//! in-flight response, and exits 0. Cache entries are published
//! atomically as each run completes, so a drain never leaves torn state
//! behind.

use graphpim::experiments::Experiments;
use graphpim_serve::{AdmissionPolicy, ServeConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Set by the signal handler; polled by the main loop.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::SIGNALLED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: everything else happens on the main
        // loop, outside signal context.
        SIGNALLED.store(true, Ordering::Relaxed);
    }

    /// Installs `SIGINT`/`SIGTERM` handlers that request a drain.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: graphpim-serve [--addr HOST:PORT] [--workers N] [--http-threads N]\n\
         \x20                     [--queue-budget SECONDS] [--client-cap N]"
    );
    std::process::exit(2)
}

fn main() {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:7480".to_string(),
        ..ServeConfig::default()
    };
    let mut policy = AdmissionPolicy::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--workers" => cfg.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--http-threads" => {
                cfg.http_threads = value("--http-threads").parse().unwrap_or_else(|_| usage())
            }
            "--queue-budget" => {
                policy.queue_budget_seconds =
                    value("--queue-budget").parse().unwrap_or_else(|_| usage())
            }
            "--client-cap" => {
                policy.client_inflight_cap =
                    value("--client-cap").parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    cfg.policy = policy;

    #[cfg(unix)]
    sig::install();

    let ctx = Arc::new(Experiments::from_env());
    let scale = ctx.size();
    let handle = match graphpim_serve::start(cfg.clone(), ctx) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("graphpim-serve: cannot bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    // Stdout, flushed: boot scripts wait for this exact line.
    println!("graphpim-serve listening on http://{}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    eprintln!(
        "[serve] scale {scale}, {} workers, {} http threads, \
         budget {:.0}s, client cap {}",
        cfg.workers,
        cfg.http_threads,
        cfg.policy.queue_budget_seconds,
        cfg.policy.client_inflight_cap
    );

    while !SIGNALLED.load(Ordering::Relaxed) && !handle.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("[serve] draining: no new work; finishing admitted runs ...");
    handle.shutdown();
    eprintln!("[serve] drained; exiting");
}
