//! Command-line client for `graphpim-serve`.
//!
//! ```text
//! servectl [--addr HOST:PORT] <command> [args]
//!
//! commands:
//!   health                         GET /healthz
//!   stats [--watch SECONDS]        GET /stats (once, or polled forever)
//!   metrics [--lint]               GET /metrics (optionally lint the exposition)
//!   figures                        GET /figures
//!   figure <figNN>                 GET /figures/<figNN>
//!   counters <run-key-stem>        GET /counters/<stem>
//!   trace <kernel> [--size S] [--supersteps a..b]
//!   sweep <figNN | stem...> [--follow] [--client ID]
//!   job <id>                       GET /jobs/<id>
//!   shutdown                       POST /shutdown
//! ```
//!
//! Exits 0 iff the server answered 2xx. `sweep --follow` streams the
//! job's NDJSON events to stdout as they arrive.

use graphpim_serve::http::client;

const DEFAULT_ADDR: &str = "127.0.0.1:7480";

fn usage() -> ! {
    eprintln!(
        "usage: servectl [--addr HOST:PORT] <command> [args]\n\
         commands: health | stats [--watch SECONDS] | metrics [--lint] |\n\
         \x20         figures | figure <fig> | counters <stem> |\n\
         \x20         trace <kernel> [--size S] [--supersteps a..b] |\n\
         \x20         sweep <fig|stems...> [--follow] [--client ID] | job <id> | shutdown"
    );
    std::process::exit(2)
}

/// Prints a line to stdout, exiting quietly on a closed pipe (`| head`
/// must not turn into a panic).
fn emit(line: &str) {
    use std::io::Write;
    if writeln!(std::io::stdout(), "{line}").is_err() {
        std::process::exit(0);
    }
}

fn finish(result: std::io::Result<(u16, Vec<u8>)>) -> ! {
    match result {
        Ok((status, body)) => {
            emit(String::from_utf8_lossy(&body).trim_end());
            std::process::exit(if (200..300).contains(&status) { 0 } else { 1 })
        }
        Err(e) => {
            eprintln!("servectl: {e}");
            std::process::exit(1)
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = DEFAULT_ADDR.to_string();
    if let Some(pos) = args.iter().position(|a| a == "--addr") {
        if pos + 1 >= args.len() {
            usage();
        }
        addr = args.remove(pos + 1);
        args.remove(pos);
    }
    let Some(command) = args.first().cloned() else {
        usage()
    };
    let rest = &args[1..];

    match command.as_str() {
        "health" => finish(client::get(&addr, "/healthz")),
        "stats" => stats(&addr, rest),
        "metrics" => metrics(&addr, rest),
        "figures" => finish(client::get(&addr, "/figures")),
        "figure" => {
            let Some(fig) = rest.first() else { usage() };
            finish(client::get(&addr, &format!("/figures/{fig}")))
        }
        "counters" => {
            let Some(stem) = rest.first() else { usage() };
            finish(client::get(&addr, &format!("/counters/{stem}")))
        }
        "trace" => {
            let Some(kernel) = rest.first() else { usage() };
            let mut query = Vec::new();
            let mut it = rest[1..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--size" => match it.next() {
                        Some(s) => query.push(format!("size={s}")),
                        None => usage(),
                    },
                    "--supersteps" => match it.next() {
                        Some(s) => query.push(format!("supersteps={s}")),
                        None => usage(),
                    },
                    _ => usage(),
                }
            }
            let path = if query.is_empty() {
                format!("/traces/{kernel}")
            } else {
                format!("/traces/{kernel}?{}", query.join("&"))
            };
            finish(client::get(&addr, &path))
        }
        "job" => {
            let Some(id) = rest.first() else { usage() };
            finish(client::get(&addr, &format!("/jobs/{id}")))
        }
        "shutdown" => finish(client::post(&addr, "/shutdown", "{}")),
        "sweep" => sweep(&addr, rest),
        _ => usage(),
    }
}

/// `stats`: one `GET /stats`, or with `--watch N` a poll loop printing
/// each response until interrupted (or stdout closes — `emit` exits
/// quietly on a broken pipe).
fn stats(addr: &str, rest: &[String]) -> ! {
    let mut watch: Option<u64> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--watch" => match it.next().and_then(|s| s.parse().ok()) {
                Some(secs) if secs > 0 => watch = Some(secs),
                _ => usage(),
            },
            _ => usage(),
        }
    }
    let Some(interval) = watch else {
        finish(client::get(addr, "/stats"))
    };
    loop {
        match client::get(addr, "/stats") {
            Ok((status, body)) if (200..300).contains(&status) => {
                emit(String::from_utf8_lossy(&body).trim_end());
            }
            Ok((status, _)) => emit(&format!("servectl: /stats answered {status}")),
            Err(e) => emit(&format!("servectl: {e}")),
        }
        std::thread::sleep(std::time::Duration::from_secs(interval));
    }
}

/// `metrics`: fetches `GET /metrics` and prints the exposition. With
/// `--lint`, additionally runs the strict exposition linter on the live
/// scrape and exits nonzero on any violation.
fn metrics(addr: &str, rest: &[String]) -> ! {
    let lint = match rest {
        [] => false,
        [flag] if flag == "--lint" => true,
        _ => usage(),
    };
    let (status, body) = match client::get(addr, "/metrics") {
        Ok(ok) => ok,
        Err(e) => {
            eprintln!("servectl: {e}");
            std::process::exit(1)
        }
    };
    let text = String::from_utf8_lossy(&body);
    emit(text.trim_end());
    if !(200..300).contains(&status) {
        std::process::exit(1);
    }
    if lint {
        if let Err(errors) = graphpim::obs::prom::lint(&text) {
            for (line, message) in &errors {
                eprintln!("servectl: lint: line {line}: {message}");
            }
            std::process::exit(1);
        }
        eprintln!("servectl: lint: ok");
    }
    std::process::exit(0)
}

fn sweep(addr: &str, rest: &[String]) -> ! {
    let mut follow = false;
    let mut client_id: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--follow" => follow = true,
            "--client" => match it.next() {
                Some(id) => client_id = Some(id.clone()),
                None => usage(),
            },
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        usage();
    }
    // One figure id, or a list of run-key stems.
    let body = if targets.len() == 1 && targets[0].starts_with("fig") {
        format!("{{\"fig\": \"{}\"}}", targets[0])
    } else {
        let stems = targets
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", ");
        format!("{{\"keys\": [{stems}]}}")
    };
    let mut headers: Vec<(&str, &str)> = Vec::new();
    if let Some(id) = &client_id {
        headers.push(("X-Client-Id", id));
    }
    let submitted = client::request(addr, "POST", "/sweeps", Some(body.as_bytes()), &headers);
    let (status, response) = match submitted {
        Ok(ok) => ok,
        Err(e) => {
            eprintln!("servectl: {e}");
            std::process::exit(1)
        }
    };
    let text = String::from_utf8_lossy(&response);
    emit(text.trim_end());
    if !(200..300).contains(&status) {
        std::process::exit(1);
    }
    if !follow {
        std::process::exit(0);
    }
    // Pull the job id out of the acceptance document and stream events.
    let job_id = graphpim::experiments::cache::json::parse(&text)
        .and_then(|doc| doc.as_object()?.get("job")?.as_u64());
    let Some(job_id) = job_id else {
        eprintln!("servectl: acceptance document has no job id");
        std::process::exit(1);
    };
    let path = format!("/jobs/{job_id}/events");
    let streamed = client::get_streaming(addr, &path, &[], &mut |line| {
        if !line.is_empty() {
            emit(line);
        }
    });
    match streamed {
        Ok(status) if (200..300).contains(&status) => std::process::exit(0),
        Ok(status) => {
            eprintln!("servectl: event stream answered {status}");
            std::process::exit(1)
        }
        Err(e) => {
            eprintln!("servectl: {e}");
            std::process::exit(1)
        }
    }
}
