//! Priority job queue over the experiment engine.
//!
//! A **job** is one sweep submission (a set of run keys); a **unit** is
//! one run. Units from all jobs share one priority queue ordered by the
//! [cost model](crate::cost)'s estimate — shortest job first — so a
//! cheap interactive figure never waits behind a bulk LDBC-1M sweep
//! that happened to arrive first. Ties (including all already-cached
//! units, which estimate to zero) break by submission order.
//!
//! Workers resolve units through
//! [`Experiments::metrics_for`], which deduplicates concurrent work per
//! key process-wide (per-key `OnceLock`): sixteen clients sweeping the
//! same figure cost one simulation per key, and the scheduler does not
//! need its own key-level dedup to uphold that invariant — the engine
//! is the single source of truth. After each unit the worker feeds the
//! observed wall time back into the cost model (simulated and replayed
//! runs only) and seeds the size's skew statistic while the graph is
//! memo-resident.
//!
//! Every state change appends an NDJSON event to the owning job, which
//! `GET /jobs/{id}/events` streams to clients as chunks.

use crate::admission::{AdmissionPolicy, Shed};
use crate::cost::CostModel;
use graphpim::experiments::profile::RunSource;
use graphpim::experiments::{Experiments, RunKey};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Jobs retained for `GET /jobs/{id}` after completion. Old completed
/// jobs age out FIFO; in-flight jobs are never evicted.
const JOB_HISTORY: usize = 256;

/// One sweep submission and its event log.
#[derive(Debug)]
pub struct Job {
    /// Service-unique job id.
    pub id: u64,
    /// Owning client (from `X-Client-Id` or the peer address).
    pub client: String,
    /// Human-readable label, e.g. `fig07` or `keys:3`.
    pub label: String,
    /// Request-correlated trace ID, assigned at the acceptor and
    /// carried by every event line, log line, run record, and Perfetto
    /// export the job causes.
    pub trace: String,
    /// Number of run units in the job.
    pub total: usize,
    /// Admission-time cost estimate, seconds.
    pub est_seconds: f64,
    state: Mutex<JobState>,
    events_cv: Condvar,
}

#[derive(Debug)]
struct JobState {
    /// NDJSON event lines, append-only.
    events: Vec<String>,
    /// Units not yet finished.
    remaining: usize,
    /// Set once every unit finished (also true for empty jobs).
    done: bool,
}

impl Job {
    fn new(
        id: u64,
        client: &str,
        label: &str,
        trace: &str,
        total: usize,
        est_seconds: f64,
    ) -> Arc<Job> {
        Arc::new(Job {
            id,
            client: client.to_string(),
            label: label.to_string(),
            trace: trace.to_string(),
            total,
            est_seconds,
            state: Mutex::new(JobState {
                events: Vec::new(),
                remaining: total,
                done: total == 0,
            }),
            events_cv: Condvar::new(),
        })
    }

    fn push_event(&self, line: String) {
        let mut state = crate::sync::lock(&self.state);
        state.events.push(line);
        self.events_cv.notify_all();
    }

    /// Marks one unit finished; returns `true` only for the call that
    /// completed the job (so exactly one worker performs completion
    /// bookkeeping). For that call, the terminal `done` event and the
    /// done flag land **atomically** (one lock acquisition), so an
    /// observer that sees `done == true` is guaranteed the event log is
    /// complete.
    fn finish_unit(&self) -> bool {
        let mut state = crate::sync::lock(&self.state);
        state.remaining = state.remaining.saturating_sub(1);
        let completed = state.remaining == 0 && !state.done;
        if completed {
            state.done = true;
            let line = format!(
                "{{\"event\": \"done\", \"job\": {}, \"trace\": \"{}\", \"runs\": {}}}",
                self.id, self.trace, self.total
            );
            state.events.push(line);
        }
        self.events_cv.notify_all();
        completed
    }

    /// Whether every unit has finished.
    pub fn done(&self) -> bool {
        crate::sync::lock(&self.state).done
    }

    /// Events from index `from` on, plus the next index and the done
    /// flag. With `wait`, blocks (bounded) until there is something new
    /// to report — the streaming endpoint's long-poll primitive.
    pub fn events_from(&self, from: usize, wait: bool) -> (Vec<String>, usize, bool) {
        let mut state = crate::sync::lock(&self.state);
        if wait {
            while state.events.len() <= from && !state.done {
                let (next, timeout) =
                    crate::sync::wait_timeout(&self.events_cv, state, Duration::from_secs(5));
                state = next;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        let events = state.events[from.min(state.events.len())..].to_vec();
        let next = from + events.len();
        (events, next, state.done)
    }

    /// The job as a JSON object (the `GET /jobs/{id}` document).
    pub fn snapshot_json(&self) -> String {
        let state = crate::sync::lock(&self.state);
        format!(
            "{{\"job\": {}, \"label\": \"{}\", \"client\": \"{}\", \"trace\": \"{}\", \
             \"total\": {}, \
             \"remaining\": {}, \"done\": {}, \"est_seconds\": {:?}, \"events\": {}}}",
            self.id,
            self.label,
            self.client,
            self.trace,
            self.total,
            state.remaining,
            state.done,
            self.est_seconds,
            state.events.len()
        )
    }
}

/// One queued run, ordered shortest-estimate-first, FIFO within ties.
struct Unit {
    /// Estimate in microseconds — integral so `Ord` is total.
    est_micros: u64,
    /// Submission sequence, the tiebreaker.
    seq: u64,
    /// Estimate in seconds, for queue-cost accounting.
    est_seconds: f64,
    /// When the unit entered the queue, for queue-wait accounting.
    queued_at: Instant,
    key: RunKey,
    job: Arc<Job>,
}

impl PartialEq for Unit {
    fn eq(&self, other: &Self) -> bool {
        (self.est_micros, self.seq) == (other.est_micros, other.seq)
    }
}
impl Eq for Unit {}
impl PartialOrd for Unit {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Unit {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.est_micros, self.seq).cmp(&(other.est_micros, other.seq))
    }
}

struct State {
    heap: BinaryHeap<Reverse<Unit>>,
    /// Summed estimates of queued (not yet started) units.
    queued_cost: f64,
    /// Units currently being resolved by workers.
    running: usize,
    /// No new submissions; workers exit once the heap is empty.
    draining: bool,
    /// Per-client in-flight (queued or running) job counts.
    inflight: HashMap<String, usize>,
    /// Recent jobs, newest last, for `GET /jobs/{id}`.
    jobs: VecDeque<Arc<Job>>,
    next_job: u64,
    next_seq: u64,
}

/// Queue-depth snapshot for `/stats` and `/healthz`.
#[derive(Debug, Clone, Copy)]
pub struct Depth {
    /// Units waiting in the queue.
    pub queued: usize,
    /// Summed estimated seconds of those units.
    pub queued_cost_seconds: f64,
    /// Units being resolved right now.
    pub running: usize,
    /// Jobs retained in history.
    pub jobs: usize,
}

/// Monotonic lifetime counters, exposed by `GET /metrics`.
#[derive(Debug, Default)]
struct LifetimeCounters {
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    units_resolved: AtomicU64,
    units_panicked: AtomicU64,
    shed_draining: AtomicU64,
    shed_budget: AtomicU64,
    shed_client_cap: AtomicU64,
}

/// Snapshot of the scheduler's monotonic lifetime counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct CounterSnapshot {
    /// Jobs admitted (including empty, instantly-done jobs).
    pub jobs_submitted: u64,
    /// Jobs whose last unit finished (empty jobs count at submission).
    pub jobs_completed: u64,
    /// Units resolved successfully.
    pub units_resolved: u64,
    /// Units whose engine run panicked.
    pub units_panicked: u64,
    /// Submissions shed per [`Shed`] reason id.
    pub shed: [(&'static str, u64); 3],
}

/// The shared scheduler: admission gate, priority queue, worker pool.
pub struct Scheduler {
    ctx: Arc<Experiments>,
    cost: Arc<CostModel>,
    policy: AdmissionPolicy,
    state: Mutex<State>,
    /// Signals workers that the heap or the draining flag changed.
    work_cv: Condvar,
    /// Signals `wait_idle` that the queue fully quiesced.
    idle_cv: Condvar,
    draining_flag: AtomicBool,
    counters: LifetimeCounters,
}

impl Scheduler {
    /// Starts a scheduler with `workers` resolver threads. The returned
    /// handles exit after [`drain`](Self::drain) once the queue empties;
    /// join them via the handle list.
    pub fn start(
        ctx: Arc<Experiments>,
        cost: Arc<CostModel>,
        policy: AdmissionPolicy,
        workers: usize,
    ) -> (Arc<Scheduler>, Vec<std::thread::JoinHandle<()>>) {
        let sched = Arc::new(Scheduler {
            ctx,
            cost,
            policy,
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                queued_cost: 0.0,
                running: 0,
                draining: false,
                inflight: HashMap::new(),
                jobs: VecDeque::new(),
                next_job: 1,
                next_seq: 0,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            draining_flag: AtomicBool::new(false),
            counters: LifetimeCounters::default(),
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let sched = Arc::clone(&sched);
                std::thread::spawn(move || sched.worker_loop())
            })
            .collect();
        (sched, handles)
    }

    /// The admission policy in force.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Whether the scheduler is draining.
    pub fn draining(&self) -> bool {
        self.draining_flag.load(Ordering::Relaxed)
    }

    /// Submits a sweep under the request's `trace` ID. Keys must be
    /// pre-validated; cached keys cost zero against the budget. Returns
    /// the job, or the shed reason.
    pub fn submit(
        &self,
        client: &str,
        label: &str,
        trace: &str,
        keys: Vec<RunKey>,
    ) -> Result<Arc<Job>, Shed> {
        // Estimate outside the lock: `cached_metrics` probes the disk.
        let estimates: Vec<f64> = keys
            .iter()
            .map(|key| {
                if self.ctx.cached_metrics(key).is_some() {
                    0.0
                } else {
                    self.cost.estimate(key)
                }
            })
            .collect();
        let est_total: f64 = estimates.iter().sum();

        let mut state = crate::sync::lock(&self.state);
        if state.draining {
            self.counters.shed_draining.fetch_add(1, Ordering::Relaxed);
            return Err(Shed::Draining);
        }
        let inflight = state.inflight.get(client).copied().unwrap_or(0);
        if inflight >= self.policy.client_inflight_cap {
            self.counters
                .shed_client_cap
                .fetch_add(1, Ordering::Relaxed);
            return Err(Shed::ClientCap {
                inflight,
                cap: self.policy.client_inflight_cap,
            });
        }
        if est_total > 0.0 && state.queued_cost + est_total > self.policy.queue_budget_seconds {
            self.counters.shed_budget.fetch_add(1, Ordering::Relaxed);
            return Err(Shed::Budget {
                estimated: est_total,
                queued: state.queued_cost,
                budget: self.policy.queue_budget_seconds,
            });
        }

        let id = state.next_job;
        state.next_job += 1;
        self.counters.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        let job = Job::new(id, client, label, trace, keys.len(), est_total);
        job.push_event(format!(
            "{{\"event\": \"queued\", \"job\": {id}, \"label\": \"{label}\", \
             \"trace\": \"{trace}\", \"keys\": {}, \"est_seconds\": {est_total:?}}}",
            keys.len()
        ));
        if keys.is_empty() {
            self.counters.jobs_completed.fetch_add(1, Ordering::Relaxed);
            job.push_event(format!(
                "{{\"event\": \"done\", \"job\": {id}, \"trace\": \"{trace}\", \"runs\": 0}}"
            ));
        } else {
            *state.inflight.entry(client.to_string()).or_insert(0) += 1;
            let queued_at = Instant::now();
            for (key, est) in keys.into_iter().zip(estimates) {
                let seq = state.next_seq;
                state.next_seq += 1;
                state.heap.push(Reverse(Unit {
                    est_micros: (est * 1e6) as u64,
                    seq,
                    est_seconds: est,
                    queued_at,
                    key,
                    job: Arc::clone(&job),
                }));
            }
            state.queued_cost += est_total;
        }
        graphpim::obs::info(
            "serve",
            "job queued",
            &[
                ("job", &id),
                ("label", &label),
                ("client", &client),
                ("keys", &job.total),
                ("est_seconds", &format!("{est_total:.3}")),
            ],
        );
        state.jobs.push_back(Arc::clone(&job));
        while state.jobs.len() > JOB_HISTORY {
            match state.jobs.front() {
                Some(front) if front.done() => {
                    state.jobs.pop_front();
                }
                _ => break,
            }
        }
        drop(state);
        self.work_cv.notify_all();
        Ok(job)
    }

    /// Looks up a retained job by id.
    pub fn job(&self, id: u64) -> Option<Arc<Job>> {
        crate::sync::lock(&self.state)
            .jobs
            .iter()
            .find(|j| j.id == id)
            .cloned()
    }

    /// Snapshot of the lifetime counters for `/metrics`.
    pub fn counters(&self) -> CounterSnapshot {
        let c = &self.counters;
        CounterSnapshot {
            jobs_submitted: c.jobs_submitted.load(Ordering::Relaxed),
            jobs_completed: c.jobs_completed.load(Ordering::Relaxed),
            units_resolved: c.units_resolved.load(Ordering::Relaxed),
            units_panicked: c.units_panicked.load(Ordering::Relaxed),
            shed: [
                ("draining", c.shed_draining.load(Ordering::Relaxed)),
                (
                    "queue_budget_exceeded",
                    c.shed_budget.load(Ordering::Relaxed),
                ),
                (
                    "client_inflight_cap",
                    c.shed_client_cap.load(Ordering::Relaxed),
                ),
            ],
        }
    }

    /// Current queue depth.
    pub fn depth(&self) -> Depth {
        let state = crate::sync::lock(&self.state);
        Depth {
            queued: state.heap.len(),
            queued_cost_seconds: state.queued_cost,
            running: state.running,
            jobs: state.jobs.len(),
        }
    }

    /// Stops admitting work. Already-admitted units still run to
    /// completion (the queue is bounded by the admission budget, so the
    /// drain is too); workers exit once the queue empties.
    pub fn drain(&self) {
        self.draining_flag.store(true, Ordering::Relaxed);
        crate::sync::lock(&self.state).draining = true;
        self.work_cv.notify_all();
    }

    /// Blocks until no unit is queued or running.
    pub fn wait_idle(&self) {
        let mut state = crate::sync::lock(&self.state);
        while !state.heap.is_empty() || state.running > 0 {
            state = crate::sync::wait(&self.idle_cv, state);
        }
    }

    fn worker_loop(&self) {
        loop {
            let unit = {
                let mut state = crate::sync::lock(&self.state);
                loop {
                    if let Some(Reverse(unit)) = state.heap.pop() {
                        state.queued_cost = (state.queued_cost - unit.est_seconds).max(0.0);
                        state.running += 1;
                        break unit;
                    }
                    if state.draining {
                        return;
                    }
                    state = crate::sync::wait(&self.work_cv, state);
                }
            };
            self.resolve(&unit);
            let mut state = crate::sync::lock(&self.state);
            state.running -= 1;
            if state.heap.is_empty() && state.running == 0 {
                self.idle_cv.notify_all();
            }
        }
    }

    /// Resolves one unit and emits its events. Panics inside the engine
    /// (e.g. a run-invariant violation) are contained to the unit: the
    /// job still completes, with an `error` event for the bad run.
    fn resolve(&self, unit: &Unit) {
        let stem = unit.key.file_stem();
        let job = &unit.job;
        let queue_wait_us = unit.queued_at.elapsed().as_secs_f64() * 1e6;
        job.push_event(format!(
            "{{\"event\": \"scheduled\", \"job\": {}, \"key\": \"{stem}\", \
             \"trace\": \"{}\", \"queue_wait_us\": {:.0}, \"est_seconds\": {:?}}}",
            job.id, job.trace, queue_wait_us, unit.est_seconds
        ));
        // Thread the request-correlated trace ID (and the measured queue
        // wait) to the engine via the observability context: the profile
        // stamps run records with it and the Perfetto exporter adds the
        // pid-3 job row, with no engine signature changes.
        let _trace_guard = graphpim::obs::push_context("trace", &job.trace);
        let _wait_guard =
            graphpim::obs::push_context("queue_wait_us", &format!("{queue_wait_us:.0}"));
        let start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| self.ctx.metrics_for(&unit.key)));
        let wall = start.elapsed().as_secs_f64();
        match outcome {
            Ok(_) => {
                // Where the result came from: the profile's most recent
                // record for this stem. A memo hit records nothing new,
                // so an absent/stale record after a fast resolve means
                // the in-memory memo served it.
                let source = self
                    .ctx
                    .profile()
                    .runs()
                    .iter()
                    .rev()
                    .find(|r| r.key == stem)
                    .map(|r| r.source);
                let label = match source {
                    Some(RunSource::Simulated) => "simulated",
                    Some(RunSource::Replayed) => "replayed",
                    Some(RunSource::DiskHit) => "disk-hit",
                    None => "memo",
                };
                if matches!(source, Some(RunSource::Simulated | RunSource::Replayed)) {
                    self.cost.observe(&unit.key, wall);
                    if !self.cost.skew_seeded(unit.key.size) {
                        // The run just made this size's graph resident;
                        // measuring its skew now is a memo read.
                        self.cost
                            .seed_skew(unit.key.size, &self.ctx.graph(unit.key.size));
                    }
                }
                self.counters.units_resolved.fetch_add(1, Ordering::Relaxed);
                job.push_event(format!(
                    "{{\"event\": \"run\", \"job\": {}, \"key\": \"{stem}\", \
                     \"trace\": \"{}\", \"source\": \"{label}\", \"wall_seconds\": {wall:?}}}",
                    job.id, job.trace
                ));
                graphpim::obs::debug(
                    "serve",
                    "unit resolved",
                    &[
                        ("job", &job.id),
                        ("key", &stem),
                        ("source", &label),
                        ("wall_seconds", &format!("{wall:.3}")),
                    ],
                );
            }
            Err(_) => {
                self.counters.units_panicked.fetch_add(1, Ordering::Relaxed);
                job.push_event(format!(
                    "{{\"event\": \"error\", \"job\": {}, \"key\": \"{stem}\", \
                     \"trace\": \"{}\", \"id\": \"run_panicked\", \"wall_seconds\": {wall:?}}}",
                    job.id, job.trace
                ));
                graphpim::obs::error(
                    "serve",
                    "unit panicked",
                    &[("job", &job.id), ("key", &stem)],
                );
            }
        }
        if job.finish_unit() {
            self.counters.jobs_completed.fetch_add(1, Ordering::Relaxed);
            graphpim::obs::info(
                "serve",
                "job done",
                &[
                    ("job", &job.id),
                    ("label", &job.label),
                    ("runs", &job.total),
                ],
            );
            let mut state = crate::sync::lock(&self.state);
            if let Some(count) = state.inflight.get_mut(&job.client) {
                *count = count.saturating_sub(1);
                if *count == 0 {
                    state.inflight.remove(&job.client);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphpim::config::PimMode;
    use graphpim_graph::generate::LdbcSize;

    fn test_ctx() -> Arc<Experiments> {
        // In-memory memo only: no disk cache, no trace store, so tests
        // neither read nor pollute shared directories.
        Arc::new(Experiments::with_cache(LdbcSize::K1, None).with_trace_store(None))
    }

    fn start(
        policy: AdmissionPolicy,
        workers: usize,
    ) -> (Arc<Scheduler>, Vec<std::thread::JoinHandle<()>>) {
        Scheduler::start(test_ctx(), Arc::new(CostModel::new()), policy, workers)
    }

    fn shutdown(sched: &Scheduler, handles: Vec<std::thread::JoinHandle<()>>) {
        sched.drain();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn runs_complete_and_events_arrive_in_order() {
        let (sched, handles) = start(AdmissionPolicy::default(), 2);
        let keys = vec![
            RunKey::new("DC", PimMode::Baseline, LdbcSize::K1),
            RunKey::new("DC", PimMode::GraphPim, LdbcSize::K1),
        ];
        let job = sched.submit("alice", "test", "t0", keys).expect("admitted");
        // Follow to completion. The done flag lands atomically with the
        // terminal event, so one final non-blocking drain suffices.
        let mut from = 0;
        let mut lines = Vec::new();
        loop {
            let (events, next, done) = job.events_from(from, true);
            lines.extend(events);
            from = next;
            if done {
                let (rest, _, _) = job.events_from(from, false);
                lines.extend(rest);
                break;
            }
        }
        assert!(lines[0].contains("\"queued\""), "first event: {lines:?}");
        assert!(lines.last().unwrap().contains("\"done\""));
        assert_eq!(
            lines.iter().filter(|l| l.contains("\"run\"")).count(),
            2,
            "one run event per key: {lines:?}"
        );
        assert!(job.done());
        shutdown(&sched, handles);
    }

    #[test]
    fn draining_scheduler_sheds_and_workers_exit() {
        let (sched, handles) = start(AdmissionPolicy::default(), 2);
        sched.drain();
        let refused = sched.submit(
            "bob",
            "late",
            "t1",
            vec![RunKey::new("DC", PimMode::Baseline, LdbcSize::K1)],
        );
        assert_eq!(refused.unwrap_err(), Shed::Draining);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn budget_and_client_cap_shed() {
        let policy = AdmissionPolicy {
            queue_budget_seconds: 0.0,
            client_inflight_cap: 1,
        };
        let (sched, handles) = start(policy, 1);
        // Uncached key: any positive estimate exceeds the zero budget.
        let refused = sched.submit(
            "alice",
            "big",
            "t2",
            vec![RunKey::new("DC", PimMode::Baseline, LdbcSize::M1)],
        );
        assert!(matches!(refused.unwrap_err(), Shed::Budget { .. }));
        // Empty jobs are free and never block the cap for long...
        let free = sched.submit("alice", "empty", "t3", Vec::new()).unwrap();
        // Counters saw one shed-for-budget and one instantly-done job.
        let counters = sched.counters();
        assert_eq!(counters.jobs_submitted, 1);
        assert_eq!(counters.jobs_completed, 1);
        assert_eq!(counters.shed[1], ("queue_budget_exceeded", 1));
        assert!(free.done());
        shutdown(&sched, handles);
    }

    #[test]
    fn client_cap_counts_inflight_jobs() {
        let policy = AdmissionPolicy {
            client_inflight_cap: 1,
            ..AdmissionPolicy::default()
        };
        // No workers pulling: submissions stay queued. (One worker
        // handle still exists — start() floors at 1 — so drain it last.)
        let (sched, handles) = start(policy, 1);
        // A slow-ish run occupies alice's one slot...
        let key = RunKey::new("DC", PimMode::Baseline, LdbcSize::K1);
        let first = sched.submit("alice", "one", "t4", vec![key.clone()]);
        assert!(first.is_ok());
        // ...a second concurrent submission may or may not still be in
        // flight depending on worker speed; to make it deterministic,
        // check the refusal against an impossible cap of zero instead.
        let zero_cap = AdmissionPolicy {
            client_inflight_cap: 0,
            ..AdmissionPolicy::default()
        };
        let (sched0, handles0) = start(zero_cap, 1);
        let refused = sched0.submit("alice", "none", "t5", vec![key]);
        assert!(matches!(refused.unwrap_err(), Shed::ClientCap { .. }));
        shutdown(&sched, handles);
        shutdown(&sched0, handles0);
    }

    #[test]
    fn poisoned_job_lock_still_serves_later_requests() {
        // A handler that panics while holding a job's state lock (the
        // HTTP layer contains the panic per-request) must not wedge the
        // job for every later observer — the regression this crate's
        // sync helpers exist for.
        let job = Job::new(7, "alice", "poison", "t6", 1, 0.5);
        job.push_event("{\"event\": \"queued\"}".to_string());
        let poisoned = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _guard = job.state.lock().unwrap();
            panic!("handler died mid-section");
        }));
        assert!(poisoned.is_err());
        assert!(job.state.is_poisoned());
        // Every public entry point still works.
        job.push_event("{\"event\": \"run\"}".to_string());
        let (events, next, done) = job.events_from(0, false);
        assert_eq!(events.len(), 2);
        assert_eq!(next, 2);
        assert!(!done);
        assert!(!job.done());
        assert!(job.snapshot_json().contains("\"remaining\": 1"));
        assert!(job.finish_unit());
        assert!(job.done());
    }

    #[test]
    fn cheap_units_overtake_expensive_ones() {
        // One worker, drained later: fill the queue before any unit is
        // picked by submitting while the worker is busy on the first.
        let (sched, handles) = start(AdmissionPolicy::default(), 1);
        // Prime: the worker grabs this first unit immediately.
        let prime = sched
            .submit(
                "c",
                "prime",
                "t7",
                vec![RunKey::new("DC", PimMode::Baseline, LdbcSize::K1)],
            )
            .unwrap();
        // While it runs, queue an "expensive" then a "cheap" sweep; the
        // cost model's edge scaling makes K10 ≫ K1.
        let slow = sched
            .submit(
                "c",
                "slow",
                "t8",
                vec![RunKey::new("BFS", PimMode::Baseline, LdbcSize::K10)],
            )
            .unwrap();
        let fast = sched
            .submit(
                "c",
                "fast",
                "t9",
                vec![RunKey::new("BFS", PimMode::Baseline, LdbcSize::K1)],
            )
            .unwrap();
        sched.wait_idle();
        assert!(prime.done() && slow.done() && fast.done());
        // Ordering check: the fast job's run event must precede the
        // slow job's in wall-clock order. Events are per-job, so
        // compare completion order via the shared profile: the K1 BFS
        // run must appear before the K10 BFS run.
        let profile = sched.ctx.profile();
        let order: Vec<&str> = profile
            .runs()
            .iter()
            .map(|r| r.key.as_str())
            .filter(|k| k.starts_with("BFS"))
            .collect();
        let k1_pos = order.iter().position(|k| k.contains("LDBC-1k"));
        let k10_pos = order.iter().position(|k| k.contains("LDBC-10k"));
        if let (Some(a), Some(b)) = (k1_pos, k10_pos) {
            assert!(a < b, "cheap unit must run first: {order:?}");
        }
        shutdown(&sched, handles);
    }
}
