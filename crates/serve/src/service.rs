//! The HTTP service: routing, per-endpoint latency accounting, and the
//! accept/drain lifecycle.
//!
//! # Topology
//!
//! One non-blocking acceptor thread feeds accepted connections through
//! a bounded channel to a small pool of HTTP threads (request parsing,
//! routing, response writing). Simulation never happens on an HTTP
//! thread: anything uncached is answered with `409` + a hint to `POST
//! /sweeps`, and sweeps run on the [scheduler](crate::scheduler)'s
//! worker pool. The only long-lived HTTP work is streaming job events,
//! which blocks on a condvar, not on compute.
//!
//! # Endpoints
//!
//! | Route | Semantics |
//! |---|---|
//! | `GET /healthz` | liveness + scale + draining flag + version/uptime |
//! | `GET /metrics` | Prometheus text exposition (see [`crate::metrics`]) |
//! | `GET /stats` | scheduler depth, engine counters, cost model, per-endpoint latency, logger counters |
//! | `GET /figures` | served figure ids |
//! | `GET /figures/{fig}` | the figure document iff every run is cached, else `409` |
//! | `GET /counters/{stem}` | cached run counters, exactly as the disk cache stores them |
//! | `GET /traces/{kernel}?size=1k&supersteps=a..b` | decoded trace slice |
//! | `POST /sweeps` | submit `{"fig": "fig07"}` or `{"keys": [stems]}`, returns a job |
//! | `GET /jobs/{id}` | job snapshot |
//! | `GET /jobs/{id}/events` | chunked NDJSON event stream until the job completes |
//! | `POST /shutdown` | begin graceful drain |
//!
//! `GET` is strictly read-only: it never enqueues work and never
//! simulates. The one write, `POST /sweeps`, is guarded by
//! [admission control](crate::admission).

use crate::admission::AdmissionPolicy;
use crate::cost::CostModel;
use crate::http::{ChunkedWriter, Request, Response};
use crate::scheduler::{Job, Scheduler};
use graphpim::experiments::{figjson, Experiments, RunKey, TraceSliceError};
use graphpim_graph::generate::LdbcSize;
use graphpim_sim::telemetry::Histogram;
use std::fmt::Write as _;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Scheduler worker threads (simulation parallelism).
    pub workers: usize,
    /// HTTP threads (request parsing + event streaming).
    pub http_threads: usize,
    /// Admission-control limits.
    pub policy: AdmissionPolicy,
    /// Socket read **and** write timeout. Reads: a client that sends
    /// half a request cannot hold an HTTP thread hostage. Writes: a
    /// follower that stops reading its event stream is dropped once the
    /// kernel send buffer stays full this long (see
    /// [`crate::http::is_stalled_write`]); the job keeps running.
    pub io_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            http_threads: 8,
            policy: AdmissionPolicy::default(),
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// The API's uniform error document.
pub fn error_json(id: &str, message: &str) -> String {
    format!(
        "{{\"error\": {{\"id\": \"{id}\", \"message\": \"{}\"}}}}",
        message.replace('\\', "\\\\").replace('"', "\\\"")
    )
}

/// Per-endpoint latency histograms (microseconds, power-of-two
/// buckets via [`Histogram`] — the same primitive the simulator uses
/// for queue-wait distributions).
#[derive(Debug, Default)]
pub(crate) struct Stats {
    endpoints: Mutex<Vec<(&'static str, Histogram)>>,
}

impl Stats {
    fn record(&self, label: &'static str, micros: f64) {
        let mut endpoints = crate::sync::lock(&self.endpoints);
        match endpoints.iter_mut().find(|(l, _)| *l == label) {
            Some((_, hist)) => hist.record(micros),
            None => {
                // 32 power-of-two buckets cover sub-µs to ~18 minutes.
                let mut hist = Histogram::new(32);
                hist.record(micros);
                endpoints.push((label, hist));
            }
        }
    }

    /// Clones the per-endpoint histograms for `/metrics` rendering.
    pub(crate) fn snapshot(&self) -> Vec<(&'static str, Histogram)> {
        crate::sync::lock(&self.endpoints).clone()
    }

    fn to_json(&self) -> String {
        let endpoints = crate::sync::lock(&self.endpoints);
        let mut s = String::from("{");
        for (i, (label, hist)) in endpoints.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "\"{label}\": {{\"count\": {}, \"mean_us\": {:?}, \"p50_us\": {:?}, \
                 \"p99_us\": {:?}, \"max_us\": {:?}}}",
                hist.count(),
                hist.mean(),
                hist.percentile(0.50),
                hist.percentile(0.99),
                hist.max()
            );
        }
        s.push('}');
        s
    }
}

pub(crate) struct Shared {
    pub(crate) ctx: Arc<Experiments>,
    pub(crate) cost: Arc<CostModel>,
    pub(crate) sched: Arc<Scheduler>,
    pub(crate) stats: Stats,
    pub(crate) started: Instant,
    io_timeout: Duration,
    /// Set by `POST /shutdown` or [`ServerHandle::begin_shutdown`].
    shutdown: AtomicBool,
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`shutdown`](ServerHandle::shutdown) for the graceful drain.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: std::thread::JoinHandle<()>,
    http_threads: Vec<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a shutdown has been requested (signal loop predicate for
    /// the `graphpim-serve` binary).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::Relaxed)
    }

    /// Requests a shutdown without blocking (what `POST /shutdown` does
    /// internally). Call [`shutdown`](Self::shutdown) to complete it.
    pub fn begin_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.sched.drain();
    }

    /// Graceful drain: stop accepting, finish every admitted run and
    /// in-flight response, then join all threads. Admitted work is
    /// bounded by the admission budget, so this terminates.
    pub fn shutdown(self) {
        self.begin_shutdown();
        self.shared.sched.wait_idle();
        let _ = self.acceptor.join();
        for h in self.http_threads {
            let _ = h.join();
        }
        for h in self.workers {
            let _ = h.join();
        }
    }
}

/// Starts the service over `ctx`. The context's disk cache and trace
/// store come with it — a prewarmed context serves figures instantly.
pub fn start(cfg: ServeConfig, ctx: Arc<Experiments>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let cost = Arc::new(CostModel::new());
    // Anything the caller already ran (e.g. a boot-time prewarm)
    // calibrates the model before the first estimate.
    cost.calibrate_from_profile(&ctx.profile());
    let (sched, workers) =
        Scheduler::start(Arc::clone(&ctx), Arc::clone(&cost), cfg.policy, cfg.workers);
    let shared = Arc::new(Shared {
        ctx,
        cost,
        sched,
        stats: Stats::default(),
        started: Instant::now(),
        io_timeout: cfg.io_timeout,
        shutdown: AtomicBool::new(false),
    });

    let (tx, rx) = mpsc::sync_channel::<TcpStream>(128);
    let rx = Arc::new(Mutex::new(rx));
    let http_threads = (0..cfg.http_threads.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || loop {
                let stream = match crate::sync::lock(&rx).recv() {
                    Ok(stream) => stream,
                    Err(_) => return, // acceptor gone and channel drained
                };
                handle_connection(stream, &shared);
            })
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            // `tx` lives in this thread; dropping it on exit closes the
            // channel and winds down the HTTP pool.
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        if tx.send(stream).is_err() {
                            return;
                        }
                    }
                    // Connection-per-request means every request pays the
                    // accept-poll latency, so the idle sleep must stay well
                    // under a millisecond-scale request budget; 1ms costs a
                    // negligible number of idle wakeups.
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
        })
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor,
        http_threads,
        workers,
    })
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.io_timeout));
    // Symmetric write timeout: without it, a follower that stops
    // reading its event stream blocks an HTTP thread in `write` forever
    // once the kernel send buffer fills.
    let _ = stream.set_write_timeout(Some(shared.io_timeout));
    let peer = stream
        .peer_addr()
        .map(|a| a.ip().to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let req = match Request::read_from(&mut reader) {
        Ok(req) => req,
        Err(_) => {
            let mut w = BufWriter::new(stream);
            let _ = Response::json(400, error_json("bad_request", "malformed HTTP request"))
                .with_header("X-Trace-Id", &graphpim::obs::new_trace_id())
                .write_to(&mut w);
            return;
        }
    };
    // Every request carries a trace ID from here on: a sane inbound
    // `X-Trace-Id` is honored (so callers can correlate across their own
    // systems), anything else gets a fresh one. The context guard makes
    // the ID appear on every log line this thread emits for the request.
    let trace = trace_id(&req);
    let _trace_guard = graphpim::obs::push_context("trace", &trace);
    let start = Instant::now();

    // The streaming endpoint owns the socket for the job's lifetime.
    if req.method == "GET" {
        if let Some(rest) = req.path.strip_prefix("/jobs/") {
            if let Some(id) = rest.strip_suffix("/events") {
                stream_job_events(stream, shared, id, &trace);
                shared
                    .stats
                    .record("GET /jobs/{id}/events", start.elapsed().as_secs_f64() * 1e6);
                return;
            }
        }
    }

    let routed = catch_unwind(AssertUnwindSafe(|| route(shared, &req, &peer)));
    let (label, response) = routed.unwrap_or_else(|_| {
        graphpim::obs::error(
            "serve",
            "handler panicked",
            &[("method", &req.method), ("path", &req.path)],
        );
        (
            "panic",
            Response::json(
                500,
                error_json("internal_panic", "handler panicked; see server log"),
            ),
        )
    });
    shared
        .stats
        .record(label, start.elapsed().as_secs_f64() * 1e6);
    let mut w = BufWriter::new(stream);
    let _ = response.with_header("X-Trace-Id", &trace).write_to(&mut w);
}

/// The request's trace ID: a sane inbound `X-Trace-Id` (1–64 graphical
/// ASCII characters, no quotes or backslashes — the ID is echoed into
/// JSON event lines and logfmt values verbatim), else a fresh one.
fn trace_id(req: &Request) -> String {
    match req.header("x-trace-id") {
        Some(id)
            if !id.is_empty()
                && id.len() <= 64
                && id
                    .bytes()
                    .all(|b| b.is_ascii_graphic() && b != b'"' && b != b'\\') =>
        {
            id.to_string()
        }
        _ => graphpim::obs::new_trace_id(),
    }
}

/// Routes one parsed request. Returns the stats label and the response.
fn route(shared: &Shared, req: &Request, peer: &str) -> (&'static str, Response) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => ("GET /healthz", healthz(shared)),
        ("GET", "/metrics") => ("GET /metrics", crate::metrics::metrics(shared)),
        ("GET", "/stats") => ("GET /stats", stats(shared)),
        ("GET", "/figures") => ("GET /figures", list_figures()),
        ("POST", "/sweeps") => ("POST /sweeps", submit_sweep(shared, req, peer)),
        ("POST", "/shutdown") => ("POST /shutdown", shutdown(shared)),
        ("GET", path) => {
            if let Some(fig) = path.strip_prefix("/figures/") {
                ("GET /figures/{fig}", figure(shared, fig))
            } else if let Some(stem) = path.strip_prefix("/counters/") {
                ("GET /counters/{run-key}", counters(shared, stem))
            } else if let Some(kernel) = path.strip_prefix("/traces/") {
                ("GET /traces/{workload}", trace_slice(shared, kernel, req))
            } else if let Some(id) = path.strip_prefix("/jobs/") {
                ("GET /jobs/{id}", job_snapshot(shared, id))
            } else {
                ("404", not_found())
            }
        }
        ("POST", _) => ("404", not_found()),
        _ => (
            "405",
            Response::json(405, error_json("method_not_allowed", "use GET or POST")),
        ),
    }
}

fn not_found() -> Response {
    Response::json(404, error_json("not_found", "unknown route"))
}

fn healthz(shared: &Shared) -> Response {
    Response::json(
        200,
        format!(
            "{{\"status\": \"ok\", \"scale\": \"{}\", \"draining\": {}, \
             \"uptime_seconds\": {:?}, \"version\": \"{}\", \"profile\": \"{}\"}}",
            shared.ctx.size().name(),
            shared.sched.draining(),
            shared.started.elapsed().as_secs_f64(),
            env!("CARGO_PKG_VERSION"),
            build_profile(),
        ),
    )
}

/// The build profile this binary was compiled under.
pub(crate) fn build_profile() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

fn stats(shared: &Shared) -> Response {
    let depth = shared.sched.depth();
    let profile = shared.ctx.profile();
    let (hits, misses, stale) = profile.disk_counts();
    let trace = profile.trace_store();
    let simulated = profile
        .runs()
        .iter()
        .filter(|r| r.source != graphpim::experiments::profile::RunSource::DiskHit)
        .count();
    let body = format!(
        "{{\"status\": \"ok\", \"uptime_seconds\": {:?}, \"scale\": \"{}\", \
         \"draining\": {}, \
         \"scheduler\": {{\"queued\": {}, \"queued_cost_seconds\": {:?}, \
         \"running\": {}, \"jobs\": {}}}, \
         \"engine\": {{\"runs\": {}, \"simulated\": {simulated}, \
         \"simulated_seconds\": {:?}, \"disk_hits\": {hits}, \
         \"disk_misses\": {misses}, \"disk_stale\": {stale}, \
         \"trace_captures\": {}, \"trace_replays\": {}}}, \
         \"cost_model\": {}, \"endpoints\": {}, \"logger\": {}}}",
        shared.started.elapsed().as_secs_f64(),
        shared.ctx.size().name(),
        shared.sched.draining(),
        depth.queued,
        depth.queued_cost_seconds,
        depth.running,
        depth.jobs,
        profile.runs().len(),
        profile.simulated_seconds(),
        trace.captures,
        trace.replays,
        shared.cost.snapshot_json(),
        shared.stats.to_json(),
        logger_json(),
    );
    Response::json(200, body)
}

/// The logger's per-level emitted/dropped counters as a JSON object.
fn logger_json() -> String {
    let mut s = String::from("{");
    for (i, (level, emitted, dropped)) in graphpim::obs::stats().iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(
            s,
            "\"{}\": {{\"emitted\": {emitted}, \"dropped\": {dropped}}}",
            level.as_str()
        );
    }
    s.push('}');
    s
}

fn list_figures() -> Response {
    let ids = figjson::FIGURES
        .iter()
        .map(|f| format!("\"{f}\""))
        .collect::<Vec<_>>()
        .join(", ");
    Response::json(200, format!("{{\"figures\": [{ids}]}}"))
}

fn figure(shared: &Shared, fig: &str) -> Response {
    let Some(keys) = figjson::figure_keys(fig, &shared.ctx) else {
        return Response::json(
            404,
            error_json("unknown_figure", &format!("{fig} is not a served figure")),
        );
    };
    let missing = keys
        .iter()
        .filter(|key| shared.ctx.cached_metrics(key).is_none())
        .count();
    if missing > 0 {
        return Response::json(
            409,
            format!(
                "{{\"error\": {{\"id\": \"figure_uncached\", \"message\": \
                 \"{missing} of {} runs are not cached; submit the sweep and follow \
                 its events\", \"missing\": {missing}, \"total\": {}, \
                 \"hint\": \"POST /sweeps {{\\\"fig\\\": \\\"{fig}\\\"}}\"}}}}",
                keys.len(),
                keys.len()
            ),
        );
    }
    // Every run is cached: rendering resolves from memo/disk, no
    // simulation. Byte-identical to `cargo run --bin <fig> -- --json`.
    match figjson::figure_json(fig, &shared.ctx) {
        Some(doc) => Response::json(200, doc),
        None => Response::json(404, error_json("unknown_figure", fig)),
    }
}

fn counters(shared: &Shared, stem: &str) -> Response {
    let Some(key) = RunKey::parse_stem(stem) else {
        return Response::json(
            400,
            error_json(
                "invalid_run_key",
                &format!("'{stem}' is not a run-key stem (expected e.g. 'BFS-GraphPIM-LDBC-1k-fus4-bw10')"),
            ),
        );
    };
    if let Err(e) = shared.ctx.validate_key(&key) {
        return Response::json(400, error_json(e.id(), &e.to_string()));
    }
    match shared.ctx.cached_metrics(&key) {
        Some(metrics) => Response::json(
            200,
            graphpim::experiments::cache::metrics_json(&key, &metrics),
        ),
        None => Response::json(
            404,
            error_json(
                "run_uncached",
                "run is not cached; submit it via POST /sweeps",
            ),
        ),
    }
}

fn trace_slice(shared: &Shared, kernel: &str, req: &Request) -> Response {
    let size = match req.query_param("size") {
        None => shared.ctx.size(),
        Some(s) => match parse_size(s) {
            Some(size) => size,
            None => {
                return Response::json(
                    400,
                    error_json(
                        "invalid_size",
                        &format!("unknown size '{s}' (use 1k|10k|100k|1m)"),
                    ),
                )
            }
        },
    };
    let range = match req.query_param("supersteps") {
        None => (0, None),
        Some(spec) => match parse_range(spec) {
            Some(range) => range,
            None => {
                return Response::json(
                    400,
                    error_json(
                        "invalid_range",
                        &format!("bad superstep range '{spec}' (use a..b or a..)"),
                    ),
                )
            }
        },
    };
    match shared.ctx.trace_slice_json(kernel, size, range) {
        Ok(doc) => Response::json(200, doc),
        Err(e) => {
            let (status, id) = match e {
                TraceSliceError::StoreDisabled => (404, "trace_store_disabled"),
                TraceSliceError::NotCaptured => (404, "trace_not_captured"),
                TraceSliceError::Corrupt => (500, "trace_corrupt"),
                TraceSliceError::EmptyRange => (400, "empty_range"),
            };
            Response::json(status, error_json(id, &e.to_string()))
        }
    }
}

fn parse_size(s: &str) -> Option<LdbcSize> {
    match s.to_ascii_lowercase().as_str() {
        "1k" => Some(LdbcSize::K1),
        "10k" => Some(LdbcSize::K10),
        "100k" => Some(LdbcSize::K100),
        "1m" => Some(LdbcSize::M1),
        _ => None,
    }
}

/// Parses `a..b` (half-open) or `a..` into the engine's range shape.
fn parse_range(spec: &str) -> Option<(usize, Option<usize>)> {
    let (lo, hi) = spec.split_once("..")?;
    let lo = if lo.is_empty() { 0 } else { lo.parse().ok()? };
    let hi = if hi.is_empty() {
        None
    } else {
        Some(hi.parse().ok()?)
    };
    Some((lo, hi))
}

fn submit_sweep(shared: &Shared, req: &Request, peer: &str) -> Response {
    use graphpim::experiments::cache::json;
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::json(400, error_json("bad_request", "body is not UTF-8"));
    };
    let Some(doc) = json::parse(text) else {
        return Response::json(400, error_json("bad_request", "body is not valid JSON"));
    };
    let Some(obj) = doc.as_object() else {
        return Response::json(400, error_json("bad_request", "body must be a JSON object"));
    };

    let client = obj
        .get("client")
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .or_else(|| req.header("x-client-id").map(str::to_string))
        .unwrap_or_else(|| peer.to_string());

    let (label, keys) = if let Some(fig) = obj.get("fig").and_then(|v| v.as_str()) {
        match figjson::figure_keys(fig, &shared.ctx) {
            Some(keys) => (fig.to_string(), keys),
            None => {
                return Response::json(
                    404,
                    error_json("unknown_figure", &format!("{fig} is not a served figure")),
                )
            }
        }
    } else if let Some(stems) = obj.get("keys").and_then(|v| v.as_array()) {
        let mut keys = Vec::with_capacity(stems.len());
        for stem in stems {
            let Some(stem) = stem.as_str() else {
                return Response::json(400, error_json("bad_request", "keys must be strings"));
            };
            let Some(key) = RunKey::parse_stem(stem) else {
                return Response::json(
                    400,
                    error_json(
                        "invalid_run_key",
                        &format!("'{stem}' is not a run-key stem"),
                    ),
                );
            };
            if let Err(e) = shared.ctx.validate_key(&key) {
                return Response::json(400, error_json(e.id(), &format!("{stem}: {e}")));
            }
            keys.push(key);
        }
        (format!("keys:{}", keys.len()), keys)
    } else {
        return Response::json(
            400,
            error_json("bad_request", "provide either \"fig\" or \"keys\""),
        );
    };

    // The request's trace ID (pushed by `handle_connection`) becomes the
    // job's: every event line, run record, and Perfetto export the job
    // causes carries it.
    let trace = graphpim::obs::context_value("trace").unwrap_or_else(graphpim::obs::new_trace_id);
    match shared.sched.submit(&client, &label, &trace, keys) {
        Ok(job) => Response::json(
            202,
            format!(
                "{{\"job\": {}, \"label\": \"{}\", \"trace\": \"{}\", \"keys\": {}, \
                 \"est_seconds\": {:?}, \"events\": \"/jobs/{}/events\"}}",
                job.id, job.label, job.trace, job.total, job.est_seconds, job.id
            ),
        ),
        Err(shed) => {
            graphpim::obs::warn(
                "serve",
                "sweep shed",
                &[
                    ("client", &client),
                    ("label", &label),
                    ("reason", &shed.id()),
                ],
            );
            Response::json(shed.status(), shed.to_json())
        }
    }
}

fn job_snapshot(shared: &Shared, id: &str) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return Response::json(400, error_json("bad_request", "job id must be an integer"));
    };
    match shared.sched.job(id) {
        Some(job) => Response::json(200, job.snapshot_json()),
        None => Response::json(404, error_json("unknown_job", "no such job (or aged out)")),
    }
}

fn shutdown(shared: &Shared) -> Response {
    shared.sched.drain();
    shared.shutdown.store(true, Ordering::Relaxed);
    Response::json(200, "{\"status\": \"draining\"}")
}

/// Streams a job's NDJSON events over a chunked response until the job
/// completes (or the client disconnects).
fn stream_job_events(stream: TcpStream, shared: &Shared, id: &str, trace: &str) {
    let job: Option<Arc<Job>> = id.parse::<u64>().ok().and_then(|id| shared.sched.job(id));
    let Some(job) = job else {
        let mut w = BufWriter::new(stream);
        let _ = Response::json(404, error_json("unknown_job", "no such job (or aged out)"))
            .with_header("X-Trace-Id", trace)
            .write_to(&mut w);
        return;
    };
    let Ok(mut writer) = ChunkedWriter::start_with_headers(
        stream,
        200,
        "application/x-ndjson",
        &[("X-Trace-Id", trace)],
    ) else {
        return;
    };
    let mut from = 0;
    loop {
        let (events, next, done) = job.events_from(from, true);
        from = next;
        let mut buf = String::with_capacity(events.iter().map(String::len).sum::<usize>() + 8);
        for event in &events {
            buf.push_str(event);
            buf.push('\n');
        }
        if let Err(e) = writer.chunk(buf.as_bytes()) {
            // Clean follower drop, whether the client closed the
            // connection or just stopped reading until the socket's
            // write timeout expired; either way the socket is unusable
            // mid-chunk and the job keeps running for the other
            // followers. Stalled drops get their own stats label so a
            // fleet of wedged clients is visible in `/stats`.
            if crate::http::is_stalled_write(&e) {
                shared.stats.record("dropped stalled follower", 0.0);
            }
            return;
        }
        if done {
            break;
        }
    }
    let _ = writer.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_parser_accepts_the_documented_shapes() {
        assert_eq!(parse_range("0..4"), Some((0, Some(4))));
        assert_eq!(parse_range("3.."), Some((3, None)));
        assert_eq!(parse_range("..7"), Some((0, Some(7))));
        assert_eq!(parse_range("five..six"), None);
        assert_eq!(parse_range("9"), None);
    }

    #[test]
    fn size_parser_matches_the_cli_scales() {
        assert_eq!(parse_size("1k"), Some(LdbcSize::K1));
        assert_eq!(parse_size("10K"), Some(LdbcSize::K10));
        assert_eq!(parse_size("100k"), Some(LdbcSize::K100));
        assert_eq!(parse_size("1M"), Some(LdbcSize::M1));
        assert_eq!(parse_size("2k"), None);
    }

    #[test]
    fn error_documents_escape_quotes() {
        let doc = error_json("x", "a \"quoted\" thing");
        assert!(graphpim::experiments::cache::json::parse(&doc).is_some());
    }

    #[test]
    fn stats_survive_a_panicking_recorder() {
        // One request's handler panicking inside the stats critical
        // section must not break latency accounting for every later
        // request on this server instance.
        let stats = Stats::default();
        stats.record("GET /healthz", 100.0);
        let poisoned = catch_unwind(AssertUnwindSafe(|| {
            let _guard = stats.endpoints.lock().unwrap();
            panic!("recorder died mid-section");
        }));
        assert!(poisoned.is_err());
        assert!(stats.endpoints.is_poisoned());
        stats.record("GET /healthz", 300.0);
        let doc = stats.to_json();
        let parsed = graphpim::experiments::cache::json::parse(&doc)
            .unwrap_or_else(|| panic!("must still parse: {doc}"));
        let healthz = parsed
            .as_object()
            .unwrap()
            .get("GET /healthz")
            .unwrap()
            .as_object()
            .unwrap();
        assert_eq!(healthz.get("count").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn stats_json_shape() {
        let stats = Stats::default();
        stats.record("GET /healthz", 120.0);
        stats.record("GET /healthz", 250.0);
        stats.record("GET /figures/{fig}", 900.0);
        let doc = stats.to_json();
        let parsed = graphpim::experiments::cache::json::parse(&doc)
            .unwrap_or_else(|| panic!("must parse: {doc}"));
        let obj = parsed.as_object().unwrap();
        let healthz = obj.get("GET /healthz").unwrap().as_object().unwrap();
        assert_eq!(healthz.get("count").unwrap().as_u64(), Some(2));
        assert!(healthz.get("p99_us").unwrap().as_f64().unwrap() >= 120.0);
    }
}
