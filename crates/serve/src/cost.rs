//! Cost model for uncached runs: what the scheduler sorts by and what
//! admission control budgets against.
//!
//! A run's wall time is dominated by how many trace operations flow
//! through the timing model, and that is proportional to the input's
//! edge count (every kernel is edge-centric) with a correction for how
//! unevenly those edges land on the simulated threads: the simulation
//! advances at the pace of the busiest thread, and the LDBC-like inputs
//! are heavy-tailed, so a hub-rich block partition stretches wall time
//! beyond `edges / threads`. The estimate is therefore
//!
//! ```text
//! seconds ≈ seconds_per_edge(kernel) × edges(size) × skew(size)
//! ```
//!
//! with `seconds_per_edge` calibrated online — an exponential moving
//! average over observed wall times of simulated and replayed runs
//! (recorded in [`EngineProfile`]) — and `skew` seeded from the actual
//! generated graph's degree distribution once that graph is resident.
//! The model starts from a deliberately rough constant and converges
//! after the first few runs per kernel; shortest-job-first only needs
//! the *ranking* to be right, and admission control only the order of
//! magnitude.

use graphpim::experiments::profile::{EngineProfile, RunSource};
use graphpim::experiments::RunKey;
use graphpim_graph::generate::LdbcSize;
use graphpim_graph::partition::split_range;
use graphpim_graph::CsrGraph;
use std::collections::HashMap;
use std::sync::Mutex;

/// Starting `seconds_per_edge` before any calibration, from the scale
/// benchmarks in `BENCH_SCALE` territory (release build, one core).
/// Only the order of magnitude matters; observation replaces it fast.
pub const DEFAULT_SECONDS_PER_EDGE: f64 = 2.5e-6;

/// Thread count the skew statistic is computed against. The served
/// configurations all simulate the paper's 16-core system, and skew
/// varies slowly with the divisor, so one constant serves every key.
const SKEW_THREADS: usize = 16;

/// Per-kernel EMA weight: a kernel's cost profile is stable, so weigh
/// new observations heavily and converge in a handful of runs.
const KERNEL_ALPHA: f64 = 0.3;
/// Fleet-default EMA weight: the fallback for never-seen kernels moves
/// slowly so one pathological run cannot poison every estimate.
const DEFAULT_ALPHA: f64 = 0.1;

#[derive(Debug)]
struct Inner {
    /// kernel → calibrated seconds-per-edge.
    per_edge: HashMap<String, f64>,
    /// Fallback for kernels with no observations yet.
    default_per_edge: f64,
    /// size → degree-skew factor (`>= 1`), measured or defaulted.
    skew: HashMap<LdbcSize, f64>,
    /// Observations folded in so far (for `/stats`).
    observations: u64,
}

/// Thread-safe run-cost estimator. See the module docs for the model.
#[derive(Debug)]
pub struct CostModel {
    inner: Mutex<Inner>,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::new()
    }
}

impl CostModel {
    /// A model with seed constants and no observations.
    pub fn new() -> CostModel {
        CostModel {
            inner: Mutex::new(Inner {
                per_edge: HashMap::new(),
                default_per_edge: DEFAULT_SECONDS_PER_EDGE,
                skew: HashMap::new(),
                observations: 0,
            }),
        }
    }

    /// Estimated wall seconds to simulate `key` from scratch, floored at
    /// one millisecond so a zero estimate can never starve admission
    /// accounting.
    pub fn estimate(&self, key: &RunKey) -> f64 {
        let inner = crate::sync::lock(&self.inner);
        let per_edge = inner
            .per_edge
            .get(&key.kernel)
            .copied()
            .unwrap_or(inner.default_per_edge);
        let skew = inner.skew.get(&key.size).copied().unwrap_or(1.0);
        (per_edge * key.size.target_edges() as f64 * skew).max(1e-3)
    }

    /// Folds one observed wall time for `key` into the model.
    pub fn observe(&self, key: &RunKey, seconds: f64) {
        if !seconds.is_finite() || seconds <= 0.0 {
            return;
        }
        let mut inner = crate::sync::lock(&self.inner);
        let skew = inner.skew.get(&key.size).copied().unwrap_or(1.0);
        let rate = seconds / (key.size.target_edges() as f64 * skew).max(1.0);
        let seed = inner.default_per_edge;
        let entry = inner.per_edge.entry(key.kernel.clone()).or_insert(seed);
        *entry += KERNEL_ALPHA * (rate - *entry);
        inner.default_per_edge += DEFAULT_ALPHA * (rate - inner.default_per_edge);
        inner.observations += 1;
    }

    /// Seeds the skew factor for `size` from the generated graph's
    /// degree distribution: the heaviest contiguous thread block's
    /// degree sum over the mean block's, under the engine's block
    /// partition. Idempotent per size; call once the graph is resident
    /// (after the first simulated run) so the service never generates a
    /// graph just to estimate it.
    pub fn seed_skew(&self, size: LdbcSize, graph: &CsrGraph) {
        {
            let inner = crate::sync::lock(&self.inner);
            if inner.skew.contains_key(&size) {
                return;
            }
        }
        let skew = degree_skew(graph, SKEW_THREADS);
        crate::sync::lock(&self.inner)
            .skew
            .entry(size)
            .or_insert(skew);
    }

    /// Whether `size`'s skew factor has been measured yet.
    pub fn skew_seeded(&self, size: LdbcSize) -> bool {
        crate::sync::lock(&self.inner).skew.contains_key(&size)
    }

    /// Calibrates from an engine profile: every simulated or replayed
    /// run record whose stem parses back into a key becomes one
    /// observation (disk hits say nothing about simulation cost).
    pub fn calibrate_from_profile(&self, profile: &EngineProfile) {
        for record in profile.runs() {
            if record.source == RunSource::DiskHit {
                continue;
            }
            if let Some(key) = RunKey::parse_stem(&record.key) {
                self.observe(&key, record.seconds);
            }
        }
    }

    /// Model state as a JSON object (for `/stats`).
    pub fn snapshot_json(&self) -> String {
        let inner = crate::sync::lock(&self.inner);
        let mut kernels: Vec<_> = inner.per_edge.iter().collect();
        kernels.sort_by(|a, b| a.0.cmp(b.0));
        let per_kernel = kernels
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v:?}"))
            .collect::<Vec<_>>()
            .join(", ");
        let mut skews: Vec<_> = inner.skew.iter().collect();
        skews.sort_by_key(|(size, _)| **size);
        let skew = skews
            .iter()
            .map(|(s, v)| format!("\"{}\": {v:?}", s.name()))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"observations\": {}, \"default_seconds_per_edge\": {:?}, \
             \"seconds_per_edge\": {{{per_kernel}}}, \"skew\": {{{skew}}}}}",
            inner.observations, inner.default_per_edge
        )
    }
}

/// Max contiguous-block degree sum over the mean, for a `threads`-way
/// block partition — how much longer the busiest simulated thread works
/// than the average one. At least 1.
fn degree_skew(graph: &CsrGraph, threads: usize) -> f64 {
    let n = graph.vertex_count();
    if n == 0 || graph.edge_count() == 0 {
        return 1.0;
    }
    let ranges = split_range(n, threads.min(n).max(1));
    let sums: Vec<f64> = ranges
        .iter()
        .map(|r| r.clone().map(|v| graph.out_degree(v as u32) as f64).sum())
        .collect();
    let mean = sums.iter().sum::<f64>() / sums.len() as f64;
    let max = sums.iter().cloned().fold(0.0f64, f64::max);
    if mean <= 0.0 {
        1.0
    } else {
        (max / mean).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphpim::config::PimMode;
    use graphpim_graph::generate::GraphSpec;

    fn key(kernel: &str) -> RunKey {
        RunKey::new(kernel, PimMode::Baseline, LdbcSize::K1)
    }

    #[test]
    fn estimates_scale_with_edges_and_respect_the_floor() {
        let model = CostModel::new();
        let small = model.estimate(&key("BFS"));
        let large = model.estimate(&RunKey::new("BFS", PimMode::Baseline, LdbcSize::M1));
        assert!(large > small * 100.0, "28.8M edges vs 29k must dominate");
        assert!(small >= 1e-3, "estimate floor");
    }

    #[test]
    fn observation_converges_the_per_kernel_rate() {
        let model = CostModel::new();
        let k = key("DC");
        let before = model.estimate(&k);
        // The DC kernel is consistently 10x slower than the seed says.
        for _ in 0..20 {
            model.observe(&k, before * 10.0);
        }
        let after = model.estimate(&k);
        assert!(
            after > before * 5.0,
            "EMA must track the observed rate (before {before}, after {after})"
        );
        // Other kernels drift only via the slow default.
        let other = model.estimate(&key("BFS"));
        assert!(other < after, "unobserved kernel must not jump to 10x");
    }

    #[test]
    fn skew_is_at_least_one_and_seeds_once() {
        let model = CostModel::new();
        // Heavy-tailed LDBC-like input: hubs concentrate in few blocks.
        let graph = GraphSpec::ldbc(LdbcSize::K1).seed(42).build();
        assert!(!model.skew_seeded(LdbcSize::K1));
        model.seed_skew(LdbcSize::K1, &graph);
        assert!(model.skew_seeded(LdbcSize::K1));
        let skewed = model.estimate(&key("BFS"));
        let flat = {
            let m = CostModel::new();
            m.estimate(&key("BFS"))
        };
        assert!(skewed >= flat, "skew can only stretch the estimate");
    }

    #[test]
    fn profile_calibration_skips_disk_hits() {
        let model = CostModel::new();
        let mut profile = EngineProfile::default();
        let stem = key("BFS").file_stem();
        profile.record_run(stem.clone(), 100.0, RunSource::DiskHit);
        model.calibrate_from_profile(&profile);
        let untouched = model.estimate(&key("BFS"));
        profile.record_run(stem, 100.0, RunSource::Simulated);
        model.calibrate_from_profile(&profile);
        assert!(
            model.estimate(&key("BFS")) > untouched,
            "simulated records must move the estimate; disk hits must not"
        );
    }

    #[test]
    fn snapshot_is_valid_json() {
        let model = CostModel::new();
        model.observe(&key("BFS"), 0.5);
        let graph = GraphSpec::uniform(100, 400).seed(1).build();
        model.seed_skew(LdbcSize::K1, &graph);
        let doc = model.snapshot_json();
        let parsed = graphpim::experiments::cache::json::parse(&doc)
            .unwrap_or_else(|| panic!("snapshot must parse: {doc}"));
        let obj = parsed.as_object().unwrap();
        assert_eq!(obj.get("observations").unwrap().as_u64(), Some(1));
    }
}
