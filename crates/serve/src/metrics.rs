//! `GET /metrics`: Prometheus text exposition over the service's
//! counters.
//!
//! Rendering is pull-time only — nothing here is on a hot path, and no
//! state exists solely for this endpoint: every family is a view over
//! counters the scheduler, engine profile, latency stats, and logger
//! already maintain. Dotted engine counter names (`tracestore.replays`)
//! pass through [`prom::sanitize`]; endpoint labels keep their verbatim
//! route text (`GET /jobs/{id}`) as label values, which the exposition
//! format allows.
//!
//! The document is linted in the test suite (and by `servectl metrics
//! --lint`) with [`prom::lint`], so the grammar, HELP/TYPE coverage,
//! and series uniqueness are enforced mechanically.

use crate::http::Response;
use crate::service::{build_profile, Shared};
use graphpim::obs::prom;

/// The exposition content type Prometheus expects for format 0.0.4.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Renders the full exposition document for `GET /metrics`.
pub(crate) fn metrics(shared: &Shared) -> Response {
    Response::text(200, CONTENT_TYPE, render(shared))
}

fn render(shared: &Shared) -> String {
    let mut e = prom::Exposition::new();

    e.family(
        "graphpim_build_info",
        "gauge",
        "Constant 1, labeled with the crate version and build profile.",
    );
    e.sample(
        "graphpim_build_info",
        &[
            ("version", env!("CARGO_PKG_VERSION")),
            ("profile", build_profile()),
        ],
        1.0,
    );

    e.family(
        "graphpim_uptime_seconds",
        "gauge",
        "Seconds since the service started.",
    );
    e.sample(
        "graphpim_uptime_seconds",
        &[],
        shared.started.elapsed().as_secs_f64(),
    );

    e.family(
        "graphpim_draining",
        "gauge",
        "1 while the service is draining for shutdown, else 0.",
    );
    e.sample(
        "graphpim_draining",
        &[],
        if shared.sched.draining() { 1.0 } else { 0.0 },
    );

    let depth = shared.sched.depth();
    e.family(
        "graphpim_scheduler_queue_depth",
        "gauge",
        "Run units in the scheduler, by state.",
    );
    e.sample(
        "graphpim_scheduler_queue_depth",
        &[("state", "queued")],
        depth.queued as f64,
    );
    e.sample(
        "graphpim_scheduler_queue_depth",
        &[("state", "running")],
        depth.running as f64,
    );
    e.family(
        "graphpim_scheduler_queued_cost_seconds",
        "gauge",
        "Summed cost-model estimates of queued, not-yet-started units.",
    );
    e.sample(
        "graphpim_scheduler_queued_cost_seconds",
        &[],
        depth.queued_cost_seconds,
    );
    e.family(
        "graphpim_scheduler_jobs_retained",
        "gauge",
        "Jobs held in history for GET /jobs/{id}.",
    );
    e.sample("graphpim_scheduler_jobs_retained", &[], depth.jobs as f64);

    let counters = shared.sched.counters();
    e.family(
        "graphpim_jobs_submitted_total",
        "counter",
        "Sweep jobs admitted since start.",
    );
    e.sample(
        "graphpim_jobs_submitted_total",
        &[],
        counters.jobs_submitted as f64,
    );
    e.family(
        "graphpim_jobs_completed_total",
        "counter",
        "Sweep jobs whose last unit finished.",
    );
    e.sample(
        "graphpim_jobs_completed_total",
        &[],
        counters.jobs_completed as f64,
    );
    e.family(
        "graphpim_units_resolved_total",
        "counter",
        "Run units resolved successfully.",
    );
    e.sample(
        "graphpim_units_resolved_total",
        &[],
        counters.units_resolved as f64,
    );
    e.family(
        "graphpim_units_panicked_total",
        "counter",
        "Run units whose engine run panicked (contained per unit).",
    );
    e.sample(
        "graphpim_units_panicked_total",
        &[],
        counters.units_panicked as f64,
    );
    e.family(
        "graphpim_admission_shed_total",
        "counter",
        "Sweep submissions refused at admission, by reason.",
    );
    for (reason, count) in counters.shed {
        e.sample(
            "graphpim_admission_shed_total",
            &[("reason", reason)],
            count as f64,
        );
    }

    let profile = shared.ctx.profile();
    e.family(
        "graphpim_engine_runs_total",
        "counter",
        "Runs resolved by the engine, by result source.",
    );
    for source in ["simulated", "replayed", "disk-hit"] {
        let count = profile
            .runs()
            .iter()
            .filter(|r| {
                matches!(
                    (r.source, source),
                    (
                        graphpim::experiments::profile::RunSource::Simulated,
                        "simulated"
                    ) | (
                        graphpim::experiments::profile::RunSource::Replayed,
                        "replayed"
                    ) | (
                        graphpim::experiments::profile::RunSource::DiskHit,
                        "disk-hit"
                    )
                )
            })
            .count();
        e.sample(
            "graphpim_engine_runs_total",
            &[("source", source)],
            count as f64,
        );
    }
    e.family(
        "graphpim_engine_simulated_seconds_total",
        "counter",
        "Wall seconds spent simulating (live and replayed runs).",
    );
    e.sample(
        "graphpim_engine_simulated_seconds_total",
        &[],
        profile.simulated_seconds(),
    );

    let (hits, misses, stale) = profile.disk_counts();
    e.family(
        "graphpim_disk_cache_lookups_total",
        "counter",
        "Run-cache disk lookups, by result.",
    );
    for (result, count) in [("hit", hits), ("miss", misses), ("stale", stale)] {
        e.sample(
            "graphpim_disk_cache_lookups_total",
            &[("result", result)],
            count as f64,
        );
    }

    // The trace-store registry keeps its dotted engine names; sanitize
    // maps them onto the metric-name grammar one family per counter.
    for (name, value) in shared.ctx.profile().tracestore_counters().iter() {
        let metric = format!("graphpim_{}", prom::sanitize(name));
        e.family(
            &metric,
            "counter",
            &format!("Engine counter {name} (trace store)."),
        );
        e.sample(&metric, &[], value);
    }

    e.family(
        "graphpim_http_request_duration_micros",
        "histogram",
        "Request handling latency per endpoint, microseconds.",
    );
    for (endpoint, hist) in shared.stats.snapshot() {
        e.histogram(
            "graphpim_http_request_duration_micros",
            &[("endpoint", endpoint)],
            &hist,
        );
    }

    e.family(
        "graphpim_log_lines_total",
        "counter",
        "Log lines per level, emitted vs dropped (filtered or failed).",
    );
    for (level, emitted, dropped) in graphpim::obs::stats() {
        e.sample(
            "graphpim_log_lines_total",
            &[("level", level.as_str()), ("outcome", "emitted")],
            emitted as f64,
        );
        e.sample(
            "graphpim_log_lines_total",
            &[("level", level.as_str()), ("outcome", "dropped")],
            dropped as f64,
        );
    }

    e.finish()
}
