//! Poison-tolerant lock helpers — the serve layer's locking convention.
//!
//! Every `Mutex`/`Condvar` acquisition in this crate goes through these
//! helpers instead of `.lock().unwrap()`. The difference matters the
//! first time a handler or worker panics while holding a lock: `std`
//! marks the mutex *poisoned*, and from then on every plain `.unwrap()`
//! on that lock panics too — one bad request would permanently take
//! down the stats registry, the cost model, or the whole scheduler,
//! even though the service deliberately contains panics per-request
//! (`catch_unwind` in the HTTP layer) and per-unit (in the worker
//! loop).
//!
//! Recovering from the poison flag is sound here because every critical
//! section in this crate keeps its protected state consistent at each
//! intermediate step: event logs are append-only, counters are updated
//! with saturating arithmetic, and map entries are inserted atomically.
//! A panic mid-section can lose at most the in-progress update, never
//! leave half-written state, so the next acquirer can safely proceed.
//! New serve code should uphold that property and use these helpers;
//! see the regression tests in [`crate::scheduler`] and
//! [`crate::service`] for the contained-panic behavior this buys.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Acquires `mutex`, recovering the guard if a previous holder
/// panicked.
pub fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`], recovering the reacquired guard if another
/// thread poisoned the mutex while we slept.
pub fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`], recovering the reacquired guard if
/// another thread poisoned the mutex while we slept.
pub fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, timeout)
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    #[test]
    fn lock_recovers_after_a_panicking_holder() {
        let counter = Arc::new(Mutex::new(0u64));
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut guard = lock(&counter);
            *guard += 1;
            panic!("handler blew up while holding the lock");
        }));
        assert!(result.is_err());
        assert!(counter.is_poisoned(), "the panic must have poisoned it");
        // The next "request" still gets through.
        let mut guard = lock(&counter);
        *guard += 1;
        assert_eq!(*guard, 2);
    }

    #[test]
    fn condvar_waits_survive_poison() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // Poison the mutex from a thread that panics while holding it.
        {
            let pair = Arc::clone(&pair);
            let _ = std::thread::spawn(move || {
                let _guard = pair.0.lock().unwrap();
                panic!("poison");
            })
            .join();
        }
        assert!(pair.0.is_poisoned());
        let guard = lock(&pair.0);
        let (guard, timeout) = wait_timeout(&pair.1, guard, Duration::from_millis(1));
        assert!(timeout.timed_out());
        assert!(!*guard);
        // Signaled wakeups work too: another thread flips the flag.
        {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                *lock(&pair.0) = true;
                pair.1.notify_all();
            });
        }
        let mut guard = guard;
        while !*guard {
            guard = wait(&pair.1, guard);
        }
    }
}
