//! `graphpim-serve`: a long-running experiment service over the
//! GraphPIM experiment engine.
//!
//! The engine ([`graphpim::experiments::Experiments`]) already
//! deduplicates runs three ways — per-key in-memory memoization, a
//! fingerprinted disk cache, and capture-once/replay-many instruction
//! traces. This crate puts a concurrent HTTP front end on that engine
//! so figures, counters, and trace slices are served from cache in
//! microseconds, while uncached sweeps flow through a cost-model
//! scheduler with admission control and stream their progress as
//! NDJSON.
//!
//! Layers, one module each:
//!
//! * [`http`] — hand-rolled HTTP/1.1 over `std::net` (the build is
//!   offline; no external dependencies).
//! * [`cost`] — run-cost estimation, calibrated online from observed
//!   wall times and the input graphs' degree statistics.
//! * [`admission`] — draining / queue-budget / per-client caps, decided
//!   at submission time on estimates.
//! * [`scheduler`] — shortest-job-first priority queue and the worker
//!   pool; per-job NDJSON event logs.
//! * [`metrics`] — the `GET /metrics` Prometheus text exposition.
//! * [`service`] — routing, per-endpoint latency histograms, and the
//!   accept → drain lifecycle.
//! * [`sync`] — poison-tolerant `Mutex`/`Condvar` helpers. **Crate
//!   convention:** never `.lock().unwrap()` — one panicking holder
//!   would wedge that lock for every later request; go through
//!   [`sync::lock`] / [`sync::wait`] / [`sync::wait_timeout`] instead.
//!
//! Binaries: `graphpim-serve` (the daemon) and `servectl` (client).
//! See `EXPERIMENTS.md` § "Serving experiments" for the API walkthrough
//! and `DESIGN.md` § 6 for the architecture rationale.

#![warn(missing_docs)]

pub mod admission;
pub mod cost;
pub mod http;
pub mod metrics;
pub mod scheduler;
pub mod service;
pub mod sync;

pub use admission::{AdmissionPolicy, Shed};
pub use cost::CostModel;
pub use scheduler::{Job, Scheduler};
pub use service::{start, ServeConfig, ServerHandle};
