//! Admission control: which sweep submissions the service accepts.
//!
//! Three independent gates, checked in this order at submission time:
//!
//! 1. **Draining** — a shutting-down service admits nothing new
//!    (`503`, so load balancers and retry loops back off to another
//!    instance rather than retrying immediately).
//! 2. **Per-client in-flight cap** — one client cannot occupy the whole
//!    queue; a client is whatever `X-Client-Id` says, falling back to
//!    the peer address (`429`).
//! 3. **Queue budget** — the *estimated* cost of everything queued plus
//!    the new submission must fit the configured budget; estimates come
//!    from the [cost model](crate::cost). Sweeps whose runs are already
//!    cached estimate to zero and always fit (`429` when exceeded).
//!
//! Shedding at submission time, on estimates, is the point: by the time
//! a queue is oversubscribed in *actual* seconds it is minutes too late
//! to say no.

/// Admission-control limits. `Default` is sized for an interactive
/// single-host service.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionPolicy {
    /// Maximum estimated seconds of queued, not-yet-started work the
    /// service accepts before shedding new sweeps.
    pub queue_budget_seconds: f64,
    /// Maximum concurrently in-flight (queued or running) jobs per
    /// client.
    pub client_inflight_cap: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            queue_budget_seconds: 600.0,
            client_inflight_cap: 4,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum Shed {
    /// The service is draining for shutdown.
    Draining,
    /// The queue's estimated cost budget would be exceeded.
    Budget {
        /// Estimated seconds of the refused submission.
        estimated: f64,
        /// Estimated seconds already queued.
        queued: f64,
        /// The configured budget.
        budget: f64,
    },
    /// The client already has too many jobs in flight.
    ClientCap {
        /// The client's current in-flight job count.
        inflight: usize,
        /// The configured cap.
        cap: usize,
    },
}

impl Shed {
    /// Stable identifier (the API's machine-readable error id).
    pub fn id(&self) -> &'static str {
        match self {
            Shed::Draining => "draining",
            Shed::Budget { .. } => "queue_budget_exceeded",
            Shed::ClientCap { .. } => "client_inflight_cap",
        }
    }

    /// HTTP status: `503` while draining (retry elsewhere / later),
    /// `429` for load shedding (back off).
    pub fn status(&self) -> u16 {
        match self {
            Shed::Draining => 503,
            Shed::Budget { .. } | Shed::ClientCap { .. } => 429,
        }
    }

    /// The refusal as the API's error JSON document.
    pub fn to_json(&self) -> String {
        match self {
            Shed::Draining => crate::service::error_json(
                "draining",
                "service is draining for shutdown; submit to another instance",
            ),
            Shed::Budget {
                estimated,
                queued,
                budget,
            } => format!(
                "{{\"error\": {{\"id\": \"queue_budget_exceeded\", \"message\": \
                 \"estimated {estimated:.1}s on top of {queued:.1}s queued exceeds \
                 the {budget:.1}s budget\", \"estimated_seconds\": {estimated:?}, \
                 \"queued_seconds\": {queued:?}, \"budget_seconds\": {budget:?}}}}}"
            ),
            Shed::ClientCap { inflight, cap } => format!(
                "{{\"error\": {{\"id\": \"client_inflight_cap\", \"message\": \
                 \"client already has {inflight} jobs in flight (cap {cap})\", \
                 \"inflight\": {inflight}, \"cap\": {cap}}}}}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphpim::experiments::cache::json;

    #[test]
    fn statuses_and_ids_are_stable() {
        assert_eq!(Shed::Draining.status(), 503);
        assert_eq!(Shed::Draining.id(), "draining");
        let budget = Shed::Budget {
            estimated: 12.5,
            queued: 590.0,
            budget: 600.0,
        };
        assert_eq!(budget.status(), 429);
        assert_eq!(budget.id(), "queue_budget_exceeded");
        let cap = Shed::ClientCap {
            inflight: 4,
            cap: 4,
        };
        assert_eq!(cap.status(), 429);
        assert_eq!(cap.id(), "client_inflight_cap");
    }

    #[test]
    fn refusals_serialize_to_parseable_error_documents() {
        for shed in [
            Shed::Draining,
            Shed::Budget {
                estimated: 1.0,
                queued: 2.0,
                budget: 3.0,
            },
            Shed::ClientCap {
                inflight: 5,
                cap: 4,
            },
        ] {
            let doc = shed.to_json();
            let parsed = json::parse(&doc).unwrap_or_else(|| panic!("must parse: {doc}"));
            let err = parsed.as_object().unwrap().get("error").unwrap();
            assert_eq!(
                err.as_object().unwrap().get("id").unwrap().as_str(),
                Some(shed.id())
            );
        }
    }
}
